//! Canonical workloads shared by the repro harness, the criterion benches,
//! and the shape-assertion tests.

use harmony::prelude::*;

/// The Fig 2 workload: a BERT-style model whose training footprint exceeds
/// the aggregate memory of four 11 GB GPUs, trained with the paper's
/// per-GPU batch of 5. (`bert_xxl` stands in for the paper's BERT, scaled
/// until the Fig 2 memory regime holds on the modelled server — see
/// DESIGN.md §2.)
pub fn fig2_model() -> ModelSpec {
    TransformerConfig::bert_xxl().build()
}

/// Microbatching for the Fig 2 runs.
pub fn fig2_workload() -> WorkloadConfig {
    WorkloadConfig {
        microbatches: 2,
        ubatch_size: 5,
        pack_size: 1,
        opt_slots: 2,
        group_size: None,
        recompute: false,
    }
}

/// The §3 analytical-comparison workload: per-stage training state several
/// times larger than a GPU, so every scheme must swap weights (the regime
/// the paper's `(4m+2)N|W|` vs `3N|W|` vs `3|W|` analysis assumes).
pub fn analytical_model() -> ModelSpec {
    TransformerConfig::gpt_10b().build()
}

/// A uniform-layer model for exact analytical cross-checks (the paper's
/// simplifying assumption: "one type of layer ... same runtime and memory
/// footprint").
pub fn uniform_model(layers: usize, params: u64) -> ModelSpec {
    ModelSpec {
        name: format!("uniform{layers}x{params}"),
        layers: (0..layers)
            .map(|i| LayerSpec {
                name: format!("L{i}"),
                class: LayerClass::Other,
                params,
                fwd_flops_per_sample: params * 2,
                out_elems_per_sample: 64,
                extra_stash_elems_per_sample: 128,
                in_elems_per_sample: 64,
            })
            .collect(),
        seq_len: 1,
    }
}

/// A small pressured server for the uniform-model cross-checks: capacity
/// holds roughly one task working set (the paper's one-layer-at-a-time
/// assumption).
pub fn pressured_topo(n: usize) -> Topology {
    presets::commodity_server(presets::CommodityParams {
        num_gpus: n,
        gpus_per_switch: n.max(1),
        pcie_bw: presets::GBPS,
        host_uplink_bw: presets::GBPS,
        gpu_mem: 96 * 1024,
        gpu_flops: 1e9,
    })
    .expect("valid params")
}

/// A *tight* server for exact analytical cross-checks: with SGD
/// (`opt_slots = 0`, see [`tight_workload`]) the 36 KiB capacity admits
/// exactly one backward working set of the 16 KiB-weight uniform model, so
/// LRU gets no reuse at traversal turnarounds and the measured volumes
/// land on the paper's closed forms.
pub fn tight_topo(n: usize) -> Topology {
    presets::commodity_server(presets::CommodityParams {
        num_gpus: n,
        gpus_per_switch: n.max(1),
        pcie_bw: presets::GBPS,
        host_uplink_bw: presets::GBPS,
        gpu_mem: 36 * 1024,
        gpu_flops: 1e9,
    })
    .expect("valid params")
}

/// Workload for the uniform cross-checks.
pub fn uniform_workload(m: usize) -> WorkloadConfig {
    WorkloadConfig {
        microbatches: m,
        ubatch_size: 1,
        pack_size: 1,
        opt_slots: 2,
        group_size: None,
        recompute: false,
    }
}

/// Workload for the exact analytical cross-checks (SGD: the §3 weight
/// analysis is optimizer-independent, and dropping Adam state keeps one
/// update working set inside [`tight_topo`]'s capacity).
pub fn tight_workload(m: usize) -> WorkloadConfig {
    WorkloadConfig {
        microbatches: m,
        ubatch_size: 1,
        pack_size: 1,
        opt_slots: 0,
        group_size: None,
        recompute: false,
    }
}

/// The Fig 4 toy: four uniform layers, two GPUs, two microbatches, tight
/// memory — renders the grouped pipeline schedule.
pub fn fig4_model() -> ModelSpec {
    ModelSpec {
        name: "fig4-toy".to_string(),
        layers: (0..4)
            .map(|i| LayerSpec {
                name: format!("L{i}"),
                class: LayerClass::Other,
                params: 1 << 16,               // 256 KiB weights
                fwd_flops_per_sample: 1 << 26, // ≈ one weight transfer
                out_elems_per_sample: 1 << 15, // 128 KiB activations
                extra_stash_elems_per_sample: 1 << 15,
                in_elems_per_sample: 1 << 15,
            })
            .collect(),
        seq_len: 1,
    }
}

/// Server for the Fig 4 rendering: capacity below one stage's state so
/// weights visibly swap between phases, compute and transfers of similar
/// magnitude so the Gantt shows both.
pub fn fig4_topo() -> Topology {
    presets::commodity_server(presets::CommodityParams {
        num_gpus: 2,
        gpus_per_switch: 2,
        pcie_bw: 8.0 * presets::GBPS,
        host_uplink_bw: 8.0 * presets::GBPS,
        gpu_mem: 1_600 * 1024,
        gpu_flops: 2e12,
    })
    .expect("valid params")
}

/// Workload for Fig 4 (one microbatch per GPU → two through the pipeline,
/// grouped — exactly the figure's setting).
pub fn fig4_workload() -> WorkloadConfig {
    WorkloadConfig {
        microbatches: 1,
        ubatch_size: 1,
        pack_size: 1,
        opt_slots: 2,
        group_size: None,
        recompute: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_model_exceeds_server_memory() {
        let m = fig2_model();
        let w = fig2_workload();
        assert!(m.training_footprint_bytes(w.ubatch_size, w.opt_slots) > 4 * 11 * (1u64 << 30));
    }

    #[test]
    fn analytical_model_state_exceeds_per_stage_capacity() {
        let m = analytical_model();
        // W + dW + 2K per pipeline stage on 4 GPUs, vs 11 GB.
        let per_stage_state = m.total_weight_bytes() * 4 / 4;
        assert!(per_stage_state > 2 * 11 * (1u64 << 30));
    }

    #[test]
    fn pressured_topo_is_actually_pressured() {
        let m = uniform_model(6, 4096);
        let t = pressured_topo(2);
        let state = m.total_weight_bytes() * 4;
        assert!(state > t.gpu(0).unwrap().mem_bytes);
    }
}
