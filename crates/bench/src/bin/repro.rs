//! `repro` — regenerate every figure and table of the paper.
//!
//! Usage: `cargo run --release -p harmony-bench --bin repro -- <artefact>`
//! where `<artefact>` is one of `fig1 fig2a fig2b fig2c fig4 fig5a fig5bc
//! table_a dominance tango prefetch recompute eviction steady all`, the
//! correctness gate `conformance [seed]` (prints the oracle-instrumented
//! pass/fail matrix, exits nonzero on any failing cell), or `custom`
//! followed by flags (see `repro custom --help` output on error) to run an
//! arbitrary model × scheme × server configuration.

use harmony_bench::{custom, figures};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if arg == "conformance" {
        let seed = std::env::args()
            .nth(2)
            .map(|s| match s.parse::<u64>() {
                Ok(seed) => seed,
                Err(_) => {
                    eprintln!("conformance seed must be an integer, got `{s}`");
                    std::process::exit(2);
                }
            })
            .unwrap_or(0);
        let report = harmony_harness::run_conformance(seed);
        println!("{}", report.render());
        if !report.all_passed() {
            std::process::exit(1);
        }
        return;
    }
    if arg == "custom" {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        match custom::parse(&rest).and_then(|a| custom::run(&a)) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let mut ran = false;
    let want = |name: &str| arg == name || arg == "all";
    if want("fig1") {
        println!("{}", figures::fig1());
        ran = true;
    }
    if want("fig2a") {
        println!("{}", figures::fig2a().0);
        ran = true;
    }
    if want("fig2b") {
        println!("{}", figures::fig2b());
        ran = true;
    }
    if want("fig2c") {
        println!("{}", figures::fig2c().0);
        ran = true;
    }
    if want("fig4") {
        println!("{}", figures::fig4());
        ran = true;
    }
    if want("fig5a") {
        println!("{}", figures::fig5a());
        ran = true;
    }
    if want("fig5bc") {
        println!("{}", figures::fig5bc());
        ran = true;
    }
    if want("table_a") {
        println!("{}", figures::table_a().0);
        ran = true;
    }
    if want("dominance") {
        println!("{}", figures::dominance().0);
        ran = true;
    }
    if want("tango") {
        println!("{}", figures::tango().0);
        ran = true;
    }
    if want("prefetch") {
        println!("{}", figures::prefetch_ablation().0);
        ran = true;
    }
    if want("recompute") {
        println!("{}", figures::recompute_ablation().0);
        ran = true;
    }
    if want("eviction") {
        println!("{}", figures::eviction_ablation().0);
        ran = true;
    }
    if want("steady") {
        println!("{}", figures::steady_state().0);
        ran = true;
    }
    if !ran {
        eprintln!(
            "unknown artefact `{arg}`; expected one of: fig1 fig2a fig2b fig2c fig4 \
             fig5a fig5bc table_a dominance tango prefetch recompute eviction steady all \
             conformance"
        );
        std::process::exit(2);
    }
}
