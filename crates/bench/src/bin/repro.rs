//! `repro` — regenerate every figure and table of the paper.
//!
//! Usage: `cargo run --release -p harmony-bench --bin repro -- <artefact>`
//! where `<artefact>` is one of `fig1 fig2a fig2b fig2c fig4 fig5a fig5bc
//! table_a dominance tango prefetch recompute eviction steady all`, the
//! correctness gate `conformance [seed]` (prints the oracle-instrumented
//! pass/fail matrix, exits nonzero on any failing cell), the perf gate
//! `bench [--json] [--workers N]` (times every sweep at 1 worker vs the
//! pool, checks byte-identical output, and with `--json` writes
//! `BENCH_sweeps.json`), or `custom` followed by flags (see `repro custom
//! --help` output on error) to run an arbitrary model × scheme × server
//! configuration.

use harmony_bench::{cli, custom, fault_sweep, figures, sweeps};

/// Full subcommand listing, printed by `repro help` and on any unknown
/// subcommand. Kept in one place so the two can't drift apart.
const USAGE: &str = "\
repro — regenerate the paper's figures, tables and gates

usage: repro <artefact|gate> [flags]

figures/tables (or `all` for every one):
  fig1 fig2a fig2b fig2c fig4 fig5a fig5bc table_a
  dominance tango prefetch recompute eviction steady

gates and sweeps:
  conformance [seed] [--scheme NAME]
                                   oracle-instrumented pass/fail matrix
                                   (exits nonzero on any failing cell);
                                   --scheme restricts to one scheme's cells
  bench [--json] [--workers N] [--scheme NAME]
                                   sweep wall clock at 1 worker vs the pool;
                                   --json writes BENCH_sweeps.json; --scheme
                                   filters the scheme-filterable legs
  sweep-smoke [--cells N]          pooled-session sweep throughput vs fresh
                                   per-cell setup, byte-identity checked
  exec-smoke [--grid] [--scheme NAME]
                                   executor hot path vs the dense reference
  mem-smoke [--grid]               memory-manager hot path vs the frozen
                                   dense core, plus the allocation-free
                                   planning gate
  fault-sweep [--smoke] [--json] [--seed N]
                                   throughput under seeded fault plans with
                                   the resilience layer armed; --smoke gates
                                   on the 4-fault point, --json writes
                                   BENCH_fault_sweep.json
  custom <flags>                   arbitrary model x scheme x server run
                                   (see `repro custom --help`)

  help                             this text";

/// Parses `args` against `spec` ([`cli::parse`]) or prints the
/// diagnostic and exits 2 — the usage-error contract `tests/cli.rs` pins.
fn parse_or_exit<'a>(spec: &cli::Spec, args: &'a [String]) -> cli::Parsed<'a> {
    cli::parse(spec, args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if arg == "help" || arg == "--help" || arg == "-h" {
        println!("{USAGE}");
        return;
    }
    if arg == "conformance" {
        // Positional-seed back-compat (`conformance 7`): strip a leading
        // non-flag token as the seed, then flag-parse the rest strictly.
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let (seed_arg, flag_args) = match rest.first() {
            Some(tok) if !tok.starts_with("--") => (Some(tok.clone()), rest[1..].to_vec()),
            _ => (None, rest),
        };
        let seed = seed_arg
            .map(|s| match s.parse::<u64>() {
                Ok(seed) => seed,
                Err(_) => {
                    eprintln!("conformance seed must be an integer, got `{s}`");
                    std::process::exit(2);
                }
            })
            .unwrap_or(0);
        let scheme = parse_or_exit(&cli::CONFORMANCE, &flag_args).scheme("--scheme");
        let report = harmony_harness::run_conformance_filtered(seed, scheme);
        println!("{}", report.render());
        if !report.all_passed() {
            std::process::exit(1);
        }
        return;
    }
    if arg == "bench" {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let flags = parse_or_exit(&cli::BENCH, &rest);
        let json = flags.has("--json");
        let workers = flags.value("--workers").map_or(4, |n| n as usize);
        let report = sweeps::run_filtered(workers, flags.scheme("--scheme"));
        println!("{}", report.render());
        if json {
            let path = "BENCH_sweeps.json";
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        if report.experiments.iter().any(|e| !e.identical) {
            eprintln!("determinism violation: parallel output diverged from sequential");
            std::process::exit(1);
        }
        if report.dp_shard.iter().any(|d| !d.identical) {
            eprintln!("determinism violation: sharded run diverged from the whole run");
            std::process::exit(1);
        }
        return;
    }
    if arg == "sweep-smoke" {
        // The sweep-throughput gate `./verify` runs: the pooled session
        // must never run a campaign slower than fresh per-cell setup,
        // and its outputs must be byte-identical. Both legs interleave
        // in one process, so the gate is a same-moment ratio — but a
        // near-1.0 ratio can still wobble on a busy host, so a miss is
        // re-measured after a settle; a real regression fails every
        // window.
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let flags = parse_or_exit(&cli::SWEEP_SMOKE, &rest);
        let cells = flags
            .value("--cells")
            .map_or(sweeps::SWEEP_THROUGHPUT_CELLS, |n| n as usize);
        let mut t = sweeps::sweep_throughput(cells);
        let mut attempts = 1;
        while t.identical && t.speedup() < 1.0 && attempts < 3 {
            eprintln!(
                "sweep throughput gate miss at {} cells: pooled {:.0} cells/s vs \
                 fresh {:.0} cells/s (attempt {attempts}); re-measuring",
                t.cells,
                t.pooled_cells_per_sec(),
                t.fresh_cells_per_sec(),
            );
            std::thread::sleep(std::time::Duration::from_millis(500));
            t = sweeps::sweep_throughput(cells);
            attempts += 1;
        }
        println!(
            "sweep_throughput {} cells: pooled {:.0} cells/s vs fresh {:.0} cells/s \
             ({:.2}x speedup; {} plan-cache hits, {} misses; identical: {})",
            t.cells,
            t.pooled_cells_per_sec(),
            t.fresh_cells_per_sec(),
            t.speedup(),
            t.plan_cache_hits,
            t.plan_cache_misses,
            t.identical,
        );
        if !t.identical {
            eprintln!("reuse contract violation: pooled outputs diverged from fresh");
            std::process::exit(1);
        }
        if t.speedup() < 1.0 {
            eprintln!(
                "sweep throughput gate FAILED at {} cells: {:.2}x vs fresh over \
                 {attempts} windows (need >= 1.0x; pooled {:.4} s, fresh {:.4} s)",
                t.cells,
                t.speedup(),
                t.pooled_secs,
                t.fresh_secs,
            );
            std::process::exit(1);
        }
        return;
    }
    if arg == "exec-smoke" {
        // The executor hot path at the largest grid cell (or the full
        // grid with `--grid`) — the exec-scaling smoke `./verify` runs.
        // Reject anything else: a typo like `--gird` must fail loudly,
        // not silently time the single-cell variant.
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let flags = parse_or_exit(&cli::EXEC_SMOKE, &rest);
        let full_grid = flags.has("--grid");
        let scheme = flags
            .scheme("--scheme")
            .unwrap_or(harmony::simulate::SchemeKind::HarmonyPp);
        let points = if full_grid {
            sweeps::exec_hot_path_scaling_for(scheme)
        } else {
            let (r, m, n, it) =
                sweeps::EXEC_HOT_PATH_SCALES[sweeps::EXEC_HOT_PATH_SCALES.len() - 1];
            vec![sweeps::exec_hot_path_for(scheme, r, m, n, it)]
        };
        for p in &points {
            println!(
                "exec_hot_path R={} m={} N={} iters={}: {:.0} events/s \
                 ({} events in {:.3} s; dense {:.0} events/s, {:.2}x speedup; \
                 {} slab slots grown)",
                p.layers,
                p.microbatches,
                p.gpus,
                p.iterations,
                p.events_per_sec(),
                p.events,
                p.secs,
                p.dense_events_per_sec(),
                p.speedup_vs_dense(),
                p.slab_fresh_allocs,
            );
        }
        if points.iter().any(|p| p.events == 0 || p.secs <= 0.0) {
            eprintln!("exec hot path produced no events or no wall clock");
            std::process::exit(1);
        }
        // Per-cell perf gates, applied to every measured cell (the whole
        // grid under `--grid`, the largest cell otherwise). The speedup
        // gate compares against the dense reference timed in the same
        // process at the same moment — a comparison absolute events/s
        // records cannot make on a host whose speed drifts between runs.
        // The slab gate is structural: slots ever grown must be a
        // vanishing fraction of events processed, or steady-state
        // completions are allocating instead of recycling.
        let mut failed = false;
        for p in &points {
            let cell = format!(
                "R={} m={} N={} iters={}",
                p.layers, p.microbatches, p.gpus, p.iterations
            );
            if p.speedup_vs_dense() < 2.0 {
                eprintln!(
                    "exec perf gate FAILED at cell {cell}: {:.2}x vs dense \
                     (need >= 2.0x; fast {:.3} s, dense {:.3} s)",
                    p.speedup_vs_dense(),
                    p.secs,
                    p.dense_secs,
                );
                failed = true;
            }
            if p.slab_fresh_allocs * 8 > p.events {
                eprintln!(
                    "slab pooling gate FAILED at cell {cell}: {} transfer \
                     slots grown over {} events — the pool is allocating \
                     per event, not per plan",
                    p.slab_fresh_allocs, p.events,
                );
                failed = true;
            }
        }
        // Absolute throughput floor on the largest cell only (the last
        // grid point): the constant-factor campaign's headline number.
        // Unlike the same-moment speedup ratio, an absolute floor is
        // exposed to host weather (the container documents ±30% swings),
        // so a miss is re-measured after a settle — a real regression
        // fails every window, a busy-host window does not.
        let mut largest = points.last().expect("one point").clone();
        let mut floor_attempts = 1;
        while largest.events_per_sec() < 1_000_000.0 && floor_attempts < 3 {
            eprintln!(
                "exec throughput floor miss at cell R={} m={} N={} iters={}: \
                 {:.0} events/s (attempt {floor_attempts}); re-measuring",
                largest.layers,
                largest.microbatches,
                largest.gpus,
                largest.iterations,
                largest.events_per_sec(),
            );
            std::thread::sleep(std::time::Duration::from_millis(500));
            largest = sweeps::exec_hot_path(
                largest.layers,
                largest.microbatches,
                largest.gpus,
                largest.iterations,
            );
            floor_attempts += 1;
        }
        if largest.events_per_sec() < 1_000_000.0 {
            eprintln!(
                "exec throughput gate FAILED at cell R={} m={} N={} iters={}: \
                 {:.0} events/s over {floor_attempts} windows (need >= 1000000)",
                largest.layers,
                largest.microbatches,
                largest.gpus,
                largest.iterations,
                largest.events_per_sec(),
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if arg == "mem-smoke" {
        // The memory-manager hot path vs the frozen dense core at the
        // largest grid cell (or the full grid with `--grid`) — the
        // memory-scaling smoke `./verify` runs. Both legs are timed
        // interleaved in the same process, so the gate is a same-moment
        // ratio, not an absolute record exposed to host weather.
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let full_grid = parse_or_exit(&cli::MEM_SMOKE, &rest).has("--grid");
        let points = if full_grid {
            sweeps::mem_hot_path_scaling()
        } else {
            let (r, m, n, it) = sweeps::MEM_HOT_PATH_SCALES[sweeps::MEM_HOT_PATH_SCALES.len() - 1];
            vec![sweeps::mem_hot_path(r, m, n, it)]
        };
        for p in &points {
            println!(
                "mem_hot_path R={} m={} N={} iters={}: {:.0} events/s \
                 ({} events in {:.3} s; dense core {:.0} events/s, {:.2}x speedup; \
                 {} fresh plan allocs, {} victim pops)",
                p.layers,
                p.microbatches,
                p.gpus,
                p.iterations,
                p.events_per_sec(),
                p.events,
                p.secs,
                p.dense_mem_events_per_sec(),
                p.speedup_vs_dense_mem(),
                p.fresh_allocs,
                p.victim_pops,
            );
        }
        if points.iter().any(|p| p.events == 0 || p.secs <= 0.0) {
            eprintln!("mem hot path produced no events or no wall clock");
            std::process::exit(1);
        }
        let mut failed = false;
        for p in &points {
            let cell = format!(
                "R={} m={} N={} iters={}",
                p.layers, p.microbatches, p.gpus, p.iterations
            );
            // Perf gate: the rewrite must never run slower than the
            // frozen core it replaced. The two legs interleave in one
            // process, but a near-1.0 ratio can still wobble on a busy
            // host, so a miss is re-measured after a settle — a real
            // regression fails every window.
            let mut point = p.clone();
            let mut attempts = 1;
            while point.speedup_vs_dense_mem() < 1.0 && attempts < 3 {
                eprintln!(
                    "mem planning gate miss at cell {cell}: {:.2}x vs dense core \
                     (attempt {attempts}); re-measuring",
                    point.speedup_vs_dense_mem(),
                );
                std::thread::sleep(std::time::Duration::from_millis(500));
                point = sweeps::mem_hot_path(
                    point.layers,
                    point.microbatches,
                    point.gpus,
                    point.iterations,
                );
                attempts += 1;
            }
            if point.speedup_vs_dense_mem() < 1.0 {
                eprintln!(
                    "mem planning gate FAILED at cell {cell}: {:.2}x vs dense core \
                     over {attempts} windows (need >= 1.0x; fast {:.3} s, dense {:.3} s)",
                    point.speedup_vs_dense_mem(),
                    point.secs,
                    point.dense_mem_secs,
                );
                failed = true;
            }
            // Structural gate: planning must be allocation-free. The
            // manager's fresh_allocs counts scratch `Vec`s it could not
            // reuse plus one-time lazy victim-index builds — bounded by
            // the device count, never by the plan count. A per-plan
            // allocation regression shows up as thousands over a run.
            if point.fresh_allocs > point.gpus as u64 * 8 {
                eprintln!(
                    "allocation-free planning gate FAILED at cell {cell}: {} fresh \
                     planning allocations on a {}-GPU server over {} events — the \
                     hot path is allocating per plan, not reusing scratch",
                    point.fresh_allocs, point.gpus, point.events,
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if arg == "fault-sweep" {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let flags = parse_or_exit(&cli::FAULT_SWEEP, &rest);
        let smoke = flags.has("--smoke");
        let json = flags.has("--json");
        // Seed 3's plan exercises the whole layer on the reference
        // cell: link slowdowns, a biting squeeze (spill → retries →
        // overcommit) and a smooth degradation curve.
        let seed = flags.value("--seed").unwrap_or(3);
        let report = fault_sweep::run(seed);
        println!("{}", report.render());
        if json {
            let path = "BENCH_fault_sweep.json";
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        if smoke {
            if let Some(msg) = report.smoke_failure() {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if arg == "custom" {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        match custom::parse(&rest).and_then(|a| custom::run(&a)) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let mut ran = false;
    let want = |name: &str| arg == name || arg == "all";
    if want("fig1") {
        println!("{}", figures::fig1());
        ran = true;
    }
    if want("fig2a") {
        println!("{}", figures::fig2a().0);
        ran = true;
    }
    if want("fig2b") {
        println!("{}", figures::fig2b());
        ran = true;
    }
    if want("fig2c") {
        println!("{}", figures::fig2c().0);
        ran = true;
    }
    if want("fig4") {
        println!("{}", figures::fig4());
        ran = true;
    }
    if want("fig5a") {
        println!("{}", figures::fig5a());
        ran = true;
    }
    if want("fig5bc") {
        println!("{}", figures::fig5bc());
        ran = true;
    }
    if want("table_a") {
        println!("{}", figures::table_a().0);
        ran = true;
    }
    if want("dominance") {
        println!("{}", figures::dominance().0);
        ran = true;
    }
    if want("tango") {
        println!("{}", figures::tango().0);
        ran = true;
    }
    if want("prefetch") {
        println!("{}", figures::prefetch_ablation().0);
        ran = true;
    }
    if want("recompute") {
        println!("{}", figures::recompute_ablation().0);
        ran = true;
    }
    if want("eviction") {
        println!("{}", figures::eviction_ablation().0);
        ran = true;
    }
    if want("steady") {
        println!("{}", figures::steady_state().0);
        ran = true;
    }
    if !ran {
        eprintln!("unknown artefact `{arg}`\n\n{USAGE}");
        std::process::exit(2);
    }
}
