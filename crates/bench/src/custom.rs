//! The `repro custom` subcommand: run any model × scheme × server
//! configuration from the command line and print the summary (optionally
//! with a Gantt chart). Argument parsing is hand-rolled to keep the
//! dependency set fixed.

use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};
use harmony_sched::SimExecutor;

/// Parsed `custom` arguments.
#[derive(Debug, Clone)]
pub struct CustomArgs {
    /// Model name (see [`resolve_model`]).
    pub model: String,
    /// Scheme name.
    pub scheme: SchemeKind,
    /// GPU count.
    pub gpus: usize,
    /// Per-GPU memory in GiB.
    pub mem_gib: f64,
    /// Workload knobs.
    pub workload: WorkloadConfig,
    /// Iterations to replay.
    pub iterations: u32,
    /// Enable prefetch/double-buffering.
    pub prefetch: bool,
    /// Render a Gantt chart.
    pub gantt: bool,
}

impl Default for CustomArgs {
    fn default() -> Self {
        CustomArgs {
            model: "bert_xxl".to_string(),
            scheme: SchemeKind::HarmonyPp,
            gpus: 4,
            mem_gib: 11.0,
            workload: WorkloadConfig::default(),
            iterations: 1,
            prefetch: false,
            gantt: false,
        }
    }
}

/// Parses `custom` flags. Returns an error string (usage) on bad input.
pub fn parse(args: &[String]) -> Result<CustomArgs, String> {
    let mut out = CustomArgs::default();
    let mut it = args.iter();
    let usage = || {
        "usage: repro custom [--model NAME] [--scheme baseline-dp|baseline-pp|harmony-dp|harmony-pp] \
         [--gpus N] [--mem-gib G] [--microbatches M] [--ubatch U] [--pack P] [--group G] \
         [--opt-slots S] [--recompute] [--prefetch] [--iterations K] [--gantt]\n\
         models: bert_large bert_xxl gpt2_xl gpt_10b lenet alexnet gnmt t5_11b"
            .to_string()
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--model" => out.model = val("--model")?,
            "--scheme" => {
                out.scheme = match val("--scheme")?.as_str() {
                    "baseline-dp" => SchemeKind::BaselineDp,
                    "baseline-pp" => SchemeKind::BaselinePp,
                    "harmony-dp" => SchemeKind::HarmonyDp,
                    "harmony-pp" => SchemeKind::HarmonyPp,
                    other => return Err(format!("unknown scheme `{other}`\n{}", usage())),
                }
            }
            "--gpus" => out.gpus = val("--gpus")?.parse().map_err(|e| format!("{e}"))?,
            "--mem-gib" => out.mem_gib = val("--mem-gib")?.parse().map_err(|e| format!("{e}"))?,
            "--microbatches" => {
                out.workload.microbatches =
                    val("--microbatches")?.parse().map_err(|e| format!("{e}"))?
            }
            "--ubatch" => {
                out.workload.ubatch_size = val("--ubatch")?.parse().map_err(|e| format!("{e}"))?
            }
            "--pack" => {
                out.workload.pack_size = val("--pack")?.parse().map_err(|e| format!("{e}"))?
            }
            "--group" => {
                out.workload.group_size = Some(val("--group")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--opt-slots" => {
                out.workload.opt_slots = val("--opt-slots")?.parse().map_err(|e| format!("{e}"))?
            }
            "--iterations" => {
                out.iterations = val("--iterations")?.parse().map_err(|e| format!("{e}"))?
            }
            "--recompute" => out.workload.recompute = true,
            "--prefetch" => out.prefetch = true,
            "--gantt" => out.gantt = true,
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(out)
}

/// Resolves a model name to a spec.
pub fn resolve_model(name: &str) -> Result<ModelSpec, String> {
    Ok(match name {
        "bert_large" => TransformerConfig::bert_large().build(),
        "bert_xxl" => TransformerConfig::bert_xxl().build(),
        "gpt2_xl" => TransformerConfig::gpt2_xl().build(),
        "gpt_10b" => TransformerConfig::gpt_10b().build(),
        "lenet" => harmony_models::cnn::lenet(),
        "alexnet" => harmony_models::cnn::alexnet(),
        "gnmt" => harmony_models::seq2seq::gnmt(),
        "t5_11b" => harmony_models::seq2seq::t5_11b(),
        other => return Err(format!("unknown model `{other}`")),
    })
}

/// Runs the configuration and returns the rendered report.
pub fn run(args: &CustomArgs) -> Result<String, String> {
    let model = resolve_model(&args.model)?;
    let topo = presets::commodity_server(presets::CommodityParams {
        num_gpus: args.gpus,
        gpus_per_switch: args.gpus.max(1),
        pcie_bw: 12.0 * presets::GBPS,
        host_uplink_bw: 12.0 * presets::GBPS,
        gpu_mem: (args.mem_gib * (1u64 << 30) as f64) as u64,
        gpu_flops: 11.3e12,
    })
    .map_err(|e| e.to_string())?;
    let mut plan =
        simulate::plan(args.scheme, &model, &topo, &args.workload).map_err(|e| e.to_string())?;
    if args.prefetch {
        plan.scheme = plan.scheme.clone().with_prefetch();
    }
    let (summary, trace) = SimExecutor::with_iterations(&topo, &model, &plan, args.iterations)
        .and_then(|e| e.run())
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "model     : {} ({:.2} M params, {:.2} GB training state)\n",
        model.name,
        model.total_params() as f64 / 1e6,
        (model.total_params() * (8 + 4 * args.workload.opt_slots)) as f64 / 1e9,
    ));
    out.push_str(&format!("server    : {}\n", topo.name));
    out.push_str(&format!(
        "workload  : m={} ubatch={} pack={} group={:?} recompute={} prefetch={} iterations={}\n\n",
        args.workload.microbatches,
        args.workload.ubatch_size,
        args.workload.pack_size,
        args.workload.group_size,
        args.workload.recompute,
        args.prefetch,
        args.iterations,
    ));
    out.push_str(&summary.one_line());
    out.push('\n');
    let mut t = Table::new(
        "Swap volume by tensor class",
        &["class", "GB", "per iteration"],
    );
    for (class, bytes) in &summary.swap_by_class {
        if *bytes > 0 {
            t.row(&[
                class.clone(),
                gb(*bytes),
                gb(bytes / args.iterations as u64),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&t.render());
    if let Some(u) = summary.channel_utilisation("->host") {
        out.push_str(&format!(
            "\nhost-uplink utilisation (out): {:.0}%\n",
            u * 100.0
        ));
    }
    if args.gantt {
        out.push('\n');
        out.push_str(&gantt::render(&trace, 110));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_roundtrips_flags() {
        let a = parse(&argv(
            "--model gpt_10b --scheme harmony-pp --gpus 2 --mem-gib 8 --microbatches 3 \
             --ubatch 2 --pack 2 --group 2 --opt-slots 0 --recompute --prefetch \
             --iterations 2 --gantt",
        ))
        .unwrap();
        assert_eq!(a.model, "gpt_10b");
        assert_eq!(a.scheme, SchemeKind::HarmonyPp);
        assert_eq!(a.gpus, 2);
        assert_eq!(a.workload.microbatches, 3);
        assert_eq!(a.workload.group_size, Some(2));
        assert_eq!(a.workload.opt_slots, 0);
        assert!(a.workload.recompute && a.prefetch && a.gantt);
        assert_eq!(a.iterations, 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("--scheme nonsense")).is_err());
        assert!(parse(&argv("--gpus")).is_err());
    }

    #[test]
    fn resolve_knows_every_published_model() {
        for name in [
            "bert_large",
            "bert_xxl",
            "gpt2_xl",
            "gpt_10b",
            "lenet",
            "alexnet",
            "gnmt",
            "t5_11b",
        ] {
            assert!(resolve_model(name).is_ok(), "{name}");
        }
        assert!(resolve_model("skynet").is_err());
    }

    #[test]
    fn custom_run_end_to_end() {
        let mut args = parse(&argv(
            "--model lenet --scheme harmony-dp --gpus 2 --ubatch 1",
        ))
        .unwrap();
        args.workload.microbatches = 1;
        let report = run(&args).unwrap();
        assert!(report.contains("lenet"));
        assert!(report.contains("samples/s"));
    }
}
