//! Figure/table generators: one function per paper artefact.
//!
//! Every generator returns the rendered text plus (where useful)
//! structured points so tests can assert shapes and `EXPERIMENTS.md` can
//! be regenerated mechanically.

use harmony::prelude::analytical;
use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};
use harmony_sched::tuner;

use crate::workloads;

/// Fig 1: two decades of model-size growth.
pub fn fig1() -> String {
    let mut t = Table::new(
        "Fig 1 — DNN model size growth (1998–2020)",
        &[
            "model",
            "year",
            "params",
            "fp32 weights (GB)",
            "W+dW+Adam floor (GB)",
        ],
    );
    for e in zoo::fig1_zoo() {
        t.row(&[
            e.name.to_string(),
            e.year.to_string(),
            human_count(e.params),
            gb(zoo::weight_bytes(&e)),
            gb(zoo::min_training_bytes(&e)),
        ]);
    }
    format!(
        "{}\nEven the optimizer-state floor of GPT-2 (1.5 B params) exceeds one 11 GB GPU;\n\
         GPT-3's weights alone exceed an 8-GPU server's aggregate memory.\n",
        t.render()
    )
}

/// One point of the Fig 2(a) sweep.
#[derive(Debug, Clone)]
pub struct Fig2aPoint {
    /// GPU count.
    pub n: usize,
    /// Global throughput, sequences per simulated second.
    pub throughput: f64,
    /// Global swap-out volume per iteration, bytes.
    pub swap_out: u64,
}

/// Fig 2(a): baseline DP — global throughput and global swap-out volume as
/// GPUs are added. Swap volume grows ~linearly while throughput stays
/// ~flat: the shared host uplink is the bottleneck.
pub fn fig2a() -> (String, Vec<Fig2aPoint>) {
    let model = workloads::fig2_model();
    let w = workloads::fig2_workload();
    let mut t = Table::new(
        "Fig 2(a) — DP with per-GPU tensor swapping (BERT-style, batch 5/GPU)",
        &[
            "# GPUs",
            "global throughput (seqs/s)",
            "global swap-out (GB/iter)",
            "vs N=1",
        ],
    );
    // Each GPU count is an independent simulation: fan out, collect in
    // sweep order.
    let ns: Vec<usize> = (1..=4).collect();
    let points: Vec<Fig2aPoint> = harmony_parallel::par_map(&ns, |_, &n| {
        let topo = presets::commodity_n_1080ti(n).expect("preset");
        let (s, _) = simulate::run(SchemeKind::BaselineDp, &model, &topo, &w).expect("fig2a run");
        Fig2aPoint {
            n,
            throughput: s.throughput(),
            swap_out: s.global_swap_out(),
        }
    });
    let ratio = points[0].swap_out.max(1);
    for p in &points {
        t.row(&[
            p.n.to_string(),
            f2(p.throughput),
            gb(p.swap_out),
            format!("{:.2}×", p.swap_out as f64 / ratio as f64),
        ]);
    }
    (
        format!(
            "{}\nShape check vs paper: swap volume ∝ N while throughput saturates —\n\
             per-GPU virtualization exposes the oversubscribed host link.\n",
            t.render()
        ),
        points,
    )
}

/// Fig 2(b): the modelled intra-server interconnect.
pub fn fig2b() -> String {
    let topo = presets::commodity_4x1080ti();
    let mut out = format!(
        "Fig 2(b) — intra-server interconnect model\n\nserver: {}\nhost-link oversubscription: {:.0}:1\n\nchannels:\n",
        topo.name,
        topo.host_oversubscription()
    );
    for c in topo.channels() {
        out.push_str(&format!(
            "  {:<14} {:>6.1} GB/s\n",
            c.name,
            c.bandwidth / 1e9
        ));
    }
    out.push_str(
        "\nGPU↔GPU transfers through the switch avoid the host uplink (fast p2p\npath); every GPU↔host swap crosses the shared uplink.\n",
    );
    out
}

/// One stage of the Fig 2(c) profile.
#[derive(Debug, Clone)]
pub struct Fig2cPoint {
    /// GPU / pipeline-stage index.
    pub gpu: usize,
    /// Logical memory demand, bytes.
    pub demand: u64,
    /// Swap traffic (both directions), bytes.
    pub swap: u64,
}

/// Fig 2(c): baseline PP — per-stage memory demand and swap traffic are
/// skewed toward the head of the pipeline.
pub fn fig2c() -> (String, Vec<Fig2cPoint>) {
    let model = workloads::fig2_model();
    let w = workloads::fig2_workload();
    let topo = presets::commodity_4x1080ti();
    let (s, _) = simulate::run(SchemeKind::BaselinePp, &model, &topo, &w).expect("fig2c run");
    let mut t = Table::new(
        "Fig 2(c) — PP with per-GPU tensor swapping: per-stage memory & swap",
        &[
            "GPU (stage)",
            "mem demand (GB)",
            "capacity (GB)",
            "swap traffic (GB)",
            "regime",
        ],
    );
    let cap = topo.gpu(0).expect("gpu0").mem_bytes;
    let mut points = Vec::new();
    for g in 0..topo.num_gpus() {
        let demand = s.demand_bytes[g];
        let swap = s.swap_in_bytes[g] + s.swap_out_bytes[g];
        let regime = if demand > cap { "heavy swap" } else { "fits" };
        t.row(&[
            format!("gpu{g}"),
            gb(demand),
            gb(cap),
            gb(swap),
            regime.to_string(),
        ]);
        points.push(Fig2cPoint {
            gpu: g,
            demand,
            swap,
        });
    }
    (
        format!(
            "{}\nShape check vs paper: the head stage stashes the most in-flight\n\
             microbatches (1F1B keeps S−s alive on stage s), so demand and swap\n\
             decrease head → tail; the bottleneck stage throttles the pipeline.\n",
            t.render()
        ),
        points,
    )
}

/// Fig 4: the Harmony-PP grouped schedule vs baseline 1F1B, as Gantt text.
pub fn fig4() -> String {
    let model = workloads::fig4_model();
    let topo = workloads::fig4_topo();
    let w = workloads::fig4_workload();
    let mut out = String::from("Fig 4 — virtualized pipeline parallelism in Harmony (toy)\n\n");
    for scheme in [SchemeKind::HarmonyPp, SchemeKind::BaselinePp] {
        let (s, trace) = simulate::run(scheme, &model, &topo, &w).expect("fig4 run");
        // Trim the end-of-iteration checkpoint flush (identical across
        // schemes) so the chart shows the schedule itself.
        let last_compute = trace
            .spans
            .iter()
            .filter(|sp| sp.kind == harmony::prelude::SpanKind::Compute)
            .map(|sp| sp.end)
            .fold(0.0f64, f64::max);
        let mut trimmed = Trace::new(format!("{} (flush omitted)", trace.name));
        for sp in trace
            .spans
            .iter()
            .filter(|sp| sp.start < last_compute || sp.kind != harmony::prelude::SpanKind::SwapOut)
        {
            let end = sp.end.min(last_compute);
            if end > sp.start {
                // Re-intern: symbol ids are per-trace.
                trimmed.record(sp.start, end, sp.gpu, sp.kind, trace.label(sp));
            }
        }
        out.push_str(&gantt::render(&trimmed, 100));
        // Compute-task order per GPU — grouping and JIT updates in words.
        for g in 0..topo.num_gpus() {
            let seq: Vec<&str> = trace
                .spans
                .iter()
                .filter(|sp| sp.gpu == Some(g) && sp.kind == harmony::prelude::SpanKind::Compute)
                .map(|sp| trace.label(sp))
                .collect();
            out.push_str(&format!("  gpu{g} order: {}\n", seq.join(" → ")));
        }
        out.push_str(&format!("{}\n\n", s.one_line()));
    }
    out.push_str(
        "Harmony (top): each layer runs its microbatch group back-to-back,\n\
         activations hop GPUs over p2p (=), and updates run JIT after each\n\
         layer's backward. Baseline (bottom): per-microbatch execution with\n\
         host swaps (< >) and trailing updates.\n",
    );
    out
}

/// Fig 5(a): the per-phase swap model.
pub fn fig5a() -> String {
    use harmony_taskgraph::{phase_swap_sets, Phase};
    let mut t = Table::new(
        "Fig 5(a) — tensors swapped in/out per training phase",
        &["phase", "swap-in", "swap-out"],
    );
    for (phase, name) in [
        (Phase::Forward, "forward"),
        (Phase::Backward, "backward"),
        (Phase::Update, "update"),
    ] {
        let (swap_in, swap_out) = phase_swap_sets(phase);
        let fmt = |roles: &[harmony_taskgraph::TensorRole]| {
            roles
                .iter()
                .map(|r| r.symbol())
                .collect::<Vec<_>>()
                .join(", ")
        };
        t.row(&[name.to_string(), fmt(swap_in), fmt(swap_out)]);
    }
    t.render()
}

/// Fig 5(b,c): weight-swap timelines for layer `L_j` under baseline DP vs
/// Harmony-DP, plus measured per-class volumes from the pressured uniform
/// workload.
pub fn fig5bc() -> String {
    let m = 4;
    let mut out = String::new();
    out.push_str(&format!(
        "Fig 5(b) — weights of layer Lj, DP + per-GPU virtualization (m = {m}):\n  "
    ));
    for u in 1..=m {
        out.push_str(&format!("F u{u}: in,out | "));
    }
    out.push('\n');
    out.push_str("  ");
    for u in 1..=m {
        out.push_str(&format!("B u{u}: in,out | "));
    }
    out.push_str("\n  U: in,out\n");
    out.push_str(&format!(
        "  per-iteration weight swaps: (4m+2) = {} × |W_Lj| per GPU\n\n",
        4 * m + 2
    ));
    out.push_str(&format!(
        "Fig 5(c) — weights of layer Lj, Harmony-DP (m = {m}):\n  \
         F u1..u{m}: in (held across group, dropped clean)\n  \
         B u1..u{m}: in (held across group, dropped clean)\n  \
         U: out (dirty writeback)\n  \
         per-iteration weight swaps: 3 × |W_Lj| per GPU\n\n"
    ));

    // Measured cross-check on the tightly pressured uniform workload.
    let model = workloads::uniform_model(6, 4096);
    let topo = workloads::tight_topo(2);
    let w = workloads::tight_workload(m);
    let wbytes = model.total_weight_bytes();
    let mut t = Table::new(
        "Measured weight-class swap volume (uniform model, 2 GPUs, m = 4)",
        &["scheme", "analytic ×|W|", "measured ×|W|"],
    );
    for (kind, formula) in [
        (SchemeKind::BaselineDp, (4 * m as u64 + 2) * 2),
        (SchemeKind::HarmonyDp, 3 * 2),
    ] {
        let (s, _) = simulate::run(kind, &model, &topo, &w).expect("fig5bc run");
        t.row(&[
            kind.name().to_string(),
            formula.to_string(),
            format!("{:.2}", s.swap_by_class["weight"] as f64 / wbytes as f64),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// One row of the Table A sweep.
#[derive(Debug, Clone)]
pub struct TableARow {
    /// Microbatches per GPU.
    pub m: u64,
    /// GPU count.
    pub n: u64,
    /// Scheme.
    pub scheme: SchemeKind,
    /// Analytic weight swap volume (×|W|).
    pub analytic: f64,
    /// Simulator-measured weight swap volume (×|W|).
    pub measured: f64,
}

/// The §3 analytical comparison, cross-checked against the simulator:
/// weight swap volume per iteration under DP baseline / Harmony-DP /
/// Harmony-PP, sweeping `m` and `N`.
pub fn table_a() -> (String, Vec<TableARow>) {
    let mut t = Table::new(
        "Table A (§3) — weight swap volume per iteration, analytic vs simulated",
        &[
            "m",
            "N",
            "scheme",
            "analytic ×|W|",
            "simulated ×|W|",
            "ratio",
        ],
    );
    // 4 configurations × 3 schemes: 12 independent simulations, fanned
    // out on the work pool and collected in sweep order.
    let mut cells = Vec::new();
    for &(m, n) in &[(2usize, 2usize), (4, 2), (2, 4), (4, 4)] {
        for kind in [
            SchemeKind::BaselineDp,
            SchemeKind::HarmonyDp,
            SchemeKind::HarmonyPp,
        ] {
            cells.push((m, n, kind));
        }
    }
    let rows: Vec<TableARow> = harmony_parallel::par_map(&cells, |_, &(m, n, kind)| {
        let model = workloads::uniform_model(6, 4096);
        let wbytes = model.total_weight_bytes() as f64;
        let topo = workloads::tight_topo(n);
        let w = workloads::tight_workload(m);
        let p =
            analytical::Params::from_model(&model, w.ubatch_size, w.opt_slots, m as u64, n as u64);
        let analytic = analytical::weight_swap_volume(kind.analytical(), &p) as f64 / wbytes;
        let (s, _) = simulate::run(kind, &model, &topo, &w).expect("table_a run");
        let measured = s.swap_by_class["weight"] as f64 / wbytes;
        TableARow {
            m: m as u64,
            n: n as u64,
            scheme: kind,
            analytic,
            measured,
        }
    });
    for r in &rows {
        t.row(&[
            r.m.to_string(),
            r.n.to_string(),
            r.scheme.name().to_string(),
            f2(r.analytic),
            f2(r.measured),
            f2(r.measured / r.analytic.max(1e-9)),
        ]);
    }
    (
        format!(
            "{}\nThe simulator's emergent volumes track the closed-form model\n\
             (boundary effects: first-iteration cold starts and end-of-run\n\
             flushes keep ratios within ~±35%).\n",
            t.render()
        ),
        rows,
    )
}

/// §3 dominance: full per-class breakdown for all four paper schemes on the
/// large-model workload, analytic and simulated.
pub fn dominance() -> (String, Vec<(SchemeKind, u64)>) {
    let model = workloads::analytical_model();
    let topo = presets::commodity_4x1080ti();
    let w = workloads::fig2_workload();
    let p = analytical::Params::from_model(
        &model,
        w.ubatch_size,
        w.opt_slots,
        w.microbatches as u64,
        4,
    );
    let mut t = Table::new(
        "§3 — swap volume breakdown, all schemes (10B-param model, 4×11 GB)",
        &[
            "scheme",
            "analytic total (GB)",
            "simulated total (GB)",
            "sim weight",
            "sim grad",
            "sim opt",
            "sim stash",
            "p2p (GB)",
            "seqs/s",
        ],
    );
    let mut totals = Vec::new();
    for kind in SchemeKind::ALL {
        let breakdown = analytical::breakdown(kind.analytical(), &p);
        let (s, _) = simulate::run(kind, &model, &topo, &w).expect("dominance run");
        t.row(&[
            kind.name().to_string(),
            gb(breakdown.total()),
            gb(s.global_swap()),
            gb(s.swap_by_class["weight"]),
            gb(s.swap_by_class["grad"]),
            gb(s.swap_by_class["opt_state"]),
            gb(s.swap_by_class["stash"]),
            gb(s.p2p_bytes),
            f2(s.throughput()),
        ]);
        totals.push((kind, s.global_swap()));
    }
    (
        format!(
            "{}\nShape check vs paper: \"Harmony offers swap load reduction for all\n\
             tensors and Harmony-PP dominates savings compared to all other\n\
             baselines\" — the harmony-pp row has the smallest total.\n",
            t.render()
        ),
        totals,
    )
}

/// One point of the tango sweeps.
#[derive(Debug, Clone)]
pub struct TangoPoint {
    /// Knob value (group size or pack size).
    pub knob: usize,
    /// Throughput (0 if infeasible).
    pub throughput: f64,
    /// Total swap bytes (0 if infeasible).
    pub swap: u64,
    /// Whether the configuration executed at all.
    pub feasible: bool,
}

/// The tango's pack-size sweep through the Performance Tuner, split out
/// so `repro bench` can export the tune result's plan-cache telemetry
/// (`plan_cache_hits`/`plan_cache_misses`) without re-deriving the grid.
pub fn pack_sweep_tune() -> tuner::TuneResult {
    let model = workloads::analytical_model();
    let topo = presets::commodity_4x1080ti();
    let base = workloads::fig2_workload();
    tuner::tune(
        &model,
        &topo,
        &WorkloadConfig {
            group_size: Some(2),
            ..base
        },
        &[1, 2, 4, 8, 16],
        &[base.microbatches],
        &[false],
        |m, w| harmony_sched::plan_harmony_pp(m, 4, w).map_err(|e| e.to_string()),
    )
}

/// §4 memory–performance tango: (a) the group-size sweep — larger groups
/// cut weight swaps but serialise pipeline stages; (b) the pack-size sweep
/// via the Performance Tuner — larger packs cut p2p/handoff traffic until a
/// pack's working set no longer fits.
pub fn tango() -> (String, Vec<TangoPoint>, Vec<TangoPoint>) {
    let model = workloads::analytical_model();
    let topo = presets::commodity_4x1080ti();
    let base = workloads::fig2_workload();

    let mut t1 = Table::new(
        "§4 tango (a) — Harmony-PP group-size sweep (10B model, 4 GPUs)",
        &[
            "group size",
            "throughput (seqs/s)",
            "swap (GB)",
            "weight swap (GB)",
        ],
    );
    // Independent group-size runs fan out on the work pool.
    let group_sizes = [1usize, 2, 4, 8];
    let group_runs = harmony_parallel::par_map(&group_sizes, |_, &g| {
        let w = WorkloadConfig {
            group_size: Some(g),
            ..base
        };
        let (s, _) = simulate::run(SchemeKind::HarmonyPp, &model, &topo, &w).expect("tango run");
        s
    });
    let mut group_points = Vec::new();
    for (&g, s) in group_sizes.iter().zip(&group_runs) {
        t1.row(&[
            g.to_string(),
            f2(s.throughput()),
            gb(s.global_swap()),
            gb(s.swap_by_class["weight"]),
        ]);
        group_points.push(TangoPoint {
            knob: g,
            throughput: s.throughput(),
            swap: s.global_swap(),
            feasible: true,
        });
    }

    // Pack-size sweep through the Performance Tuner.
    let result = pack_sweep_tune();
    let mut t2 = Table::new(
        "§4 tango (b) — Harmony-PP pack-size sweep (Performance Tuner)",
        &["pack size", "throughput (seqs/s)", "swap (GB)", "feasible"],
    );
    let mut pack_points = Vec::new();
    for pt in &result.points {
        let (tp, swap, feasible) = match &pt.summary {
            Some(s) => (s.throughput(), s.global_swap(), true),
            None => (0.0, 0, false),
        };
        t2.row(&[
            pt.pack_size.to_string(),
            if feasible { f2(tp) } else { "—".to_string() },
            if feasible {
                gb(swap)
            } else {
                "—".to_string()
            },
            feasible.to_string(),
        ]);
        pack_points.push(TangoPoint {
            knob: pt.pack_size,
            throughput: tp,
            swap,
            feasible,
        });
    }
    let best = result
        .best_point()
        .map(|p| format!("tuner picks pack_size = {}", p.pack_size))
        .unwrap_or_else(|| "no feasible configuration".to_string());
    (
        format!(
            "{}\n{}\n{best}\n\nThe trade-off the paper calls open: both knobs move memory \
             pressure\nagainst transfer volume and overlap; the tuner resolves them by \
             profiling\n(§3's Performance Tuner feedback loop).\n",
            t1.render(),
            t2.render()
        ),
        group_points,
        pack_points,
    )
}

/// One row of the prefetch ablation.
#[derive(Debug, Clone)]
pub struct PrefetchPoint {
    /// Scheme + group label.
    pub label: String,
    /// Throughput without prefetch.
    pub serial: f64,
    /// Throughput with prefetch.
    pub overlapped: f64,
    /// Swap bytes without prefetch.
    pub serial_swap: u64,
    /// Swap bytes with prefetch.
    pub overlapped_swap: u64,
}

/// §4 ablation — prefetch/double-buffering: overlap the next task's
/// swap-ins with the current kernel. The paper leaves this trade-off open
/// ("Harmony can mitigate swap overheads by prefetching ... but this
/// requires a form of double buffering"); here it is measured.
pub fn prefetch_ablation() -> (String, Vec<PrefetchPoint>) {
    let model = workloads::analytical_model();
    let topo = presets::commodity_4x1080ti();
    let base = workloads::fig2_workload();
    let mut t = Table::new(
        "§4 ablation — prefetch / double-buffering (10B model, 4 GPUs)",
        &[
            "configuration",
            "serial (seqs/s)",
            "prefetch (seqs/s)",
            "speedup",
            "extra swap (GB)",
        ],
    );
    let mut points = Vec::new();
    let mut cases: Vec<(String, SchemeKind, WorkloadConfig)> =
        vec![("baseline-dp".to_string(), SchemeKind::BaselineDp, base)];
    for g in [2usize, 8] {
        cases.push((
            format!("harmony-pp G={g}"),
            SchemeKind::HarmonyPp,
            WorkloadConfig {
                group_size: Some(g),
                ..base
            },
        ));
    }
    for (label, kind, w) in cases {
        let (a, _) = simulate::run(kind, &model, &topo, &w).expect("serial run");
        let (b, _) = simulate::run_with_prefetch(kind, &model, &topo, &w).expect("prefetch run");
        t.row(&[
            label.clone(),
            f2(a.throughput()),
            f2(b.throughput()),
            format!("{:.2}×", b.throughput() / a.throughput().max(1e-12)),
            gb(b.global_swap().saturating_sub(a.global_swap())),
        ]);
        points.push(PrefetchPoint {
            label,
            serial: a.throughput(),
            overlapped: b.throughput(),
            serial_swap: a.global_swap(),
            overlapped_swap: b.global_swap(),
        });
    }
    (
        format!(
            "{}\nPrefetch helps exactly where the paper predicts: Harmony's grouped\n\
             schedules have fetch-independent next tasks to overlap (the next\n\
             microbatch of the same pack), while baseline DP's µbatch-major order\n\
             chains every task to its predecessor, leaving nothing to prefetch.\n\
             The cost is the double-buffer's extra resident memory and a small\n\
             amount of additional eviction churn.\n",
            t.render()
        ),
        points,
    )
}

/// §4 ablation — recompute vs stash (gradient checkpointing at pack
/// granularity). Recompute removes the per-layer stash tensors — and their
/// swap traffic — at the cost of re-running each pack's forward during its
/// backward. The paper connects this to pack sizing: "increasing the pack
/// size can reduce p2p transfer and swap volume (when using recompute)".
pub fn recompute_ablation() -> (String, Vec<(usize, RunSummary, RunSummary)>) {
    let model = workloads::analytical_model();
    let topo = presets::commodity_4x1080ti();
    let base = WorkloadConfig {
        group_size: Some(2),
        ..workloads::fig2_workload()
    };
    let mut t = Table::new(
        "§4 ablation — stash vs recompute (Harmony-PP, 10B model, 4 GPUs)",
        &[
            "pack size",
            "stash: seqs/s",
            "recompute: seqs/s",
            "stash swap (GB)",
            "recompute swap (GB)",
            "stash-class (GB → GB)",
        ],
    );
    let mut rows = Vec::new();
    for pack in [1usize, 2, 4] {
        let ws = WorkloadConfig {
            pack_size: pack,
            ..base
        };
        let wr = WorkloadConfig {
            pack_size: pack,
            recompute: true,
            ..base
        };
        let (a, _) = simulate::run(SchemeKind::HarmonyPp, &model, &topo, &ws).expect("stash run");
        let (b, _) =
            simulate::run(SchemeKind::HarmonyPp, &model, &topo, &wr).expect("recompute run");
        t.row(&[
            pack.to_string(),
            f2(a.throughput()),
            f2(b.throughput()),
            gb(a.global_swap()),
            gb(b.global_swap()),
            format!(
                "{} → {}",
                gb(a.swap_by_class["stash"]),
                gb(b.swap_by_class["stash"])
            ),
        ]);
        rows.push((pack, a, b));
    }
    (
        format!(
            "{}\nRecompute eliminates the stash class entirely and with it most of\n\
             the remaining swap volume; the repeated forward work shows up as\n\
             longer kernels. Whether the trade wins depends on whether the run\n\
             is swap-bound (it is here) — the §4 tango again, on another axis.\n",
            t.render()
        ),
        rows,
    )
}

/// Ablation — eviction policy: baseline LRU vs Harmony's next-use-aware
/// eviction (the "scheduler and swapping algorithms inform each other's
/// decisions" of §1). Runs the same Harmony-DP plan under both policies.
pub fn eviction_ablation() -> (String, Vec<(String, u64)>) {
    use harmony::simulate::plan;
    use harmony_sched::{PolicyKind, SimExecutor};
    let model = workloads::uniform_model(8, 4096);
    let topo = workloads::pressured_topo(2);
    let w = workloads::uniform_workload(3);
    let mut t = Table::new(
        "Ablation — eviction policy under the Harmony-DP schedule",
        &["policy", "swap (MB)", "throughput (samples/s)"],
    );
    let mut rows = Vec::new();
    for (name, policy) in [
        ("lru", PolicyKind::Lru),
        ("next-use-aware", PolicyKind::NextUseAware),
    ] {
        let mut p = plan(SchemeKind::HarmonyDp, &model, &topo, &w).expect("plan");
        p.scheme.policy = policy;
        let (s, _) = SimExecutor::new(&topo, &model, &p)
            .expect("executor")
            .run()
            .expect("run");
        t.row(&[
            name.to_string(),
            format!("{:.2}", s.global_swap() as f64 / 1e6),
            f2(s.throughput()),
        ]);
        rows.push((name.to_string(), s.global_swap()));
    }
    (
        format!(
            "{}\nNext-use hints from the scheduler let the memory manager evict the\n\
             tensor whose reuse is farthest away (Belady-style) instead of the\n\
             least-recently-used one; under Harmony's grouped order the two\n\
             mostly agree, and the hints never hurt.\n",
            t.render()
        ),
        rows,
    )
}

/// Steady-state cross-check: replay the plan k times and compare the
/// per-iteration weight swap volume against the closed forms — the
/// multi-iteration run removes first-iteration cold starts and end-of-run
/// flush edges.
pub fn steady_state() -> (String, Vec<(SchemeKind, u32, f64)>) {
    let model = workloads::uniform_model(6, 4096);
    let topo = workloads::tight_topo(2);
    let w = workloads::tight_workload(4);
    let wbytes = model.total_weight_bytes() as f64;
    let mut t = Table::new(
        "Steady state — per-iteration weight swap ×|W| (m=4, N=2, tight regime)",
        &["scheme", "analytic", "k=1", "k=2", "k=4"],
    );
    let mut rows = Vec::new();
    for kind in [
        SchemeKind::BaselineDp,
        SchemeKind::HarmonyDp,
        SchemeKind::HarmonyPp,
    ] {
        let p = harmony::prelude::analytical::Params::from_model(&model, 1, 0, 4, 2);
        let analytic =
            harmony::prelude::analytical::weight_swap_volume(kind.analytical(), &p) as f64 / wbytes;
        let mut cells = vec![kind.name().to_string(), f2(analytic)];
        for k in [1u32, 2, 4] {
            let (s, _) = simulate::run_iterations(kind, &model, &topo, &w, k).expect("steady run");
            let per_iter = s.swap_by_class["weight"] as f64 / k as f64 / wbytes;
            cells.push(f2(per_iter));
            rows.push((kind, k, per_iter));
        }
        t.row(&cells);
    }
    (
        format!(
            "{}\nReplaying iterations pipelines across GPUs (fresh transients per\n\
             iteration, shared weights); per-iteration volumes stay on the closed\n\
             forms as k grows, so single-iteration results are not cold-start\n\
             artefacts.\n",
            t.render()
        ),
        rows,
    )
}

fn human_count(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.1}B", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.0}M", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.0}K", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}
