//! `repro bench`: wall-clock timing of the parallel sweep engine and the
//! simulator hot path, seeding the repository's perf trajectory
//! (`BENCH_sweeps.json`).
//!
//! Each sweep experiment is executed twice — once pinned to 1 worker and
//! once on the requested pool — and the rendered outputs are compared
//! byte-for-byte, so every `repro bench` run re-proves the determinism
//! contract in the production path while measuring the speedup. The
//! simulator's network hot path (incremental fair-share rate
//! bookkeeping) is timed as events/second under heavy transfer
//! concurrency.

use std::time::Instant;

use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};
use harmony_harness::execdiff::{self, ExecDiffCase};
use harmony_harness::memdiff;
use harmony_harness::reusediff;
use harmony_parallel::with_workers;
use harmony_topology::Endpoint;
use harmony_trace::json::{number, quote};
use harmony_trace::summary::RunSummary;

use crate::{figures, workloads};

/// Timing of one sweep experiment at 1 worker vs the pool.
#[derive(Debug, Clone)]
pub struct ExperimentTiming {
    /// Experiment name (`fig2a`, `table_a`, `tango`, `conformance`).
    pub name: &'static str,
    /// Grid cells (independent simulations) the experiment runs.
    pub cells: usize,
    /// Wall-clock seconds pinned to one worker.
    pub sequential_secs: f64,
    /// Wall-clock seconds on the requested worker count.
    pub parallel_secs: f64,
    /// Whether the two runs rendered byte-identical output (they must).
    pub identical: bool,
}

impl ExperimentTiming {
    /// Sequential-over-parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.sequential_secs / self.parallel_secs
        } else {
            0.0
        }
    }

    /// Grid cells per wall-clock second on the parallel leg — the
    /// sweep-campaign throughput unit the pooled-session gate works in.
    pub fn cells_per_sec(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.cells as f64 / self.parallel_secs
        } else {
            0.0
        }
    }
}

/// Events/second of the simulator's network hot path under heavy
/// transfer concurrency.
#[derive(Debug, Clone)]
pub struct HotPathTiming {
    /// Concurrent transfers per wave.
    pub transfers: usize,
    /// Waves run.
    pub waves: usize,
    /// Completions delivered.
    pub events: u64,
    /// Wall-clock seconds.
    pub secs: f64,
}

/// The scaling sweep run by `repro bench`: (concurrent transfers, waves).
/// Wave counts shrink as concurrency grows so each point does the same
/// order of total work.
pub const HOT_PATH_SCALES: [(usize, usize); 3] = [(256, 8), (1024, 4), (4096, 1)];

/// Events/s of the pre-flight-aggregation engine (commit `da7dbe2`,
/// which rescanned every in-flight transfer per event) at each
/// [`HOT_PATH_SCALES`] point, measured on the reference host. Kept in
/// the JSON export so the O(affected) speedup stays visible.
pub const HOT_PATH_PRE_CHANGE_EVENTS_PER_SEC: [f64; 3] = [345_400.0, 97_057.0, 22_217.0];

impl HotPathTiming {
    /// Delivered completions per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.events as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// Events/second of the *executor* hot path: a full Harmony-PP run
/// (memory virtualization, JIT scheduling, p2p, prefetchless fetch
/// state machines) on a tight-memory server, measured as simulator
/// completions per wall-clock second inside `SimExecutor::run`.
#[derive(Debug, Clone)]
pub struct ExecHotPathTiming {
    /// Model depth R (uniform layers).
    pub layers: usize,
    /// Microbatches m.
    pub microbatches: usize,
    /// GPUs N.
    pub gpus: usize,
    /// Back-to-back iterations replayed.
    pub iterations: u32,
    /// Simulator events the executor processed.
    pub events: u64,
    /// Wall-clock seconds inside the executor's event loop.
    pub secs: f64,
    /// Wall-clock seconds of the dense reference loop (re-advance every
    /// GPU after every event) on the identical plan, timed back-to-back
    /// in the same process. Absolute events/s is hostage to host
    /// weather; the fast-vs-dense ratio at the same moment is not.
    pub dense_secs: f64,
    /// Transfer-slab slots the wake-set run ever grew
    /// ([`harmony_sched::ExecCounters::slab_fresh_allocs`]): the
    /// structural no-per-event-allocation witness. Plan-bounded —
    /// `repro exec-smoke` gates it against the event count.
    pub slab_fresh_allocs: u64,
}

impl ExecHotPathTiming {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.events as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Events per wall-clock second of the dense reference loop.
    pub fn dense_events_per_sec(&self) -> f64 {
        if self.dense_secs > 0.0 {
            self.events as f64 / self.dense_secs
        } else {
            0.0
        }
    }

    /// Same-moment wake-set speedup over the dense reference loop.
    pub fn speedup_vs_dense(&self) -> f64 {
        if self.secs > 0.0 {
            self.dense_secs / self.secs
        } else {
            0.0
        }
    }
}

/// Events/second of the executor with each *memory-manager core*: the
/// same wake-set event loop run twice, once on the rewritten
/// SoA/ordered-index manager and once converted to the frozen dense
/// reference core (`MemoryManager::convert_to_dense`). Per-event cost
/// differences here are pure planning cost — candidate scans, victim
/// selection, per-plan allocation — because everything else about the
/// two runs is byte-identical (the memdiff contract).
#[derive(Debug, Clone)]
pub struct MemHotPathTiming {
    /// Model depth R (uniform layers).
    pub layers: usize,
    /// Microbatches m.
    pub microbatches: usize,
    /// GPUs N.
    pub gpus: usize,
    /// Back-to-back iterations replayed.
    pub iterations: u32,
    /// Simulator events the executor processed.
    pub events: u64,
    /// Wall-clock seconds with the rewritten manager.
    pub secs: f64,
    /// Wall-clock seconds with the dense reference core on the identical
    /// plan, timed interleaved in the same process (same-moment ratio,
    /// immune to host weather).
    pub dense_mem_secs: f64,
    /// Planning `Vec`s the rewritten manager freshly allocated
    /// ([`harmony_memory::MemCounters::fresh_allocs`]): the structural
    /// allocation-free-planning witness. Plan-bounded — `repro
    /// mem-smoke` gates it against the event count.
    pub fresh_allocs: u64,
    /// Victims taken off the ordered index (vs rescanned): evidence the
    /// O(log n) path, not the fallback, served the run.
    pub victim_pops: u64,
}

impl MemHotPathTiming {
    /// Events per wall-clock second with the rewritten manager.
    pub fn events_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.events as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Events per wall-clock second with the dense reference core.
    pub fn dense_mem_events_per_sec(&self) -> f64 {
        if self.dense_mem_secs > 0.0 {
            self.events as f64 / self.dense_mem_secs
        } else {
            0.0
        }
    }

    /// Same-moment speedup of the rewritten manager over the dense core.
    pub fn speedup_vs_dense_mem(&self) -> f64 {
        if self.secs > 0.0 {
            self.dense_mem_secs / self.secs
        } else {
            0.0
        }
    }
}

/// The executor scaling grid run by `repro bench`:
/// `(layers R, microbatches m, gpus N, iterations)`. Event counts grow
/// roughly with R × m × N × iterations, so per-event scheduling cost
/// shows up as a falling events/s curve when it is super-constant.
pub const EXEC_HOT_PATH_SCALES: [(usize, usize, usize, u32); 4] =
    [(6, 4, 2, 2), (8, 8, 4, 2), (12, 16, 4, 4), (16, 32, 8, 4)];

/// Events/s of the pre-wake-set executor (which re-advanced every GPU
/// after every completion and allocated a `String` label per trace
/// span) at each [`EXEC_HOT_PATH_SCALES`] point, measured on the
/// reference host before the optimization landed. Kept in the JSON
/// export so the executor speedup stays auditable like the network
/// core's.
pub const EXEC_HOT_PATH_PRE_CHANGE_EVENTS_PER_SEC: [f64; 4] =
    [436_703.0, 429_511.0, 357_550.0, 324_531.0];

/// The memory-manager scaling grid run by `repro bench`: the same
/// `(layers R, microbatches m, gpus N, iterations)` cells as
/// [`EXEC_HOT_PATH_SCALES`], so the two hot paths stay comparable. The
/// tight-memory server keeps every cell under constant eviction
/// pressure — each fetch decision exercises `plan_fetch`/`make_room`,
/// which is what this sweep times.
pub const MEM_HOT_PATH_SCALES: [(usize, usize, usize, u32); 4] =
    [(6, 4, 2, 2), (8, 8, 4, 2), (12, 16, 4, 4), (16, 32, 8, 4)];

/// Events/s of the pre-rewrite memory manager (the frozen dense core
/// behind `harmony-memory`'s `dense_memory` feature: `Vec<TensorInfo>`
/// storage, full candidate materialisation with per-victim `String`
/// clones, fresh `Vec` per plan) at each [`MEM_HOT_PATH_SCALES`] point,
/// measured on the reference host before the SoA/ordered-index rewrite
/// landed. Kept in the JSON export so the constant-factor speedup stays
/// auditable like the network core's and the executor's.
pub const MEM_HOT_PATH_PRE_CHANGE_EVENTS_PER_SEC: [f64; 4] =
    [1_653_355.0, 1_554_525.0, 1_373_248.0, 1_139_941.0];

/// Requested shard counts for the DP-shard scaling sweep: the unsharded
/// fallback, a balanced split of the 4-atom server, and one shard per
/// atom.
pub const DP_SHARD_SCALES: [usize; 3] = [1, 2, 4];

/// Wall clock of the sharded DP executor (DESIGN §12) at one requested
/// shard count, with the unsharded whole run of the identical plan timed
/// back-to-back in the same process. `identical` is the determinism
/// contract: the merged trace and summary must be byte-identical to the
/// whole run's.
#[derive(Debug, Clone)]
pub struct DpShardTiming {
    /// Shards requested of the runner.
    pub shards_requested: usize,
    /// Shards that actually ran after clamping to contention atoms.
    pub shards_used: usize,
    /// Wall-clock seconds of the sharded run.
    pub secs: f64,
    /// Wall-clock seconds of the unsharded whole run.
    pub unsharded_secs: f64,
    /// Whether the merged output was byte-identical to the whole run's.
    pub identical: bool,
}

impl DpShardTiming {
    /// Unsharded-over-sharded wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        if self.secs > 0.0 {
            self.unsharded_secs / self.secs
        } else {
            0.0
        }
    }
}

/// Cells of the sweep-throughput campaign measured by `repro bench` and
/// gated by `repro sweep-smoke`: a 15-spec grid (5 schemes × 3
/// microbatch counts) cycled to this length, so revisited specs exercise
/// the plan cache the way a multi-seed or repeated-measurement campaign
/// does.
pub const SWEEP_THROUGHPUT_CELLS: usize = 48;

/// Cells/s of the pre-session sweep path (fresh plan + fresh executor
/// arenas per cell, the only path before the `SweepSession` layer
/// landed) at the [`SWEEP_THROUGHPUT_CELLS`] point, measured on the
/// reference host. Kept in the JSON export so the pooled-session
/// speedup stays auditable like the hot-path rewrites'.
pub const SWEEP_PRE_CHANGE_CELLS_PER_SEC: f64 = 4_760.0;

/// Pack sizes of the recompute-vs-swap sweep exported by `repro bench
/// --json`: the §4 ablation grid of [`figures::recompute_ablation`].
pub const RECOMPUTE_SWEEP_PACKS: [usize; 3] = [1, 2, 4];

/// `(stash seqs/s, recompute seqs/s)` at each [`RECOMPUTE_SWEEP_PACKS`]
/// point, recorded when the recompute-vs-swap sweep landed (the
/// simulator is deterministic, so these are exact references, not noisy
/// wall-clock measurements). Kept in the JSON export so a future change
/// to the recompute path or the swap planner shows up as a drift from
/// the recorded trade-off, the way the hot-path sections pin their
/// pre-change events/s.
pub const RECOMPUTE_SWEEP_PRE_CHANGE_SEQS_PER_SEC: [(f64, f64); 3] = [
    (0.218429, 0.236342),
    (0.213477, 0.242686),
    (0.214410, 0.239200),
];

/// One pack-size point of the recompute-vs-swap sweep: the same
/// Harmony-PP cell run with per-layer stashing and with pack-boundary
/// recomputation (§4's trade), side by side.
#[derive(Debug, Clone)]
pub struct RecomputeSweepPoint {
    /// Layers per pack.
    pub pack_size: usize,
    /// Throughput with per-layer stashing (seqs/s).
    pub stash_throughput: f64,
    /// Throughput with recompute (seqs/s).
    pub recompute_throughput: f64,
    /// Total swap bytes with stashing.
    pub stash_swap_bytes: u64,
    /// Total swap bytes with recompute.
    pub recompute_swap_bytes: u64,
    /// Stash-class swap bytes with stashing — the traffic recompute
    /// eliminates (the recompute leg's stash class is structurally 0).
    pub stash_class_bytes: u64,
}

impl RecomputeSweepPoint {
    /// Whether trading swap traffic for recomputation FLOPs won here.
    pub fn recompute_wins(&self) -> bool {
        self.recompute_throughput > self.stash_throughput
    }
}

/// Runs the §4 recompute-vs-swap grid ([`figures::recompute_ablation`])
/// and flattens it for the bench report.
pub fn recompute_sweep() -> Vec<RecomputeSweepPoint> {
    figures::recompute_ablation()
        .1
        .into_iter()
        .map(|(pack, stash, rec)| RecomputeSweepPoint {
            pack_size: pack,
            stash_throughput: stash.throughput(),
            recompute_throughput: rec.throughput(),
            stash_swap_bytes: stash.global_swap(),
            recompute_swap_bytes: rec.global_swap(),
            stash_class_bytes: stash.swap_by_class["stash"],
        })
        .collect()
}

/// Wall clock of one sweep-throughput measurement: the identical cell
/// sequence run fresh (plan + construct per cell) and through a pooled
/// [`SweepSession`] (memoized plans, recycled arenas), interleaved
/// best-of-N in the same process so both legs see the same host weather.
/// `identical` is the reuse contract: the pooled leg's trace and summary
/// JSON must be byte-identical to the fresh leg's on every cell.
#[derive(Debug, Clone)]
pub struct SweepThroughputTiming {
    /// Cells per leg.
    pub cells: usize,
    /// Best wall-clock seconds of the fresh leg.
    pub fresh_secs: f64,
    /// Best wall-clock seconds of the pooled leg.
    pub pooled_secs: f64,
    /// Plan-cache hits the pooled session recorded (all legs).
    pub plan_cache_hits: u64,
    /// Plan-cache misses the pooled session recorded (all legs).
    pub plan_cache_misses: u64,
    /// Whether every cell's pooled output was byte-identical to fresh.
    pub identical: bool,
}

impl SweepThroughputTiming {
    /// Cells per wall-clock second of the fresh leg.
    pub fn fresh_cells_per_sec(&self) -> f64 {
        if self.fresh_secs > 0.0 {
            self.cells as f64 / self.fresh_secs
        } else {
            0.0
        }
    }

    /// Cells per wall-clock second of the pooled leg.
    pub fn pooled_cells_per_sec(&self) -> f64 {
        if self.pooled_secs > 0.0 {
            self.cells as f64 / self.pooled_secs
        } else {
            0.0
        }
    }

    /// Same-moment pooled-over-fresh throughput ratio.
    pub fn speedup(&self) -> f64 {
        if self.pooled_secs > 0.0 {
            self.fresh_secs / self.pooled_secs
        } else {
            0.0
        }
    }
}

/// The full `repro bench` result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Worker count used for the parallel leg.
    pub workers: usize,
    /// What the host actually offers (1 core ⇒ thread-pool speedups are
    /// bounded at ~1× however many workers are requested).
    pub available_parallelism: usize,
    /// Per-experiment wall-clock timings.
    pub experiments: Vec<ExperimentTiming>,
    /// Simulator hot-path scaling sweep, one entry per
    /// [`HOT_PATH_SCALES`] point.
    pub hot_path: Vec<HotPathTiming>,
    /// Executor hot-path scaling sweep, one entry per
    /// [`EXEC_HOT_PATH_SCALES`] point.
    pub exec_hot_path: Vec<ExecHotPathTiming>,
    /// Memory-manager hot-path scaling sweep, one entry per
    /// [`MEM_HOT_PATH_SCALES`] point.
    pub mem_hot_path: Vec<MemHotPathTiming>,
    /// DP-shard scaling sweep, one entry per [`DP_SHARD_SCALES`] point.
    pub dp_shard: Vec<DpShardTiming>,
    /// Sweep-throughput campaign: fresh vs pooled-session legs at
    /// [`SWEEP_THROUGHPUT_CELLS`].
    pub sweep_throughput: Vec<SweepThroughputTiming>,
    /// Recompute-vs-swap sweep over [`RECOMPUTE_SWEEP_PACKS`].
    pub recompute_sweep: Vec<RecomputeSweepPoint>,
    /// Plan-cache hits the Performance Tuner's pack sweep recorded
    /// (grid cells whose plan key collided with an earlier cell).
    pub tuner_plan_cache_hits: u64,
    /// Plan-cache misses (distinct plan keys) of the same tune.
    pub tuner_plan_cache_misses: u64,
    /// Representative run summaries exported alongside the timings.
    pub summaries: Vec<RunSummary>,
}

impl BenchReport {
    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "repro bench — sweep wall clock, 1 worker vs {} (host parallelism: {})",
                self.workers, self.available_parallelism
            ),
            &[
                "experiment",
                "cells",
                "sequential (s)",
                "parallel (s)",
                "speedup",
                "cells/s",
                "identical",
            ],
        );
        for e in &self.experiments {
            // On a single-core host the thread pool cannot beat the
            // sequential leg no matter how many workers are requested;
            // say so instead of letting a ~1× row read as a regression.
            let speedup = if self.available_parallelism == 1 {
                format!("{:.2}× (host-limited)", e.speedup())
            } else {
                format!("{:.2}×", e.speedup())
            };
            t.row(&[
                e.name.to_string(),
                e.cells.to_string(),
                format!("{:.3}", e.sequential_secs),
                format!("{:.3}", e.parallel_secs),
                speedup,
                format!("{:.1}", e.cells_per_sec()),
                e.identical.to_string(),
            ]);
        }
        let mut out = t.render();
        out.push_str("\nsimulator hot path (route-class flight aggregation):\n");
        for h in &self.hot_path {
            out.push_str(&format!(
                "  {:>5} concurrent transfers × {} waves → {:>9.0} events/s \
                 ({} completions in {:.3} s)\n",
                h.transfers,
                h.waves,
                h.events_per_sec(),
                h.events,
                h.secs,
            ));
        }
        out.push_str("executor hot path (wake-set event loop, harmony-pp):\n");
        for h in &self.exec_hot_path {
            out.push_str(&format!(
                "  R={:<2} m={:<2} N={} × {} iters → {:>9.0} events/s \
                 ({} events in {:.3} s; dense reference {:.3} s, {:.2}× speedup)\n",
                h.layers,
                h.microbatches,
                h.gpus,
                h.iterations,
                h.events_per_sec(),
                h.events,
                h.secs,
                h.dense_secs,
                h.speedup_vs_dense(),
            ));
        }
        if !self.mem_hot_path.is_empty() {
            out.push_str("memory-manager hot path (SoA planes + ordered victim index):\n");
            for h in &self.mem_hot_path {
                out.push_str(&format!(
                    "  R={:<2} m={:<2} N={} × {} iters → {:>9.0} events/s \
                     ({} events in {:.3} s; dense core {:.3} s, {:.2}× speedup; \
                     {} fresh plan allocs, {} victim pops)\n",
                    h.layers,
                    h.microbatches,
                    h.gpus,
                    h.iterations,
                    h.events_per_sec(),
                    h.events,
                    h.secs,
                    h.dense_mem_secs,
                    h.speedup_vs_dense_mem(),
                    h.fresh_allocs,
                    h.victim_pops,
                ));
            }
        }
        if !self.dp_shard.is_empty() {
            out.push_str("dp-shard scaling (sharded executor vs whole run, harmony-dp):\n");
            for d in &self.dp_shard {
                // A 1-core host cannot run shards concurrently: a ~1×
                // row there is the hardware's fact, not a regression.
                let host_note = if self.available_parallelism == 1 {
                    " (host-limited)"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "  shards={} (ran {}) → {:.2}× vs unsharded{} \
                     ({:.3} s vs {:.3} s; identical: {})\n",
                    d.shards_requested,
                    d.shards_used,
                    d.speedup(),
                    host_note,
                    d.secs,
                    d.unsharded_secs,
                    d.identical,
                ));
            }
        }
        if !self.sweep_throughput.is_empty() {
            out.push_str("sweep throughput (pooled session vs fresh per-cell setup):\n");
            for s in &self.sweep_throughput {
                out.push_str(&format!(
                    "  {} cells → pooled {:>7.0} cells/s vs fresh {:>7.0} cells/s \
                     ({:.2}× speedup; {} plan-cache hits, {} misses; identical: {})\n",
                    s.cells,
                    s.pooled_cells_per_sec(),
                    s.fresh_cells_per_sec(),
                    s.speedup(),
                    s.plan_cache_hits,
                    s.plan_cache_misses,
                    s.identical,
                ));
            }
        }
        if !self.recompute_sweep.is_empty() {
            out.push_str("recompute-vs-swap sweep (harmony-pp, §4 ablation grid):\n");
            for p in &self.recompute_sweep {
                out.push_str(&format!(
                    "  pack={} → stash {:.2} seqs/s vs recompute {:.2} seqs/s ({}; \
                     swap {:.1} GB → {:.1} GB)\n",
                    p.pack_size,
                    p.stash_throughput,
                    p.recompute_throughput,
                    if p.recompute_wins() {
                        "recompute wins"
                    } else {
                        "stash wins"
                    },
                    p.stash_swap_bytes as f64 / 1e9,
                    p.recompute_swap_bytes as f64 / 1e9,
                ));
            }
        }
        out.push_str(&format!(
            "tuner pack sweep: {} plan-cache hits, {} misses\n",
            self.tuner_plan_cache_hits, self.tuner_plan_cache_misses,
        ));
        out
    }

    /// The `BENCH_sweeps.json` document. Timings are measurements, not
    /// pinned values; the `identical` flags are the determinism contract.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"sweeps\",\n");
        out.push_str("  \"generated_by\": \"repro bench --json\",\n");
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"cells\": {}, \"sequential_secs\": {}, \
                 \"parallel_secs\": {}, \"speedup\": {}, \"cells_per_sec\": {}, \
                 \"identical\": {}}}{}\n",
                quote(e.name),
                e.cells,
                number(e.sequential_secs),
                number(e.parallel_secs),
                number(e.speedup()),
                number(e.cells_per_sec()),
                e.identical,
                if i + 1 < self.experiments.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"sim_hot_path_scaling\": [\n");
        for (i, h) in self.hot_path.iter().enumerate() {
            // Attach the recorded pre-change baseline when this entry is
            // a canonical scale point, so the speedup is self-describing.
            let baseline = HOT_PATH_SCALES
                .iter()
                .position(|&(t, w)| t == h.transfers && w == h.waves)
                .map(|idx| HOT_PATH_PRE_CHANGE_EVENTS_PER_SEC[idx]);
            let baseline_field = match baseline {
                Some(b) => format!(", \"pre_change_events_per_sec\": {}", number(b)),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"concurrent_transfers\": {}, \"waves\": {}, \"events\": {}, \
                 \"secs\": {}, \"events_per_sec\": {}{}}}{}\n",
                h.transfers,
                h.waves,
                h.events,
                number(h.secs),
                number(h.events_per_sec()),
                baseline_field,
                if i + 1 < self.hot_path.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"exec_hot_path_scaling\": [\n");
        for (i, h) in self.exec_hot_path.iter().enumerate() {
            let baseline = EXEC_HOT_PATH_SCALES
                .iter()
                .position(|&(r, m, n, it)| {
                    r == h.layers && m == h.microbatches && n == h.gpus && it == h.iterations
                })
                .map(|idx| EXEC_HOT_PATH_PRE_CHANGE_EVENTS_PER_SEC[idx]);
            let baseline_field = match baseline {
                Some(b) => format!(", \"pre_change_events_per_sec\": {}", number(b)),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"layers\": {}, \"microbatches\": {}, \"gpus\": {}, \
                 \"iterations\": {}, \"events\": {}, \"secs\": {}, \
                 \"events_per_sec\": {}, \"dense_events_per_sec\": {}, \
                 \"speedup_vs_dense\": {}, \"slab_fresh_allocs\": {}{}}}{}\n",
                h.layers,
                h.microbatches,
                h.gpus,
                h.iterations,
                h.events,
                number(h.secs),
                number(h.events_per_sec()),
                number(h.dense_events_per_sec()),
                number(h.speedup_vs_dense()),
                h.slab_fresh_allocs,
                baseline_field,
                if i + 1 < self.exec_hot_path.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"mem_hot_path_scaling\": [\n");
        for (i, h) in self.mem_hot_path.iter().enumerate() {
            let baseline = MEM_HOT_PATH_SCALES
                .iter()
                .position(|&(r, m, n, it)| {
                    r == h.layers && m == h.microbatches && n == h.gpus && it == h.iterations
                })
                .map(|idx| MEM_HOT_PATH_PRE_CHANGE_EVENTS_PER_SEC[idx]);
            let baseline_field = match baseline {
                Some(b) => format!(", \"pre_change_events_per_sec\": {}", number(b)),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"layers\": {}, \"microbatches\": {}, \"gpus\": {}, \
                 \"iterations\": {}, \"events\": {}, \"secs\": {}, \
                 \"events_per_sec\": {}, \"dense_mem_events_per_sec\": {}, \
                 \"speedup_vs_dense_mem\": {}, \"fresh_allocs\": {}, \
                 \"victim_pops\": {}{}}}{}\n",
                h.layers,
                h.microbatches,
                h.gpus,
                h.iterations,
                h.events,
                number(h.secs),
                number(h.events_per_sec()),
                number(h.dense_mem_events_per_sec()),
                number(h.speedup_vs_dense_mem()),
                h.fresh_allocs,
                h.victim_pops,
                baseline_field,
                if i + 1 < self.mem_hot_path.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"dp_shard_scaling\": [\n");
        for (i, d) in self.dp_shard.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shards_requested\": {}, \"shards_used\": {}, \"secs\": {}, \
                 \"unsharded_secs\": {}, \"speedup\": {}, \"identical\": {}, \
                 \"host_limited\": {}}}{}\n",
                d.shards_requested,
                d.shards_used,
                number(d.secs),
                number(d.unsharded_secs),
                number(d.speedup()),
                d.identical,
                self.available_parallelism == 1,
                if i + 1 < self.dp_shard.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"sweep_throughput\": [\n");
        for (i, s) in self.sweep_throughput.iter().enumerate() {
            // Attach the recorded pre-change baseline at the canonical
            // cell count, so the speedup is self-describing like the
            // hot-path sections'.
            let baseline_field = if s.cells == SWEEP_THROUGHPUT_CELLS {
                format!(
                    ", \"pre_change_cells_per_sec\": {}",
                    number(SWEEP_PRE_CHANGE_CELLS_PER_SEC)
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "    {{\"cells\": {}, \"fresh_secs\": {}, \"pooled_secs\": {}, \
                 \"fresh_cells_per_sec\": {}, \"pooled_cells_per_sec\": {}, \
                 \"speedup\": {}, \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \
                 \"identical\": {}{}}}{}\n",
                s.cells,
                number(s.fresh_secs),
                number(s.pooled_secs),
                number(s.fresh_cells_per_sec()),
                number(s.pooled_cells_per_sec()),
                number(s.speedup()),
                s.plan_cache_hits,
                s.plan_cache_misses,
                s.identical,
                baseline_field,
                if i + 1 < self.sweep_throughput.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"recompute_vs_swap\": [\n");
        for (i, p) in self.recompute_sweep.iter().enumerate() {
            // Attach the recorded reference trade-off at canonical pack
            // sizes, so a drift in either leg is self-describing.
            let baseline_field = RECOMPUTE_SWEEP_PACKS
                .iter()
                .position(|&k| k == p.pack_size)
                .map(|idx| {
                    let (st, rc) = RECOMPUTE_SWEEP_PRE_CHANGE_SEQS_PER_SEC[idx];
                    format!(
                        ", \"pre_change_stash_seqs_per_sec\": {}, \
                         \"pre_change_recompute_seqs_per_sec\": {}",
                        number(st),
                        number(rc)
                    )
                })
                .unwrap_or_default();
            out.push_str(&format!(
                "    {{\"pack_size\": {}, \"stash_seqs_per_sec\": {}, \
                 \"recompute_seqs_per_sec\": {}, \"recompute_wins\": {}, \
                 \"stash_swap_bytes\": {}, \"recompute_swap_bytes\": {}, \
                 \"stash_class_bytes\": {}{}}}{}\n",
                p.pack_size,
                number(p.stash_throughput),
                number(p.recompute_throughput),
                p.recompute_wins(),
                p.stash_swap_bytes,
                p.recompute_swap_bytes,
                p.stash_class_bytes,
                baseline_field,
                if i + 1 < self.recompute_sweep.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"tuner\": {{\"plan_cache_hits\": {}, \"plan_cache_misses\": {}}},\n",
            self.tuner_plan_cache_hits, self.tuner_plan_cache_misses,
        ));
        out.push_str("  \"summaries\": [\n");
        for (i, s) in self.summaries.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                s.to_json(),
                if i + 1 < self.summaries.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed().as_secs_f64(), r)
}

fn experiment(
    name: &'static str,
    cells: usize,
    workers: usize,
    run: impl Fn() -> String,
) -> ExperimentTiming {
    let (sequential_secs, seq_out) = timed(|| with_workers(1, &run));
    let (parallel_secs, par_out) = timed(|| with_workers(workers, &run));
    ExperimentTiming {
        name,
        cells,
        sequential_secs,
        parallel_secs,
        identical: seq_out == par_out,
    }
}

/// Times the simulator's network hot path: `transfers` concurrent
/// host-bound transfers per wave over an 8-GPU switched server, repeated
/// `waves` times (mirrors `harmony-simulator`'s `net_stress` example).
pub fn hot_path(transfers: usize, waves: usize) -> HotPathTiming {
    let gpus = 8;
    let topo = presets::commodity_server(presets::CommodityParams {
        num_gpus: gpus,
        gpus_per_switch: 4,
        pcie_bw: 12.0 * presets::GBPS,
        host_uplink_bw: 12.0 * presets::GBPS,
        gpu_mem: 11 << 30,
        gpu_flops: 11e12,
    })
    .expect("topology");
    let routes: Vec<Vec<usize>> = (0..gpus)
        .map(|g| {
            topo.route(Endpoint::Gpu(g), Endpoint::Host)
                .expect("route")
                .to_vec()
        })
        .collect();
    let start = Instant::now();
    let mut s = harmony_simulator::Simulator::new(&topo);
    let mut events: u64 = 0;
    for wave in 0..waves {
        for i in 0..transfers {
            let bytes = (1 + (i as u64 % 17)) * 100_000_000;
            s.start_transfer(
                &routes[i % gpus],
                bytes,
                (wave * transfers + i) as u64,
                (i % gpus) as u32,
            )
            .expect("transfer");
        }
        while s.next().is_some() {
            events += 1;
        }
    }
    HotPathTiming {
        transfers,
        waves,
        events,
        secs: start.elapsed().as_secs_f64(),
    }
}

/// Runs the hot path at every [`HOT_PATH_SCALES`] point.
pub fn hot_path_scaling() -> Vec<HotPathTiming> {
    HOT_PATH_SCALES
        .iter()
        .map(|&(transfers, waves)| hot_path(transfers, waves))
        .collect()
}

/// Times the executor hot path: a Harmony-PP run of a uniform `layers`-deep
/// model with `microbatches` microbatches on a tight-memory `gpus`-GPU
/// server, replayed `iterations` times. Every swap/fetch/compute decision
/// flows through `SimExecutor::run`'s event loop, so events/s here measures
/// per-event *scheduling* cost (not the network core, which the sim hot
/// path covers).
pub fn exec_hot_path(
    layers: usize,
    microbatches: usize,
    gpus: usize,
    iterations: u32,
) -> ExecHotPathTiming {
    exec_hot_path_for(
        SchemeKind::HarmonyPp,
        layers,
        microbatches,
        gpus,
        iterations,
    )
}

/// [`exec_hot_path`] under an arbitrary scheme (`repro exec-smoke
/// --scheme NAME`): the same grid cell and estimator, with the event
/// loop driven by the named scheme's plan instead of Harmony-PP's.
pub fn exec_hot_path_for(
    scheme: SchemeKind,
    layers: usize,
    microbatches: usize,
    gpus: usize,
    iterations: u32,
) -> ExecHotPathTiming {
    let model = workloads::uniform_model(layers, 4096);
    let topo = workloads::tight_topo(gpus);
    let w = workloads::tight_workload(microbatches);
    let case = ExecDiffCase {
        scheme,
        model: &model,
        topo: &topo,
        workload: &w,
        faults: &[],
        prefetch: false,
        iterations,
        resilience: None,
    };
    // Best-of-N after a warmup, per mode, with the two modes
    // interleaved so they see the same host weather: wall-clock on a
    // shared host is noisy (scheduling quanta, frequency ramp-up), and
    // the minimum elapsed time is the least-noise estimator of the
    // loop's true cost — interference only ever adds time. Small grid
    // cells finish in a few milliseconds and are noise-dominated, so
    // they repeat until ~half a second of samples accumulates; the
    // large cells are long enough that five pairs suffice.
    let mut runs: Vec<(u64, f64, f64)> = Vec::new();
    let mut sampled_secs = 0.0;
    let mut warmed_up = false;
    let mut slab_fresh_allocs = 0u64;
    while runs.len() < 5 || (sampled_secs < 0.5 && runs.len() < 200) {
        let (fast, _, fc) = execdiff::run_mode(&case, false).expect("exec hot-path run");
        let (dense, _, _) = execdiff::run_mode(&case, true).expect("exec hot-path dense run");
        assert_eq!(
            fast.events_processed, dense.events_processed,
            "dense and wake-set loops must process identical event streams"
        );
        slab_fresh_allocs = fc.slab_fresh_allocs;
        if !warmed_up {
            // Discard the first pair: it pays one-time costs (page
            // faults, branch history warm-up) neither loop owns.
            warmed_up = true;
            continue;
        }
        sampled_secs += fast.elapsed_secs + dense.elapsed_secs;
        runs.push((fast.events_processed, fast.elapsed_secs, dense.elapsed_secs));
    }
    let (events, _, _) = runs[0];
    let secs = runs
        .iter()
        .map(|r| r.1)
        .min_by(f64::total_cmp)
        .expect("at least one timed run");
    let dense_secs = runs
        .iter()
        .map(|r| r.2)
        .min_by(f64::total_cmp)
        .expect("at least one timed run");
    ExecHotPathTiming {
        layers,
        microbatches,
        gpus,
        iterations,
        events,
        secs,
        dense_secs,
        slab_fresh_allocs,
    }
}

/// Runs the executor hot path at every [`EXEC_HOT_PATH_SCALES`] point.
pub fn exec_hot_path_scaling() -> Vec<ExecHotPathTiming> {
    exec_hot_path_scaling_for(SchemeKind::HarmonyPp)
}

/// [`exec_hot_path_scaling`] under an arbitrary scheme.
pub fn exec_hot_path_scaling_for(scheme: SchemeKind) -> Vec<ExecHotPathTiming> {
    EXEC_HOT_PATH_SCALES
        .iter()
        .map(|&(r, m, n, it)| exec_hot_path_for(scheme, r, m, n, it))
        .collect()
}

/// Times the memory-manager hot path: the identical Harmony-PP run as
/// [`exec_hot_path`], executed once with the rewritten manager and once
/// converted to the frozen dense core
/// ([`harmony_harness::memdiff::run_mode_mem`]), interleaved best-of-N
/// so both cores see the same host weather. The tight-memory server
/// keeps eviction planning on the critical path of every fetch.
pub fn mem_hot_path(
    layers: usize,
    microbatches: usize,
    gpus: usize,
    iterations: u32,
) -> MemHotPathTiming {
    let model = workloads::uniform_model(layers, 4096);
    let topo = workloads::tight_topo(gpus);
    let w = workloads::tight_workload(microbatches);
    let case = ExecDiffCase {
        scheme: SchemeKind::HarmonyPp,
        model: &model,
        topo: &topo,
        workload: &w,
        faults: &[],
        prefetch: false,
        iterations,
        resilience: None,
    };
    // Same estimator as `exec_hot_path`: warmup pair discarded, minimum
    // over interleaved pairs, small cells repeated until ~half a second
    // of samples accumulates. One refinement: the two cores are within a
    // few percent of each other here, so the within-pair ordering bias
    // (the second leg inherits warmed caches and a ramped clock from the
    // first) is no longer in the noise — the legs alternate order across
    // pairs so each collects first-position and second-position samples
    // and the per-leg minimum compares like with like.
    let mut runs: Vec<(u64, f64, f64)> = Vec::new();
    let mut sampled_secs = 0.0;
    let mut warmed_up = false;
    let mut fresh_allocs = 0u64;
    let mut victim_pops = 0u64;
    let mut fast_first = true;
    while runs.len() < 5 || (sampled_secs < 0.5 && runs.len() < 200) {
        let (fast, dense);
        if fast_first {
            fast = memdiff::run_mode_mem(&case, false)
                .expect("mem hot-path run")
                .0;
            dense = memdiff::run_mode_mem(&case, true)
                .expect("mem hot-path dense-memory run")
                .0;
        } else {
            dense = memdiff::run_mode_mem(&case, true)
                .expect("mem hot-path dense-memory run")
                .0;
            fast = memdiff::run_mode_mem(&case, false)
                .expect("mem hot-path run")
                .0;
        }
        fast_first = !fast_first;
        assert_eq!(
            fast.events_processed, dense.events_processed,
            "the two memory cores must drive identical event streams"
        );
        let c = fast
            .mem_counters
            .expect("executor summaries carry planning counters");
        fresh_allocs = c.fresh_allocs;
        victim_pops = c.victim_pops;
        if !warmed_up {
            warmed_up = true;
            continue;
        }
        sampled_secs += fast.elapsed_secs + dense.elapsed_secs;
        runs.push((fast.events_processed, fast.elapsed_secs, dense.elapsed_secs));
    }
    let (events, _, _) = runs[0];
    let secs = runs
        .iter()
        .map(|r| r.1)
        .min_by(f64::total_cmp)
        .expect("at least one timed run");
    let dense_mem_secs = runs
        .iter()
        .map(|r| r.2)
        .min_by(f64::total_cmp)
        .expect("at least one timed run");
    MemHotPathTiming {
        layers,
        microbatches,
        gpus,
        iterations,
        events,
        secs,
        dense_mem_secs,
        fresh_allocs,
        victim_pops,
    }
}

/// Runs the memory hot path at every [`MEM_HOT_PATH_SCALES`] point.
pub fn mem_hot_path_scaling() -> Vec<MemHotPathTiming> {
    MEM_HOT_PATH_SCALES
        .iter()
        .map(|&(r, m, n, it)| mem_hot_path(r, m, n, it))
        .collect()
}

/// Times the sharded DP executor at every [`DP_SHARD_SCALES`] point
/// against the unsharded whole run, re-proving the byte-identity
/// contract (DESIGN §12) in the production path on every `repro bench`.
/// The server is 4 single-GPU switches — four contention atoms, the
/// shape the partitioner can split — with the harness's slack capacity
/// so Harmony-DP working sets fit.
pub fn dp_shard_scaling() -> Vec<DpShardTiming> {
    let model = harmony_harness::workloads::uniform_model(8, 4096);
    let topo = harmony_harness::workloads::atomized_topo(4);
    let w = harmony_harness::workloads::tight_workload(4);
    let case = ExecDiffCase {
        scheme: SchemeKind::HarmonyDp,
        model: &model,
        topo: &topo,
        workload: &w,
        faults: &[],
        prefetch: false,
        iterations: 4,
        resilience: None,
    };
    // Whole-run reference: output for the identity check, best-of-3
    // wall clock after a warmup (interference only ever adds time).
    let (mut ref_summary, ref_trace, _) =
        execdiff::run_mode(&case, false).expect("dp-shard unsharded reference");
    ref_summary.elapsed_secs = 0.0;
    ref_summary.setup_secs = 0.0;
    // Planning counters, like wall clock, describe how a summary was
    // computed, not what it computed — a merged summary carries none.
    ref_summary.mem_counters = None;
    let (ref_tj, ref_sj) = (ref_trace.to_json(), ref_summary.to_json());
    let unsharded_secs = (0..3)
        .map(|_| timed(|| execdiff::run_mode(&case, false)).0)
        .min_by(f64::total_cmp)
        .expect("three timed runs");
    DP_SHARD_SCALES
        .iter()
        .map(|&shards| {
            // One worker per shard, so shard concurrency is real
            // wherever the host can offer it.
            let run = || with_workers(shards.max(1), || execdiff::run_sharded_mode(&case, shards));
            let (mut s, t, rep) = run().expect("dp-shard sharded run");
            s.elapsed_secs = 0.0;
            s.setup_secs = 0.0;
            s.mem_counters = None;
            let identical = t.to_json() == ref_tj && s.to_json() == ref_sj;
            let secs = (0..3)
                .map(|_| timed(run).0)
                .min_by(f64::total_cmp)
                .expect("three timed runs");
            DpShardTiming {
                shards_requested: shards,
                shards_used: rep.shards_used,
                secs,
                unsharded_secs,
                identical,
            }
        })
        .collect()
}

/// The sweep-throughput cell sequence: 5 schemes × 3 microbatch counts
/// (15 distinct plan keys) cycled to `cells` entries, so every key past
/// the first fifteen cells is a revisit — the shape of a multi-seed or
/// repeated-measurement campaign, where plan memoization pays.
fn sweep_cells(cells: usize, scheme: Option<SchemeKind>) -> Vec<CellSpec> {
    let microbatch_counts = [1usize, 2, 3];
    (0..cells)
        .map(|i| {
            // Filtered campaigns (`repro bench --scheme NAME`) cycle one
            // scheme over the microbatch counts — 3 distinct plan keys
            // instead of 15, the rest revisits.
            let (s, m) = match scheme {
                None => (
                    SchemeKind::ALL[i % SchemeKind::ALL.len()],
                    microbatch_counts[(i / SchemeKind::ALL.len()) % microbatch_counts.len()],
                ),
                Some(s) => (s, microbatch_counts[i % microbatch_counts.len()]),
            };
            CellSpec::new(s, workloads::tight_workload(m))
        })
        .collect()
}

/// One cell of the fresh leg: plan and construct from nothing, exactly
/// the only path that existed before the session layer.
fn fresh_cell(model: &ModelSpec, topo: &Topology, c: &CellSpec) {
    let plan = simulate::plan(c.scheme, model, topo, &c.workload).expect("sweep cell plan");
    let exec = harmony_sched::SimExecutor::with_iterations(topo, model, &plan, c.iterations)
        .expect("sweep cell executor");
    exec.run().expect("sweep cell run");
}

/// Times the sweep-throughput campaign: `cells` grid cells run fresh and
/// through one pooled [`SweepSession`], interleaved best-of-N with the
/// leg order alternating across pairs (same estimator as
/// [`mem_hot_path`]) so the pooled-over-fresh ratio is a same-moment
/// comparison. Byte-identity of the two legs is checked first, outside
/// the timed region, through the harness's `reusediff` differential.
pub fn sweep_throughput(cells: usize) -> SweepThroughputTiming {
    sweep_throughput_filtered(cells, None)
}

/// [`sweep_throughput`] restricted to one scheme's cells (`repro bench
/// --scheme NAME`); `None` cycles the full 5-scheme grid.
pub fn sweep_throughput_filtered(
    cells: usize,
    scheme: Option<SchemeKind>,
) -> SweepThroughputTiming {
    let model = workloads::uniform_model(6, 4096);
    let topo = workloads::tight_topo(2);
    let specs = sweep_cells(cells, scheme);

    // Identity first: every cell's pooled output (on arenas dirtied by
    // all cells before it) byte-identical to fresh.
    let rcs: Vec<reusediff::ReuseCell> = specs
        .iter()
        .map(|c| reusediff::ReuseCell {
            cell: c.clone(),
            faults: Vec::new(),
            resilience: None,
        })
        .collect();
    let identical = reusediff::check_cell_sequence(&model, &topo, &rcs).is_ok();

    let mut session = SweepSession::new();
    let mut runs: Vec<(f64, f64)> = Vec::new();
    let mut sampled_secs = 0.0;
    let mut warmed_up = false;
    let mut fresh_first = true;
    while runs.len() < 5 || (sampled_secs < 0.5 && runs.len() < 200) {
        let fresh_leg = || {
            timed(|| {
                for c in &specs {
                    fresh_cell(&model, &topo, c);
                }
            })
            .0
        };
        let mut pooled_leg = || {
            timed(|| {
                for c in &specs {
                    let (_, trace) = session.run(&model, &topo, c).expect("pooled sweep cell");
                    session.recycle_trace(trace);
                }
            })
            .0
        };
        let (fresh, pooled) = if fresh_first {
            let f = fresh_leg();
            let p = pooled_leg();
            (f, p)
        } else {
            let p = pooled_leg();
            let f = fresh_leg();
            (f, p)
        };
        fresh_first = !fresh_first;
        if !warmed_up {
            // The first pair pays one-time costs (page faults, the
            // pooled leg's initial plan-cache misses and arena growth)
            // neither leg owns in steady state.
            warmed_up = true;
            continue;
        }
        sampled_secs += fresh + pooled;
        runs.push((fresh, pooled));
    }
    let fresh_secs = runs
        .iter()
        .map(|r| r.0)
        .min_by(f64::total_cmp)
        .expect("at least one timed pair");
    let pooled_secs = runs
        .iter()
        .map(|r| r.1)
        .min_by(f64::total_cmp)
        .expect("at least one timed pair");
    SweepThroughputTiming {
        cells,
        fresh_secs,
        pooled_secs,
        plan_cache_hits: session.plan_cache_hits(),
        plan_cache_misses: session.plan_cache_misses(),
        identical,
    }
}

/// Runs the full bench suite at `workers` parallel workers.
pub fn run(workers: usize) -> BenchReport {
    run_filtered(workers, None)
}

/// [`run`] with the scheme-filterable legs (the sweep-throughput
/// campaign and the conformance experiment) restricted to one scheme
/// (`repro bench --scheme NAME`). The hot-path scaling sweeps and the
/// figure experiments are scheme-specific measurements already and run
/// unchanged.
pub fn run_filtered(workers: usize, scheme: Option<SchemeKind>) -> BenchReport {
    // Time the single-threaded hot paths first, before the experiment
    // sweeps spin up worker pools: the scaling cells are wall-clock
    // measurements and must not share the process with leftover thread
    // and allocator churn from the parallel phase.
    let hot = hot_path_scaling();
    let exec_hot = exec_hot_path_scaling();
    let mem_hot = mem_hot_path_scaling();
    let dp_shard = dp_shard_scaling();
    let sweep = vec![sweep_throughput_filtered(SWEEP_THROUGHPUT_CELLS, scheme)];
    // Cell counts: fig2a sweeps N ∈ 1..=4; table_a runs 4 (m, N)
    // configurations × 3 schemes; tango runs 4 group sizes + 5 pack
    // sizes; conformance's matrix is 145 cells (`repro conformance`),
    // 29 per scheme when filtered.
    let conformance_cells = if scheme.is_some() { 29 } else { 145 };
    let experiments = vec![
        experiment("fig2a", 4, workers, || figures::fig2a().0),
        experiment("table_a", 12, workers, || figures::table_a().0),
        experiment("tango", 9, workers, || figures::tango().0),
        experiment("conformance", conformance_cells, workers, move || {
            harmony_harness::run_conformance_filtered(0, scheme).render()
        }),
    ];
    let tune = figures::pack_sweep_tune();
    let recompute = recompute_sweep();

    // Representative summaries for the JSON export — including a
    // PP run whose per-stage swap skew exercises the imbalance field.
    let model = workloads::fig2_model();
    let w = workloads::fig2_workload();
    let topo = presets::commodity_4x1080ti();
    let summaries = vec![
        simulate::run(SchemeKind::BaselineDp, &model, &topo, &w)
            .expect("bench dp run")
            .0,
        simulate::run(SchemeKind::BaselinePp, &model, &topo, &w)
            .expect("bench pp run")
            .0,
    ];

    BenchReport {
        workers,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        experiments,
        hot_path: hot,
        exec_hot_path: exec_hot,
        mem_hot_path: mem_hot,
        dp_shard,
        sweep_throughput: sweep,
        recompute_sweep: recompute,
        tuner_plan_cache_hits: tune.plan_cache_hits,
        tuner_plan_cache_misses: tune.plan_cache_misses,
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_path_counts_all_completions() {
        let h = hot_path(16, 2);
        assert_eq!(h.events, 32);
        assert!(h.secs >= 0.0);
    }

    #[test]
    fn scaling_json_carries_pre_change_baseline() {
        // A canonical scale point must be exported with the recorded
        // pre-change baseline so the speedup is visible in the JSON.
        let report = BenchReport {
            workers: 1,
            available_parallelism: 1,
            experiments: vec![],
            hot_path: vec![HotPathTiming {
                transfers: 4096,
                waves: 1,
                events: 4096,
                secs: 0.5,
            }],
            exec_hot_path: vec![ExecHotPathTiming {
                layers: EXEC_HOT_PATH_SCALES[3].0,
                microbatches: EXEC_HOT_PATH_SCALES[3].1,
                gpus: EXEC_HOT_PATH_SCALES[3].2,
                iterations: EXEC_HOT_PATH_SCALES[3].3,
                events: 1000,
                secs: 0.1,
                dense_secs: 0.2,
                slab_fresh_allocs: 12,
            }],
            mem_hot_path: vec![MemHotPathTiming {
                layers: MEM_HOT_PATH_SCALES[3].0,
                microbatches: MEM_HOT_PATH_SCALES[3].1,
                gpus: MEM_HOT_PATH_SCALES[3].2,
                iterations: MEM_HOT_PATH_SCALES[3].3,
                events: 1000,
                secs: 0.1,
                dense_mem_secs: 0.2,
                fresh_allocs: 3,
                victim_pops: 40,
            }],
            dp_shard: vec![],
            sweep_throughput: vec![SweepThroughputTiming {
                cells: SWEEP_THROUGHPUT_CELLS,
                fresh_secs: 0.2,
                pooled_secs: 0.1,
                plan_cache_hits: 36,
                plan_cache_misses: 12,
                identical: true,
            }],
            recompute_sweep: vec![RecomputeSweepPoint {
                pack_size: RECOMPUTE_SWEEP_PACKS[0],
                stash_throughput: 0.2,
                recompute_throughput: 0.3,
                stash_swap_bytes: 100,
                recompute_swap_bytes: 40,
                stash_class_bytes: 60,
            }],
            tuner_plan_cache_hits: 0,
            tuner_plan_cache_misses: 5,
            summaries: vec![],
        };
        let text = report.to_json();
        assert!(text.contains("\"pre_change_events_per_sec\": 22217"));
        let sweep_baseline = format!(
            "\"pre_change_cells_per_sec\": {}",
            number(SWEEP_PRE_CHANGE_CELLS_PER_SEC)
        );
        let sweep_section = text
            .split("\"sweep_throughput\"")
            .nth(1)
            .expect("sweep section present");
        assert!(sweep_section.contains(&sweep_baseline));
        let exec_baseline = format!(
            "\"pre_change_events_per_sec\": {}",
            number(EXEC_HOT_PATH_PRE_CHANGE_EVENTS_PER_SEC[3])
        );
        let exec_section = text
            .split("\"exec_hot_path_scaling\"")
            .nth(1)
            .expect("exec section present");
        assert!(exec_section.contains(&exec_baseline));
        let mem_baseline = format!(
            "\"pre_change_events_per_sec\": {}",
            number(MEM_HOT_PATH_PRE_CHANGE_EVENTS_PER_SEC[3])
        );
        let mem_section = text
            .split("\"mem_hot_path_scaling\"")
            .nth(1)
            .expect("mem section present");
        assert!(mem_section.contains(&mem_baseline));
        let recompute_section = text
            .split("\"recompute_vs_swap\"")
            .nth(1)
            .expect("recompute section present");
        let recompute_baseline = format!(
            "\"pre_change_stash_seqs_per_sec\": {}",
            number(RECOMPUTE_SWEEP_PRE_CHANGE_SEQS_PER_SEC[0].0)
        );
        assert!(recompute_section.contains(&recompute_baseline));
        assert!(recompute_section.contains("\"recompute_wins\": true"));
        harmony_trace::json::parse(&text).expect("valid JSON");
    }

    #[test]
    fn render_flags_host_limited_speedups() {
        // On a 1-core host a ~1× parallel speedup is a fact of the
        // hardware, not a regression; the table must say so. With real
        // parallelism available, no annotation.
        let mut report = BenchReport {
            workers: 4,
            available_parallelism: 1,
            experiments: vec![ExperimentTiming {
                name: "unit",
                cells: 4,
                sequential_secs: 1.0,
                parallel_secs: 1.0,
                identical: true,
            }],
            hot_path: vec![],
            exec_hot_path: vec![],
            mem_hot_path: vec![],
            dp_shard: vec![DpShardTiming {
                shards_requested: 2,
                shards_used: 2,
                secs: 1.0,
                unsharded_secs: 1.0,
                identical: true,
            }],
            sweep_throughput: vec![],
            recompute_sweep: vec![],
            tuner_plan_cache_hits: 0,
            tuner_plan_cache_misses: 0,
            summaries: vec![],
        };
        assert!(report.render().contains("(host-limited)"));
        assert!(report.to_json().contains("\"host_limited\": true"));
        report.available_parallelism = 8;
        assert!(!report.render().contains("(host-limited)"));
        assert!(report.to_json().contains("\"host_limited\": false"));
    }

    #[test]
    fn dp_shard_sweep_is_identical_and_clamped() {
        let rows = dp_shard_scaling();
        assert_eq!(rows.len(), DP_SHARD_SCALES.len());
        for d in &rows {
            assert!(
                d.identical,
                "shards={} merged output diverged from the whole run",
                d.shards_requested
            );
            assert!(d.shards_used >= 1 && d.shards_used <= 4);
            assert!(d.shards_used <= d.shards_requested.max(1));
        }
    }

    #[test]
    fn sweep_throughput_is_identical_and_caches_plans() {
        // A small sequence keeps the test fast; 16 cells over 15 distinct
        // plan keys still forces a revisit, so the cache must show hits.
        let t = sweep_throughput(16);
        assert!(t.identical, "pooled leg diverged from fresh");
        assert_eq!(t.cells, 16);
        assert_eq!(t.plan_cache_misses, 15, "15 distinct plan keys");
        assert!(t.plan_cache_hits > 0, "revisits must hit the plan cache");
        assert!(t.fresh_secs > 0.0 && t.pooled_secs > 0.0);
    }

    #[test]
    fn json_is_wellformed_and_null_free() {
        // A tiny report (skip the expensive experiments) must serialise
        // to parseable, null-free JSON even with edge-case timings.
        let report = BenchReport {
            workers: 4,
            available_parallelism: 1,
            experiments: vec![ExperimentTiming {
                name: "unit",
                cells: 4,
                sequential_secs: 0.25,
                parallel_secs: 0.0, // degenerate: speedup must not emit Inf
                identical: true,
            }],
            hot_path: vec![hot_path(4, 1)],
            exec_hot_path: vec![exec_hot_path(4, 2, 2, 1)],
            mem_hot_path: vec![mem_hot_path(4, 2, 2, 1)],
            dp_shard: vec![DpShardTiming {
                shards_requested: 4,
                shards_used: 3,
                secs: 0.0, // degenerate: speedup must not emit Inf
                unsharded_secs: 0.25,
                identical: true,
            }],
            sweep_throughput: vec![SweepThroughputTiming {
                cells: 12,
                fresh_secs: 0.2,
                pooled_secs: 0.0, // degenerate: speedup must not emit Inf
                plan_cache_hits: 0,
                plan_cache_misses: 12,
                identical: true,
            }],
            recompute_sweep: vec![],
            tuner_plan_cache_hits: 0,
            tuner_plan_cache_misses: 5,
            summaries: vec![RunSummary {
                name: "unit".to_string(),
                sim_secs: 1.0,
                samples: 2,
                swap_in_bytes: vec![0, 10],
                swap_out_bytes: vec![0, 0],
                p2p_bytes: 0,
                peak_mem_bytes: vec![1, 1],
                demand_bytes: vec![1, 1],
                swap_by_class: Default::default(),
                channel_busy_secs: Default::default(),
                events_processed: 7,
                elapsed_secs: 0.25,
                setup_secs: 0.01,
                resilience: None,
                mem_counters: None,
            }],
        };
        let text = report.to_json();
        assert!(!text.contains("null"), "null leaked: {text}");
        harmony_trace::json::parse(&text).expect("valid JSON");
    }
}
