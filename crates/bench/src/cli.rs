//! Strict flag parsing shared by the `repro` gates (`bench`,
//! `exec-smoke`, `mem-smoke`, `fault-sweep`).
//!
//! One table-driven parser instead of four hand-rolled loops, so the
//! strictness contract is uniform and cannot drift per subcommand:
//! unknown flags are usage errors (exit 2 in the binary), value flags
//! never silently fall back to a default when their value is missing or
//! malformed, and the diagnostic always names the offending token plus
//! the accepted grammar. Each test in `tests/cli.rs` pins a bug that
//! used to do exactly the silent thing.

use harmony::simulate::SchemeKind;

/// How a value-taking flag treats a missing value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// `usize >= 1`; a bare trailing flag is a usage error
    /// (`--workers` must never quietly mean "the default pool").
    PositiveInt,
    /// `u64`; a bare trailing flag falls back to the subcommand's
    /// default (`--seed` alone means "the documented default seed"),
    /// but a present-and-malformed value is still an error.
    OptionalInt,
    /// A scheme name from [`SchemeKind::ALL`]; a bare flag or a name
    /// [`SchemeKind::from_name`] does not know is a usage error listing
    /// the valid schemes — a misspelt `--scheme` must never silently
    /// run the unfiltered (or an empty) grid.
    Scheme,
}

/// The `a|b|c` list of valid scheme names quoted in `--scheme`
/// diagnostics.
fn scheme_names() -> String {
    SchemeKind::ALL
        .iter()
        .map(|s| s.name())
        .collect::<Vec<_>>()
        .join("|")
}

/// One value-taking flag.
#[derive(Debug, Clone, Copy)]
pub struct ValueFlag {
    /// Flag token, e.g. `--workers`.
    pub name: &'static str,
    /// Missing-value and parse discipline.
    pub kind: ValueKind,
}

/// The flag grammar of one subcommand.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// Subcommand name, used in the unknown-flag diagnostic.
    pub cmd: &'static str,
    /// Grammar summary quoted in diagnostics, e.g.
    /// `[--json] [--workers N]`.
    pub expected: &'static str,
    /// Presence-only flags.
    pub bools: &'static [&'static str],
    /// Value-taking flags.
    pub values: &'static [ValueFlag],
}

/// `repro bench [--json] [--workers N] [--scheme NAME]`.
pub const BENCH: Spec = Spec {
    cmd: "bench",
    expected: "[--json] [--workers N] [--scheme NAME]",
    bools: &["--json"],
    values: &[
        ValueFlag {
            name: "--workers",
            kind: ValueKind::PositiveInt,
        },
        ValueFlag {
            name: "--scheme",
            kind: ValueKind::Scheme,
        },
    ],
};

/// `repro conformance [seed] [--scheme NAME]` — the positional seed is
/// stripped by the binary before flag parsing (back-compat with
/// `conformance 7`).
pub const CONFORMANCE: Spec = Spec {
    cmd: "conformance",
    expected: "[seed] [--scheme NAME]",
    bools: &[],
    values: &[ValueFlag {
        name: "--scheme",
        kind: ValueKind::Scheme,
    }],
};

/// `repro sweep-smoke [--cells N]`.
pub const SWEEP_SMOKE: Spec = Spec {
    cmd: "sweep-smoke",
    expected: "[--cells N]",
    bools: &[],
    values: &[ValueFlag {
        name: "--cells",
        kind: ValueKind::PositiveInt,
    }],
};

/// `repro exec-smoke [--grid] [--scheme NAME]`.
pub const EXEC_SMOKE: Spec = Spec {
    cmd: "exec-smoke",
    expected: "[--grid] [--scheme NAME]",
    bools: &["--grid"],
    values: &[ValueFlag {
        name: "--scheme",
        kind: ValueKind::Scheme,
    }],
};

/// `repro mem-smoke [--grid]`.
pub const MEM_SMOKE: Spec = Spec {
    cmd: "mem-smoke",
    expected: "[--grid]",
    bools: &["--grid"],
    values: &[],
};

/// `repro fault-sweep [--smoke] [--json] [--seed N]`.
pub const FAULT_SWEEP: Spec = Spec {
    cmd: "fault-sweep",
    expected: "[--smoke] [--json] [--seed N]",
    bools: &["--smoke", "--json"],
    values: &[ValueFlag {
        name: "--seed",
        kind: ValueKind::OptionalInt,
    }],
};

/// A successfully parsed invocation; query with [`Parsed::has`] and
/// [`Parsed::value`].
#[derive(Debug)]
pub struct Parsed<'a> {
    args: &'a [String],
    values: Vec<(&'static str, Option<u64>)>,
}

impl Parsed<'_> {
    /// Whether the presence-only flag `name` appeared.
    pub fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The parsed value of flag `name`, `None` when absent (or bare and
    /// [`ValueKind::OptionalInt`]).
    pub fn value(&self, name: &str) -> Option<u64> {
        self.values
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }

    /// The scheme a [`ValueKind::Scheme`] flag named, `None` when absent.
    /// (Stored as its index into [`SchemeKind::ALL`] by `parse`.)
    pub fn scheme(&self, name: &str) -> Option<SchemeKind> {
        self.value(name).map(|i| SchemeKind::ALL[i as usize])
    }
}

/// Parses `args` against `spec`; the returned error is the exact
/// diagnostic to print before exiting 2. Value flags are resolved (and
/// their errors reported) before the unknown-flag sweep, so
/// `--workers garbage --bogus` names the garbage value first — the more
/// actionable of the two problems.
pub fn parse<'a>(spec: &Spec, args: &'a [String]) -> Result<Parsed<'a>, String> {
    let mut values = Vec::with_capacity(spec.values.len());
    for vf in spec.values {
        let v = match args.iter().position(|a| a == vf.name) {
            None => None,
            Some(i) => match args.get(i + 1) {
                None => match vf.kind {
                    ValueKind::PositiveInt => {
                        return Err(format!(
                            "{} requires a value; expected {}",
                            vf.name, spec.expected
                        ));
                    }
                    ValueKind::Scheme => {
                        return Err(format!(
                            "{} requires a scheme name; one of {}",
                            vf.name,
                            scheme_names()
                        ));
                    }
                    ValueKind::OptionalInt => None,
                },
                Some(s) => match vf.kind {
                    ValueKind::PositiveInt => match s.parse::<u64>() {
                        Ok(n) if n >= 1 => Some(n),
                        _ => {
                            return Err(format!("{} takes a positive integer, got `{s}`", vf.name));
                        }
                    },
                    ValueKind::OptionalInt => match s.parse::<u64>() {
                        Ok(n) => Some(n),
                        Err(_) => {
                            return Err(format!("{} takes an integer, got `{s}`", vf.name));
                        }
                    },
                    ValueKind::Scheme => match SchemeKind::from_name(s) {
                        Some(k) => {
                            let ix = SchemeKind::ALL.iter().position(|&a| a == k);
                            Some(ix.expect("ALL contains every SchemeKind") as u64)
                        }
                        None => {
                            return Err(format!(
                                "unknown scheme `{s}`; valid schemes: {}",
                                scheme_names()
                            ));
                        }
                    },
                },
            },
        };
        values.push((vf.name, v));
    }
    if let Some(bad) = args.iter().enumerate().find_map(|(i, a)| {
        let known = spec.bools.contains(&a.as_str()) || spec.values.iter().any(|vf| vf.name == a);
        // A token right after a value flag is that flag's value when it
        // fits the flag's grammar — integers, or (for `--scheme`) any
        // valid scheme name: an invalid one already errored above.
        let is_value = i > 0
            && spec.values.iter().any(|vf| {
                vf.name == args[i - 1] && (a.parse::<u64>().is_ok() || vf.kind == ValueKind::Scheme)
            });
        (!known && !is_value).then_some(a)
    }) {
        return Err(format!(
            "unknown {} flag `{bad}`; expected {}",
            spec.cmd, spec.expected
        ));
    }
    Ok(Parsed { args, values })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bools_and_values_round_trip() {
        let args = argv(&["--json", "--workers", "3"]);
        let p = parse(&BENCH, &args).expect("valid invocation");
        assert!(p.has("--json"));
        assert_eq!(p.value("--workers"), Some(3));
        let args = argv(&[]);
        let p = parse(&BENCH, &args).expect("empty is valid");
        assert!(!p.has("--json"));
        assert_eq!(p.value("--workers"), None);
    }

    #[test]
    fn bare_required_value_flag_is_an_error() {
        let args = argv(&["--workers"]);
        let e = parse(&BENCH, &args).expect_err("bare --workers");
        assert_eq!(
            e,
            "--workers requires a value; expected [--json] [--workers N] [--scheme NAME]"
        );
    }

    #[test]
    fn bare_optional_value_flag_falls_back() {
        let args = argv(&["--smoke", "--seed"]);
        let p = parse(&FAULT_SWEEP, &args).expect("bare --seed defaults");
        assert!(p.has("--smoke"));
        assert_eq!(p.value("--seed"), None);
    }

    #[test]
    fn malformed_values_are_errors_with_the_exact_message() {
        for bad in ["0", "-3", "four"] {
            let args = argv(&["--workers", bad]);
            let e = parse(&BENCH, &args).expect_err("bad workers value");
            assert_eq!(
                e,
                format!("--workers takes a positive integer, got `{bad}`")
            );
        }
        let args = argv(&["--seed", "x"]);
        let e = parse(&FAULT_SWEEP, &args).expect_err("bad seed value");
        assert_eq!(e, "--seed takes an integer, got `x`");
    }

    #[test]
    fn unknown_flags_name_the_token_and_the_grammar() {
        let args = argv(&["--gird"]);
        let e = parse(&MEM_SMOKE, &args).expect_err("typo");
        assert_eq!(e, "unknown mem-smoke flag `--gird`; expected [--grid]");
        let args = argv(&["--workers", "2", "extra"]);
        let e = parse(&BENCH, &args).expect_err("stray operand");
        assert_eq!(
            e,
            "unknown bench flag `extra`; expected [--json] [--workers N] [--scheme NAME]"
        );
    }

    #[test]
    fn sweep_smoke_grammar_is_strict() {
        let args = argv(&["--cells", "32"]);
        let p = parse(&SWEEP_SMOKE, &args).expect("valid invocation");
        assert_eq!(p.value("--cells"), Some(32));
        let args = argv(&["--cells"]);
        let e = parse(&SWEEP_SMOKE, &args).expect_err("bare --cells");
        assert_eq!(e, "--cells requires a value; expected [--cells N]");
        let args = argv(&["--cels", "32"]);
        let e = parse(&SWEEP_SMOKE, &args).expect_err("typo");
        assert_eq!(e, "unknown sweep-smoke flag `--cels`; expected [--cells N]");
    }

    #[test]
    fn scheme_flags_round_trip_every_valid_name() {
        for (i, k) in SchemeKind::ALL.iter().enumerate() {
            let args = argv(&["--scheme", k.name()]);
            for spec in [&BENCH, &EXEC_SMOKE, &CONFORMANCE] {
                let p = parse(spec, &args)
                    .unwrap_or_else(|e| panic!("{} --scheme {}: {e}", spec.cmd, k.name()));
                assert_eq!(p.scheme("--scheme"), Some(*k), "index {i}");
            }
        }
        let args = argv(&[]);
        let p = parse(&CONFORMANCE, &args).expect("empty is valid");
        assert_eq!(p.scheme("--scheme"), None);
    }

    #[test]
    fn unknown_scheme_names_list_the_valid_schemes() {
        // A misspelt scheme must never silently run the unfiltered (or
        // an empty) grid — the diagnostic lists every valid name.
        for bad in ["pipe-1f2b", "harmony", "PIPE-1F1B", ""] {
            let args = argv(&["--scheme", bad]);
            let e = parse(&CONFORMANCE, &args).expect_err("bad scheme name");
            assert_eq!(
                e,
                format!(
                    "unknown scheme `{bad}`; valid schemes: \
                     baseline-dp|baseline-pp|harmony-dp|harmony-pp|pipe-1f1b"
                )
            );
        }
        let args = argv(&["--scheme"]);
        let e = parse(&EXEC_SMOKE, &args).expect_err("bare --scheme");
        assert_eq!(
            e,
            "--scheme requires a scheme name; one of \
             baseline-dp|baseline-pp|harmony-dp|harmony-pp|pipe-1f1b"
        );
    }

    #[test]
    fn scheme_values_are_not_stray_operands() {
        // The unknown-flag sweep must not flag a scheme name that is the
        // value of the preceding `--scheme`.
        let args = argv(&["--grid", "--scheme", "pipe-1f1b"]);
        let p = parse(&EXEC_SMOKE, &args).expect("grid + scheme filter");
        assert!(p.has("--grid"));
        assert_eq!(p.scheme("--scheme"), Some(SchemeKind::Pipe1F1B));
        // ...but the same name anywhere else is still a stray operand.
        let args = argv(&["pipe-1f1b"]);
        let e = parse(&EXEC_SMOKE, &args).expect_err("stray scheme operand");
        assert!(e.contains("unknown exec-smoke flag `pipe-1f1b`"), "{e}");
    }

    #[test]
    fn value_errors_win_over_unknown_flag_errors() {
        let args = argv(&["--workers", "--json"]);
        let e = parse(&BENCH, &args).expect_err("flag where value expected");
        assert_eq!(e, "--workers takes a positive integer, got `--json`");
    }
}
