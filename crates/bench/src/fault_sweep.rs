//! `repro fault-sweep`: throughput degradation under seeded fault plans
//! with the resilience layer armed (DESIGN §10).
//!
//! One reference cell — a uniform 6-layer model on a pressured 2-GPU
//! server — is run clean to calibrate the fault horizon, then re-run
//! under [`FaultPlan`]s of growing size (0, 1, 2, 4, 8 faults) drawn
//! from one seed. Every run completes (the layer spills, reroutes and
//! retries instead of aborting) and the report shows throughput
//! degrading smoothly with the fault count alongside the resilience
//! actions each plan provoked. `--smoke` turns the sweep into a gate:
//! the 4-fault point must stay within 10× of clean throughput.

use harmony::prelude::Table;
use harmony::simulate::SchemeKind;
use harmony_harness::execdiff::{run_mode, ExecDiffCase};
use harmony_harness::FaultPlan;
use harmony_sched::TimedFault;
use harmony_trace::json::number;
use harmony_trace::summary::{ResilienceOutcome, RunSummary};

use crate::workloads;

/// Fault counts swept, in order. Must include 0 (the clean calibration
/// point) and 4 (the smoke-gate point).
pub const FAULT_SWEEP_COUNTS: [usize; 5] = [0, 1, 2, 4, 8];

/// Largest tolerated clean-over-faulted throughput ratio at the 4-fault
/// point before the smoke gate fails.
pub const SMOKE_MAX_SLOWDOWN: f64 = 10.0;

/// One swept point: a full run under `faults` injected faults.
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// Faults injected into this run.
    pub faults: usize,
    /// The run's summary (resilience outcome populated iff `faults > 0`).
    pub summary: RunSummary,
}

impl FaultSweepPoint {
    /// Samples per simulated second.
    pub fn throughput(&self) -> f64 {
        self.summary.throughput()
    }

    /// The resilience outcome, defaulting to all-zero for the clean point.
    pub fn outcome(&self) -> ResilienceOutcome {
        self.summary.resilience.clone().unwrap_or_default()
    }
}

/// The full `repro fault-sweep` result.
#[derive(Debug, Clone)]
pub struct FaultSweepReport {
    /// Seed every fault plan was drawn from.
    pub seed: u64,
    /// Fault horizon in simulated seconds (scaled to the clean run).
    pub horizon_secs: f64,
    /// One point per [`FAULT_SWEEP_COUNTS`] entry, in order.
    pub points: Vec<FaultSweepPoint>,
}

impl FaultSweepReport {
    /// Throughput of the clean (0-fault) calibration point.
    pub fn clean_throughput(&self) -> f64 {
        self.throughput_at(0).unwrap_or(0.0)
    }

    /// Throughput at a given fault count, if that point was swept.
    pub fn throughput_at(&self, faults: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.faults == faults)
            .map(FaultSweepPoint::throughput)
    }

    /// The smoke gate: `None` when throughput under 4 faults holds within
    /// [`SMOKE_MAX_SLOWDOWN`]× of clean, otherwise the failure message.
    pub fn smoke_failure(&self) -> Option<String> {
        let clean = self.clean_throughput();
        let faulted = self.throughput_at(4)?;
        if faulted * SMOKE_MAX_SLOWDOWN >= clean {
            None
        } else {
            Some(format!(
                "fault-sweep smoke gate: throughput under 4 faults ({faulted:.1} samples/s) \
                 fell more than {SMOKE_MAX_SLOWDOWN}x below clean ({clean:.1} samples/s)"
            ))
        }
    }

    /// Human-readable degradation table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "repro fault-sweep — harmony-pp, pressured 2-GPU server, seed {} \
                 (horizon {:.3} ms)",
                self.seed,
                self.horizon_secs * 1e3
            ),
            &[
                "faults",
                "sim (ms)",
                "samples/s",
                "vs clean",
                "spills",
                "reroutes",
                "retries",
                "overcommits",
                "mode",
            ],
        );
        let clean = self.clean_throughput();
        for p in &self.points {
            let o = p.outcome();
            let rel = if clean > 0.0 {
                p.throughput() / clean
            } else {
                0.0
            };
            t.row(&[
                p.faults.to_string(),
                format!("{:.3}", p.summary.sim_secs * 1e3),
                format!("{:.1}", p.throughput()),
                format!("{:.2}×", rel),
                o.spill_events.to_string(),
                o.rerouted_transfers.to_string(),
                o.retries.to_string(),
                o.overcommits.to_string(),
                o.final_mode.as_str().to_string(),
            ]);
        }
        t.render()
    }

    /// The `BENCH_fault_sweep.json` document (null-free by construction).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"fault_sweep\",\n");
        out.push_str("  \"generated_by\": \"repro fault-sweep --json\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"horizon_secs\": {},\n",
            number(self.horizon_secs)
        ));
        out.push_str("  \"points\": [\n");
        let clean = self.clean_throughput();
        for (i, p) in self.points.iter().enumerate() {
            let o = p.outcome();
            let rel = if clean > 0.0 {
                p.throughput() / clean
            } else {
                0.0
            };
            out.push_str(&format!(
                "    {{\"faults\": {}, \"sim_secs\": {}, \"throughput\": {}, \
                 \"vs_clean\": {}, \"resilience\": {}}}{}\n",
                p.faults,
                number(p.summary.sim_secs),
                number(p.throughput()),
                number(rel),
                o.to_json(),
                if i + 1 < self.points.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the reference cell once per [`FAULT_SWEEP_COUNTS`] entry. The
/// clean run doubles as the horizon calibration: fault times are spread
/// over 90% of its simulated duration so every fault lands mid-run.
pub fn run(seed: u64) -> FaultSweepReport {
    let model = workloads::uniform_model(6, 4096);
    let topo = workloads::pressured_topo(2);
    // Adam-state workload: a layer's update working set (weights, grads,
    // two optimizer slots — 64 KiB) sits close to the 96 KiB capacity, so
    // the generator's capacity squeezes (to 60–95% of nominal) can push
    // the run into genuine pressure-spill territory rather than being
    // absorbed by slack.
    let w = workloads::uniform_workload(4);
    let exec = |faults: &[TimedFault]| -> RunSummary {
        let case = ExecDiffCase {
            scheme: SchemeKind::HarmonyPp,
            model: &model,
            topo: &topo,
            workload: &w,
            faults,
            prefetch: true,
            iterations: 2,
            resilience: Some(seed),
        };
        let (summary, _, _) = run_mode(&case, false).unwrap_or_else(|e| {
            panic!("fault-sweep run with {} faults aborted: {e}", faults.len())
        });
        summary
    };
    let clean = exec(&[]);
    let horizon_secs = clean.sim_secs * 0.9;
    let points = FAULT_SWEEP_COUNTS
        .iter()
        .map(|&count| {
            let summary = if count == 0 {
                clean.clone()
            } else {
                exec(&FaultPlan::generate(seed, &topo, horizon_secs, count).faults)
            };
            FaultSweepPoint {
                faults: count,
                summary,
            }
        })
        .collect();
    FaultSweepReport {
        seed,
        horizon_secs,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_completes_and_reports_every_point() {
        let report = run(0);
        assert_eq!(report.points.len(), FAULT_SWEEP_COUNTS.len());
        for (p, &want) in report.points.iter().zip(FAULT_SWEEP_COUNTS.iter()) {
            assert_eq!(p.faults, want);
            assert!(p.throughput() > 0.0, "{want}-fault point produced no work");
            assert_eq!(
                p.summary.resilience.is_some(),
                want > 0,
                "outcome populated iff faults were injected"
            );
        }
        assert!(
            report.smoke_failure().is_none(),
            "reference cell fails its own gate"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run(7);
        let b = run(7);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_is_wellformed_and_null_free() {
        let text = run(0).to_json();
        assert!(!text.contains("null"), "null leaked: {text}");
        harmony_trace::json::parse(&text).expect("valid JSON");
    }

    #[test]
    fn smoke_gate_trips_on_a_collapsed_curve() {
        let mut report = run(0);
        for p in &mut report.points {
            if p.faults == 4 {
                p.summary.sim_secs *= 100.0; // collapse throughput 100×
            }
        }
        let msg = report.smoke_failure().expect("gate must trip");
        assert!(msg.contains("4 faults"), "unhelpful message: {msg}");
    }
}
