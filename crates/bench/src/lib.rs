//! # harmony-bench
//!
//! The benchmark harness: one generator per figure/table of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index). The `repro`
//! binary prints any of them; the criterion benches in `benches/` time the
//! underlying simulations; integration tests assert the reproduced
//! *shapes* (who wins, by roughly what factor, where crossovers fall).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod custom;
pub mod fault_sweep;
pub mod figures;
pub mod sweeps;
pub mod workloads;
