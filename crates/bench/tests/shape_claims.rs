//! Shape assertions over the full benchmark workloads: the qualitative
//! results the paper reports must hold in the reproduction (who wins, by
//! roughly what factor, where crossovers fall). These run the same
//! generators as the `repro` binary.

use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};
use harmony_bench::{figures, workloads};

#[test]
fn fig1_growth_is_exponential() {
    let rendered = figures::fig1();
    assert!(rendered.contains("GPT-3"));
    assert!(rendered.contains("175.0B"));
}

#[test]
fn fig2a_swap_linear_throughput_saturates() {
    let (_, points) = figures::fig2a();
    // Swap-out ∝ N within 15%.
    let base = points[0].swap_out as f64;
    for p in &points {
        let ratio = p.swap_out as f64 / base;
        assert!(
            (ratio - p.n as f64).abs() < 0.15 * p.n as f64 + 0.35,
            "N={}: swap ratio {ratio:.2}",
            p.n
        );
    }
    // Throughput saturates: 4 GPUs give < 1.6× of one GPU.
    let t1 = points[0].throughput;
    let t4 = points[3].throughput;
    assert!(
        t4 < 1.6 * t1,
        "baseline DP scaled {t1:.3} -> {t4:.3} (too well)"
    );
}

#[test]
fn fig2c_demand_and_swap_skew_head_to_tail() {
    let (_, points) = figures::fig2c();
    assert_eq!(points.len(), 4);
    for w in points.windows(2) {
        assert!(
            w[0].demand >= w[1].demand,
            "demand not monotone head→tail: {points:?}"
        );
    }
    assert!(
        points[0].swap > points[3].swap,
        "head must swap more than tail"
    );
}

#[test]
fn fig5bc_measured_reduction_matches_headline_factor() {
    // Harmony-DP weight swaps must be ≈ (4m+2)/3 times lower at m = 4.
    let model = workloads::uniform_model(6, 4096);
    let topo = workloads::tight_topo(2);
    let w = workloads::tight_workload(4);
    let (b, _) = simulate::run(SchemeKind::BaselineDp, &model, &topo, &w).expect("run");
    let (h, _) = simulate::run(SchemeKind::HarmonyDp, &model, &topo, &w).expect("run");
    let factor = b.swap_by_class["weight"] as f64 / h.swap_by_class["weight"].max(1) as f64;
    let expected = (4.0 * 4.0 + 2.0) / 3.0; // 6×
    assert!(
        (factor - expected).abs() < expected * 0.25,
        "reduction factor {factor:.2} vs expected {expected:.2}"
    );
}

#[test]
fn dominance_harmony_pp_smallest_total() {
    let (_, totals) = figures::dominance();
    let hpp = totals
        .iter()
        .find(|(k, _)| *k == SchemeKind::HarmonyPp)
        .expect("present")
        .1;
    for (k, v) in &totals {
        assert!(hpp <= *v, "harmony-pp {hpp} vs {} {v}", k.name());
    }
    // Baseline DP is the worst.
    let bdp = totals
        .iter()
        .find(|(k, _)| *k == SchemeKind::BaselineDp)
        .expect("present")
        .1;
    for (k, v) in &totals {
        assert!(bdp >= *v, "baseline-dp {bdp} vs {} {v}", k.name());
    }
}

#[test]
fn tango_group_sweep_has_interior_throughput_optimum_or_knee() {
    let (_, group_points, _) = figures::tango();
    // Swap monotonically falls with group size…
    for w in group_points.windows(2) {
        assert!(w[1].swap <= w[0].swap);
    }
    // …while throughput does NOT monotonically improve: the biggest group
    // is slower than the best configuration (the tango's tension).
    let best = group_points
        .iter()
        .map(|p| p.throughput)
        .fold(0.0f64, f64::max);
    let largest_group = group_points.last().expect("non-empty").throughput;
    assert!(
        largest_group < best,
        "largest group should sacrifice throughput: {largest_group} vs best {best}"
    );
}

#[test]
fn tuned_harmony_pp_beats_baseline_pp_on_both_axes() {
    let model = workloads::analytical_model();
    let topo = presets::commodity_4x1080ti();
    let base = workloads::fig2_workload();
    let (bpp, _) = simulate::run(SchemeKind::BaselinePp, &model, &topo, &base).expect("run");
    // Tune the group size like the Performance Tuner would.
    let mut best: Option<harmony::prelude::RunSummary> = None;
    for g in [1usize, 2, 4, 8] {
        let w = WorkloadConfig {
            group_size: Some(g),
            ..base
        };
        let (s, _) = simulate::run(SchemeKind::HarmonyPp, &model, &topo, &w).expect("run");
        if best
            .as_ref()
            .is_none_or(|b| s.throughput() > b.throughput())
        {
            best = Some(s);
        }
    }
    let best = best.expect("swept");
    assert!(
        best.throughput() > bpp.throughput(),
        "tuned harmony-pp {:.3} vs baseline-pp {:.3} seqs/s",
        best.throughput(),
        bpp.throughput()
    );
    assert!(
        best.global_swap() < bpp.global_swap(),
        "tuned harmony-pp swap {} vs baseline-pp {}",
        best.global_swap(),
        bpp.global_swap()
    );
}

#[test]
fn prefetch_speeds_up_harmony_but_not_baseline_dp() {
    let (_, points) = figures::prefetch_ablation();
    let by = |label: &str| {
        points
            .iter()
            .find(|p| p.label.starts_with(label))
            .expect("present")
    };
    let bdp = by("baseline-dp");
    assert!(
        (bdp.overlapped / bdp.serial - 1.0).abs() < 0.02,
        "baseline DP has nothing to prefetch"
    );
    for g in ["harmony-pp G=2", "harmony-pp G=8"] {
        let p = by(g);
        assert!(
            p.overlapped > p.serial * 1.05,
            "{g}: prefetch should help ({} vs {})",
            p.overlapped,
            p.serial
        );
    }
}

#[test]
fn recompute_eliminates_stash_swap_class() {
    let (_, rows) = figures::recompute_ablation();
    for (pack, stash_run, rec_run) in &rows {
        assert_eq!(
            rec_run.swap_by_class["stash"], 0,
            "pack {pack}: recompute must not swap stash"
        );
        assert!(
            rec_run.global_swap() < stash_run.global_swap(),
            "pack {pack}: recompute should reduce total swap here"
        );
    }
}

#[test]
fn steady_state_volumes_stay_on_the_closed_forms() {
    let (_, rows) = figures::steady_state();
    let analytic = |kind: SchemeKind| -> f64 {
        match kind {
            SchemeKind::BaselineDp => (4.0 * 4.0 + 2.0) * 2.0,
            SchemeKind::HarmonyDp => 3.0 * 2.0,
            SchemeKind::HarmonyPp => 3.0,
            SchemeKind::BaselinePp | SchemeKind::Pipe1F1B => unreachable!("not in the table"),
        }
    };
    for (kind, k, per_iter) in &rows {
        let a = analytic(*kind);
        let ratio = per_iter / a;
        assert!(
            (0.7..=1.1).contains(&ratio),
            "{} k={k}: per-iter {per_iter:.2} vs analytic {a:.2}",
            kind.name()
        );
    }
}
