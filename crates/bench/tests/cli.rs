//! CLI strictness of the `repro` binary: malformed invocations must
//! fail loudly (exit 2 with a diagnostic), never silently fall back to
//! a default. Each test here pins a bug that used to do exactly that —
//! `exec-smoke` ignored everything but `nth(2) == "--grid"`, and
//! `bench --workers` with a missing value quietly ran at the default
//! pool size.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary must spawn")
}

fn assert_usage_error(out: &Output, needle: &str, what: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{what}: expected exit 2, got {:?} (stderr: {stderr})",
        out.status.code()
    );
    assert!(
        stderr.contains(needle),
        "{what}: stderr must name the problem (`{needle}`), got: {stderr}"
    );
}

#[test]
fn exec_smoke_rejects_unknown_flags() {
    // A typo like `--gird` must not silently time the single-cell
    // variant as if no flag had been passed.
    let out = repro(&["exec-smoke", "--gird"]);
    assert_usage_error(&out, "--gird", "exec-smoke --gird");
    let out = repro(&["exec-smoke", "extra"]);
    assert_usage_error(&out, "extra", "exec-smoke extra");
}

#[test]
fn mem_smoke_rejects_unknown_flags() {
    // Same contract as exec-smoke: a typo must not silently time the
    // single-cell variant.
    let out = repro(&["mem-smoke", "--gird"]);
    assert_usage_error(&out, "--gird", "mem-smoke --gird");
    let out = repro(&["mem-smoke", "extra"]);
    assert_usage_error(&out, "extra", "mem-smoke extra");
}

#[test]
fn sweep_smoke_rejects_unknown_flags_and_bare_cells() {
    // Same contract as the other smokes: a typo must not silently run
    // the default cell count, and a bare `--cells` must not either.
    let out = repro(&["sweep-smoke", "--cels", "32"]);
    assert_usage_error(&out, "--cels", "sweep-smoke --cels");
    let out = repro(&["sweep-smoke", "--cells"]);
    assert_usage_error(&out, "--cells requires a value", "sweep-smoke --cells");
    let out = repro(&["sweep-smoke", "--cells", "0"]);
    assert_usage_error(&out, "positive integer", "sweep-smoke --cells 0");
}

#[test]
fn fault_sweep_rejects_garbage_seed_and_unknown_flags() {
    let out = repro(&["fault-sweep", "--seed", "x"]);
    assert_usage_error(&out, "--seed takes an integer", "fault-sweep --seed x");
    let out = repro(&["fault-sweep", "--smoek"]);
    assert_usage_error(&out, "--smoek", "fault-sweep --smoek");
}

#[test]
fn bench_workers_requires_a_value() {
    // A bare trailing `--workers` used to fall back to the default pool
    // size; it must be a usage error instead.
    let out = repro(&["bench", "--workers"]);
    assert_usage_error(&out, "--workers requires a value", "bench --workers");
}

#[test]
fn bench_workers_rejects_non_positive_and_garbage_values() {
    for bad in ["0", "-3", "four"] {
        let out = repro(&["bench", "--workers", bad]);
        assert_usage_error(&out, "positive integer", &format!("bench --workers {bad}"));
    }
}

#[test]
fn bench_rejects_unknown_flags() {
    let out = repro(&["bench", "--jsno"]);
    assert_usage_error(&out, "--jsno", "bench --jsno");
}

#[test]
fn scheme_filters_reject_unknown_and_bare_names() {
    // A misspelt or unknown scheme name must exit 2 listing the valid
    // schemes — never panic, and never silently run the unfiltered (or
    // an empty) grid.
    for cmd in ["conformance", "bench", "exec-smoke"] {
        let out = repro(&[cmd, "--scheme", "pipe-1f2b"]);
        assert_usage_error(
            &out,
            "unknown scheme `pipe-1f2b`",
            &format!("{cmd} --scheme pipe-1f2b"),
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("baseline-dp|baseline-pp|harmony-dp|harmony-pp|pipe-1f1b"),
            "{cmd}: diagnostic must list the valid schemes, got: {stderr}"
        );
        let out = repro(&[cmd, "--scheme"]);
        assert_usage_error(
            &out,
            "--scheme requires a scheme name",
            &format!("bare {cmd} --scheme"),
        );
    }
}

#[test]
fn conformance_keeps_positional_seed_and_rejects_garbage() {
    // `conformance 7 --scheme ...` still accepts the positional seed;
    // a non-integer seed stays a usage error.
    let out = repro(&["conformance", "x7"]);
    assert_usage_error(
        &out,
        "conformance seed must be an integer",
        "conformance x7",
    );
    let out = repro(&["conformance", "7", "--schem", "pipe-1f1b"]);
    assert_usage_error(&out, "--schem", "conformance --schem typo");
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_2() {
    let out = repro(&["frobnicate"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr.contains("frobnicate") && stderr.contains("usage:"));
}
