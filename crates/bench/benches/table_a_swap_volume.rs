//! Table A bench: the §3 analytical comparison with simulator cross-check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::simulate::{self, SchemeKind};
use harmony_bench::{figures, workloads};

fn bench(c: &mut Criterion) {
    let (rendered, rows) = figures::table_a();
    eprintln!("{rendered}");
    // Shape assertion: measured within ±35% of the closed form everywhere.
    for r in &rows {
        let ratio = r.measured / r.analytic.max(1e-9);
        assert!(
            (0.65..=1.35).contains(&ratio),
            "{:?} m={} n={}: ratio {ratio:.2}",
            r.scheme,
            r.m,
            r.n
        );
    }

    let model = workloads::uniform_model(6, 4096);
    let topo = workloads::tight_topo(4);
    let w = workloads::tight_workload(4);
    let mut group = c.benchmark_group("table_a_swap_volume");
    group.sample_size(10);
    for scheme in [
        SchemeKind::BaselineDp,
        SchemeKind::HarmonyDp,
        SchemeKind::HarmonyPp,
    ] {
        group.bench_with_input(
            BenchmarkId::new("sim", scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    simulate::run(scheme, &model, &topo, &w)
                        .expect("run")
                        .0
                        .global_swap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
