//! Fig 2(c) bench: baseline-PP per-stage memory demand and swap skew.

use criterion::{criterion_group, criterion_main, Criterion};
use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};
use harmony_bench::{figures, workloads};

fn bench(c: &mut Criterion) {
    let (rendered, points) = figures::fig2c();
    eprintln!("{rendered}");
    // Shape assertion: head stage demand strictly exceeds tail stage.
    assert!(points.first().expect("4 stages").demand > points.last().expect("4 stages").demand);

    let model = workloads::fig2_model();
    let w = workloads::fig2_workload();
    let topo = presets::commodity_4x1080ti();
    let mut group = c.benchmark_group("fig2c_pp_imbalance");
    group.sample_size(10);
    group.bench_function("baseline_pp_4gpu", |b| {
        b.iter(|| {
            simulate::run(SchemeKind::BaselinePp, &model, &topo, &w)
                .expect("run")
                .0
                .swap_imbalance()
                .unwrap_or(f64::INFINITY)
        })
    });
    group.bench_function("harmony_pp_4gpu", |b| {
        b.iter(|| {
            simulate::run(SchemeKind::HarmonyPp, &model, &topo, &w)
                .expect("run")
                .0
                .swap_imbalance()
                .unwrap_or(f64::INFINITY)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
