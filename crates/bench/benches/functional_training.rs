//! Functional-mode bench: real-float Harmony training steps under memory
//! pressure vs the sequential reference — quantifies the CPU-side cost of
//! decomposed, swapped execution relative to plain execution.

use criterion::{criterion_group, criterion_main, Criterion};
use harmony::prelude::*;

fn bench(c: &mut Criterion) {
    let model = mlp(&[40, 64, 40]);
    let opt = Optimizer::adam(0.01);
    let mut rng = SplitMix64::new(5);
    let x = Tensor::randn([8, 40], 1.0, &mut rng);
    let targets: Vec<usize> = (0..8).map(|i| i % 4).collect();

    let mut group = c.benchmark_group("functional_training");
    group.bench_function("harmony_step_pressured", |b| {
        let mut session = FunctionalSession::new(
            model.clone(),
            SessionConfig {
                device_capacities: vec![48 * 1024],
                microbatches: 2,
                optimizer: opt,
                seed: 1,
            },
        )
        .expect("session");
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            session.train_step(&x, &targets).expect("step").loss
        })
    });
    group.bench_function("harmony_step_unpressured", |b| {
        let mut session = FunctionalSession::new(
            model.clone(),
            SessionConfig {
                device_capacities: vec![64 * 1024 * 1024],
                microbatches: 2,
                optimizer: opt,
                seed: 1,
            },
        )
        .expect("session");
        b.iter(|| session.train_step(&x, &targets).expect("step").loss)
    });
    group.bench_function("sequential_reference_step", |b| {
        let mut params = model.init_params(1);
        let mut state = model.init_opt_state(&params, &opt);
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            model
                .train_step_accum(&mut params, &opt, &mut state, &x, &targets, 2, step)
                .expect("step")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
