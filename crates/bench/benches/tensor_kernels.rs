//! Substrate microbench: the tensor kernels behind the functional mode.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use harmony::prelude::*;
use harmony_tensor::nn::{Linear, MultiHeadAttention};
use harmony_tensor::ops;

fn bench(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let a = Tensor::randn([128, 128], 1.0, &mut rng);
    let b128 = Tensor::randn([128, 128], 1.0, &mut rng);

    let mut group = c.benchmark_group("tensor_kernels");
    group.throughput(Throughput::Elements(2 * 128 * 128 * 128));
    group.bench_function("matmul_128", |b| {
        b.iter(|| ops::matmul(&a, &b128).expect("matmul"))
    });
    group.bench_function("matmul_at_b_128", |b| {
        b.iter(|| ops::matmul_at_b(&a, &b128).expect("matmul"))
    });
    group.finish();

    let mut group = c.benchmark_group("layer_kernels");
    let linear = Linear::new(256, 256, true);
    let lp = linear.init_params(&mut rng);
    let lx = Tensor::randn([32, 256], 1.0, &mut rng);
    group.bench_function("linear_fwd_32x256", |b| {
        b.iter(|| linear.forward(&lp, &lx).expect("fwd"))
    });
    let (_, stash) = linear.forward(&lp, &lx).expect("fwd");
    let dy = Tensor::randn([32, 256], 1.0, &mut rng);
    group.bench_function("linear_bwd_32x256", |b| {
        b.iter(|| linear.backward(&lp, &stash, &dy).expect("bwd"))
    });

    let attn = MultiHeadAttention::new(64, 4, true).expect("attn");
    let ap = attn.init_params(&mut rng);
    let ax = Tensor::randn([4, 32, 64], 1.0, &mut rng);
    group.bench_function("attention_fwd_4x32x64", |b| {
        b.iter(|| attn.forward(&ap, &ax).expect("fwd"))
    });
    let (_, astash) = attn.forward(&ap, &ax).expect("fwd");
    let ady = Tensor::randn([4, 32, 64], 1.0, &mut rng);
    group.bench_function("attention_bwd_4x32x64", |b| {
        b.iter(|| attn.backward(&ap, &astash, &ady).expect("bwd"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
