//! Fig 1 bench: model-zoo table generation and large-model spec builds.

use criterion::{criterion_group, criterion_main, Criterion};
use harmony::prelude::*;
use harmony_bench::figures;

fn bench(c: &mut Criterion) {
    eprintln!("{}", figures::fig1());
    let mut group = c.benchmark_group("fig1_model_zoo");
    group.bench_function("zoo_table", |b| b.iter(figures::fig1));
    group.bench_function("bert_xxl_spec_build", |b| {
        b.iter(|| TransformerConfig::bert_xxl().build().total_params())
    });
    group.bench_function("gpt_10b_spec_build", |b| {
        b.iter(|| {
            TransformerConfig::gpt_10b()
                .build()
                .training_footprint_bytes(5, 2)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
