//! Fig 4 bench: planning + simulating the toy grouped pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::simulate::{self, SchemeKind};
use harmony_bench::{figures, workloads};

fn bench(c: &mut Criterion) {
    eprintln!("{}", figures::fig4());
    let model = workloads::fig4_model();
    let topo = workloads::fig4_topo();
    let w = workloads::fig4_workload();
    let mut group = c.benchmark_group("fig4_schedule");
    for scheme in [SchemeKind::HarmonyPp, SchemeKind::BaselinePp] {
        group.bench_with_input(
            BenchmarkId::new("toy_pipeline", scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    simulate::run(scheme, &model, &topo, &w)
                        .expect("run")
                        .0
                        .sim_secs
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
