//! §4 tango bench: group-size and pack-size sweeps for Harmony-PP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};
use harmony_bench::{figures, workloads};

fn bench(c: &mut Criterion) {
    let (rendered, group_points, pack_points) = figures::tango();
    eprintln!("{rendered}");
    // Shape assertions: swap volume decreases monotonically with group
    // size (grouping trades pipeline overlap for fewer weight swaps), and
    // oversized packs are infeasible.
    for w in group_points.windows(2) {
        assert!(w[1].swap <= w[0].swap, "swap must fall as groups grow");
    }
    assert!(
        pack_points.iter().any(|p| !p.feasible),
        "cliff edge expected"
    );
    assert!(pack_points.iter().any(|p| p.feasible));

    let model = workloads::analytical_model();
    let topo = presets::commodity_4x1080ti();
    let base = workloads::fig2_workload();
    let mut group = c.benchmark_group("tango_pack_sweep");
    group.sample_size(10);
    for g in [1usize, 8] {
        let w = WorkloadConfig {
            group_size: Some(g),
            ..base
        };
        group.bench_with_input(BenchmarkId::new("group_size", g), &w, |b, w| {
            b.iter(|| {
                simulate::run(SchemeKind::HarmonyPp, &model, &topo, w)
                    .expect("run")
                    .0
                    .throughput()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
