//! Fig 2(a) bench: baseline-DP on 1–4 GPUs with per-GPU virtualization.
//!
//! Prints the figure's two series (global throughput, global swap-out
//! volume) once, then times the N = 4 simulation with criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};
use harmony_bench::{figures, workloads};

fn bench(c: &mut Criterion) {
    let (rendered, points) = figures::fig2a();
    eprintln!("{rendered}");
    assert_eq!(points.len(), 4);

    let model = workloads::fig2_model();
    let w = workloads::fig2_workload();
    let mut group = c.benchmark_group("fig2a_dp_swap");
    group.sample_size(10);
    for n in [1usize, 4] {
        let topo = presets::commodity_n_1080ti(n).expect("preset");
        group.bench_with_input(BenchmarkId::new("baseline_dp", n), &n, |b, _| {
            b.iter(|| {
                simulate::run(SchemeKind::BaselineDp, &model, &topo, &w)
                    .expect("run")
                    .0
                    .global_swap_out()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
