//! The Fig 5(a) swap model as structured data.
//!
//! For each training phase, the tensors that must be swapped **in** before
//! it can run and the tensors it leaves behind to be swapped **out** (or
//! kept). The `repro fig5a` harness prints this table verbatim; the task
//! graph builder's footprints are asserted against it in tests.

/// Training phase of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Forward pass.
    Forward,
    /// Backward pass.
    Backward,
    /// Weight update.
    Update,
}

/// Abstract tensor role names used by Fig 5(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorRole {
    /// Input activation `X`.
    InputX,
    /// Weights `W`.
    WeightW,
    /// Output activation `Y`.
    OutputY,
    /// Stashed input `X` (kept for backward).
    StashedX,
    /// Output gradient `dY`.
    OutputGradDy,
    /// Weight gradient `dW`.
    WeightGradDw,
    /// Input gradient `dX`.
    InputGradDx,
    /// Accumulated weight gradient `dW` (after this microbatch).
    AccumulatedDw,
    /// Optimizer state `K`.
    OptStateK,
    /// Updated weights `W'`.
    UpdatedW,
    /// Updated optimizer state `K'`.
    UpdatedK,
    /// Reset (zeroed) gradient buffer `dW'`.
    ResetDw,
}

impl TensorRole {
    /// The symbol used in the paper's figure.
    pub fn symbol(&self) -> &'static str {
        match self {
            TensorRole::InputX => "X",
            TensorRole::WeightW => "W",
            TensorRole::OutputY => "Y",
            TensorRole::StashedX => "Stashed X",
            TensorRole::OutputGradDy => "dY",
            TensorRole::WeightGradDw => "dW",
            TensorRole::InputGradDx => "dX",
            TensorRole::AccumulatedDw => "Accumulated dW",
            TensorRole::OptStateK => "K",
            TensorRole::UpdatedW => "W'",
            TensorRole::UpdatedK => "K'",
            TensorRole::ResetDw => "Reset dW'",
        }
    }
}

/// Returns `(swap_in, swap_out)` role sets for a phase — Fig 5(a) verbatim.
pub fn phase_swap_sets(phase: Phase) -> (&'static [TensorRole], &'static [TensorRole]) {
    match phase {
        Phase::Forward => (
            &[TensorRole::InputX, TensorRole::WeightW],
            &[
                TensorRole::OutputY,
                TensorRole::StashedX,
                TensorRole::WeightW,
            ],
        ),
        Phase::Backward => (
            &[
                TensorRole::OutputGradDy,
                TensorRole::WeightGradDw,
                TensorRole::StashedX,
                TensorRole::WeightW,
            ],
            &[
                TensorRole::InputGradDx,
                TensorRole::AccumulatedDw,
                TensorRole::WeightW,
            ],
        ),
        Phase::Update => (
            &[
                TensorRole::WeightGradDw,
                TensorRole::WeightW,
                TensorRole::OptStateK,
            ],
            &[
                TensorRole::ResetDw,
                TensorRole::UpdatedW,
                TensorRole::UpdatedK,
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_sets_match_fig5a() {
        let (swap_in, swap_out) = phase_swap_sets(Phase::Forward);
        assert_eq!(swap_in, &[TensorRole::InputX, TensorRole::WeightW]);
        assert!(swap_out.contains(&TensorRole::StashedX));
        assert!(swap_out.contains(&TensorRole::OutputY));
    }

    #[test]
    fn weights_appear_in_every_phase() {
        // The source of "repeated swaps" (§2 inefficiency 1): W is in the
        // swap-in or swap-out set of all three phases.
        for phase in [Phase::Forward, Phase::Backward, Phase::Update] {
            let (swap_in, swap_out) = phase_swap_sets(phase);
            let has_w = swap_in.contains(&TensorRole::WeightW)
                || swap_out.contains(&TensorRole::WeightW)
                || swap_out.contains(&TensorRole::UpdatedW);
            assert!(has_w, "{phase:?}");
        }
    }

    #[test]
    fn update_consumes_gradient_and_state() {
        let (swap_in, swap_out) = phase_swap_sets(Phase::Update);
        assert!(swap_in.contains(&TensorRole::WeightGradDw));
        assert!(swap_in.contains(&TensorRole::OptStateK));
        assert!(swap_out.contains(&TensorRole::ResetDw));
        assert!(swap_out.contains(&TensorRole::UpdatedK));
    }

    #[test]
    fn symbols_are_paper_notation() {
        assert_eq!(TensorRole::WeightW.symbol(), "W");
        assert_eq!(TensorRole::AccumulatedDw.symbol(), "Accumulated dW");
        assert_eq!(TensorRole::UpdatedK.symbol(), "K'");
    }
}
