//! Task-graph construction: decompose one training iteration into
//! fine-grained tasks with explicit dependencies and tensor footprints.

use std::collections::HashMap;
use std::ops::Range;

use harmony_models::ModelSpec;

use crate::tensors::TensorRef;

/// Task identifier (index into [`TaskGraph::tasks`]).
pub type TaskId = usize;

/// The kind of a schedulable task. `pack` indexes a contiguous group of
/// layers (a pack of size 1 is a single layer — the paper's default
/// granularity in Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Forward pass of a pack over one microbatch.
    Forward {
        /// Pack index.
        pack: usize,
        /// Microbatch index.
        ubatch: usize,
    },
    /// Loss computation seeding the backward pass for a microbatch.
    Loss {
        /// Microbatch index.
        ubatch: usize,
    },
    /// Backward pass of a pack over one microbatch.
    Backward {
        /// Pack index.
        pack: usize,
        /// Microbatch index.
        ubatch: usize,
    },
    /// Weight update of a pack (runs once per iteration, after its
    /// gradients are fully accumulated).
    Update {
        /// Pack index.
        pack: usize,
    },
}

/// One fine-grained task.
#[derive(Debug, Clone)]
pub struct Task {
    /// Stable id.
    pub id: TaskId,
    /// Kind (phase + pack + microbatch).
    pub kind: TaskKind,
    /// Tasks that must complete before this one may run.
    pub deps: Vec<TaskId>,
    /// Tensors that must be device-resident before running (swap-in set).
    pub reads: Vec<TensorRef>,
    /// Tensors produced/updated (live after the task; swap-out candidates).
    pub writes: Vec<TensorRef>,
    /// Tensors dead after this task (freed without writeback).
    pub frees: Vec<TensorRef>,
    /// Compute cost in FLOPs.
    pub flops: u64,
}

impl Task {
    /// All tensors the task touches (reads ∪ writes, deduplicated).
    pub fn touched(&self) -> Vec<TensorRef> {
        let mut v = self.reads.clone();
        for w in &self.writes {
            if !v.contains(w) {
                v.push(*w);
            }
        }
        v
    }
}

/// Task-graph construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfig {
    /// Number of microbatches `m` per iteration (per replica).
    pub microbatches: usize,
    /// Samples per microbatch.
    pub ubatch_size: u64,
    /// Layers per pack (1 = layer granularity).
    pub pack_size: usize,
    /// Backward FLOPs as a multiple of forward (paper §4: 2–3×).
    pub bwd_flops_mult: f64,
    /// Update FLOPs per parameter (≈4 for Adam).
    pub update_flops_per_param: f64,
    /// Optimizer state tensors per parameter tensor (2 for Adam).
    pub opt_slots: u64,
    /// Recompute instead of stash (gradient checkpointing at pack
    /// granularity, Chen et al. '16 — cited by the paper's §4): forward
    /// keeps only each pack's *boundary* input activation alive; backward
    /// re-runs the pack's forward before differentiating. Trades
    /// `(1 + bwd_flops_mult)`× backward compute for eliminating the
    /// per-layer stash footprint and its swap traffic.
    pub recompute: bool,
    /// 1F1B weight stashing (PipeDream): each microbatch's forward stashes
    /// the weight version it used ([`TensorRef::WeightStash`]); its
    /// backward differentiates against that stashed copy instead of the
    /// live weights and releases it. The stashed copy's lifetime spans
    /// exactly the microbatch's in-flight forward→backward window.
    pub weight_stash: bool,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            microbatches: 1,
            ubatch_size: 1,
            pack_size: 1,
            bwd_flops_mult: 2.0,
            update_flops_per_param: 4.0,
            opt_slots: 2,
            recompute: false,
            weight_stash: false,
        }
    }
}

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Model has no layers or config has zero microbatches/pack size.
    Empty(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Empty(m) => write!(f, "cannot build task graph: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The decomposed task graph of one training iteration.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    packs: Vec<Range<usize>>,
    config: GraphConfig,
    by_kind: HashMap<TaskKind, TaskId>,
}

impl TaskGraph {
    /// Decomposes `model` under `config`. Layers are grouped into
    /// `⌈R / pack_size⌉` contiguous packs.
    ///
    /// ```
    /// use harmony_models::TransformerConfig;
    /// use harmony_taskgraph::{GraphConfig, TaskGraph};
    /// let model = TransformerConfig::tiny().build();
    /// let g = TaskGraph::build(&model, GraphConfig {
    ///     microbatches: 2,
    ///     ..GraphConfig::default()
    /// }).unwrap();
    /// let r = model.layers.len();
    /// // m·R forwards + m losses + m·R backwards + R updates.
    /// assert_eq!(g.tasks().len(), 2 * 2 * r + 2 + r);
    /// ```
    pub fn build(model: &ModelSpec, config: GraphConfig) -> Result<Self, GraphError> {
        if model.layers.is_empty() {
            return Err(GraphError::Empty("model has no layers".to_string()));
        }
        if config.microbatches == 0 || config.pack_size == 0 || config.ubatch_size == 0 {
            return Err(GraphError::Empty(format!(
                "microbatches={}, pack_size={}, ubatch_size={} must all be positive",
                config.microbatches, config.pack_size, config.ubatch_size
            )));
        }
        let r = model.layers.len();
        let packs: Vec<Range<usize>> = (0..r)
            .step_by(config.pack_size)
            .map(|s| s..(s + config.pack_size).min(r))
            .collect();
        let np = packs.len();
        let m = config.microbatches;
        let last_layer = r - 1;

        let mut tasks: Vec<Task> = Vec::with_capacity(np * m * 2 + m + np);
        let mut by_kind = HashMap::new();
        let add = |tasks: &mut Vec<Task>, by_kind: &mut HashMap<TaskKind, TaskId>, t: Task| {
            by_kind.insert(t.kind, t.id);
            tasks.push(t);
        };

        // Forward tasks.
        for u in 0..m {
            for (p, range) in packs.iter().enumerate() {
                let id = tasks.len();
                let input = if p == 0 {
                    TensorRef::Input { ubatch: u }
                } else {
                    TensorRef::Activation {
                        layer: packs[p - 1].end - 1,
                        ubatch: u,
                    }
                };
                let mut reads = vec![input];
                let mut writes = Vec::new();
                let mut flops = 0f64;
                for l in range.clone() {
                    reads.push(TensorRef::Weight { layer: l });
                    if config.weight_stash {
                        // 1F1B: stash the weight version this microbatch's
                        // forward saw; its backward reads the copy.
                        writes.push(TensorRef::WeightStash {
                            layer: l,
                            ubatch: u,
                        });
                    }
                    if !config.recompute {
                        writes.push(TensorRef::Stash {
                            layer: l,
                            ubatch: u,
                        });
                    }
                    flops += model.layers[l].fwd_flops(config.ubatch_size) as f64;
                }
                writes.push(TensorRef::Activation {
                    layer: range.end - 1,
                    ubatch: u,
                });
                let deps = if p == 0 {
                    Vec::new()
                } else {
                    vec![
                        by_kind[&TaskKind::Forward {
                            pack: p - 1,
                            ubatch: u,
                        }],
                    ]
                };
                // Without recompute the raw input is retained inside the
                // pack's stash and the standalone activation dies here;
                // with recompute it must survive until the backward pass
                // re-runs the pack's forward from it.
                let frees = if config.recompute {
                    Vec::new()
                } else {
                    vec![input]
                };
                add(
                    &mut tasks,
                    &mut by_kind,
                    Task {
                        id,
                        kind: TaskKind::Forward { pack: p, ubatch: u },
                        deps,
                        reads,
                        writes,
                        frees,
                        flops: flops as u64,
                    },
                );
            }
        }

        // Loss tasks (seed the backward pass).
        for u in 0..m {
            let id = tasks.len();
            let logits = TensorRef::Activation {
                layer: last_layer,
                ubatch: u,
            };
            let deps = vec![
                by_kind[&TaskKind::Forward {
                    pack: np - 1,
                    ubatch: u,
                }],
            ];
            add(
                &mut tasks,
                &mut by_kind,
                Task {
                    id,
                    kind: TaskKind::Loss { ubatch: u },
                    deps,
                    reads: vec![logits],
                    writes: vec![TensorRef::ActGrad {
                        layer: last_layer,
                        ubatch: u,
                    }],
                    frees: vec![logits],
                    flops: model.layers[last_layer].out_elems_per_sample * config.ubatch_size * 4,
                },
            );
        }

        // Backward tasks (reverse pack order per microbatch).
        for u in 0..m {
            for p in (0..np).rev() {
                let range = packs[p].clone();
                let id = tasks.len();
                let dy = TensorRef::ActGrad {
                    layer: range.end - 1,
                    ubatch: u,
                };
                let mut reads = vec![dy];
                let mut writes = Vec::new();
                let mut frees = vec![dy];
                let mut flops = 0f64;
                if config.recompute {
                    // Re-run the pack's forward from the retained boundary
                    // input, then differentiate; the input dies here.
                    let input = if p == 0 {
                        TensorRef::Input { ubatch: u }
                    } else {
                        TensorRef::Activation {
                            layer: packs[p - 1].end - 1,
                            ubatch: u,
                        }
                    };
                    // Model inputs are persistent (the data loader owns
                    // them); recomputed boundary activations are not.
                    if p > 0 {
                        frees.push(input);
                    }
                    reads.push(input);
                }
                for l in range.clone() {
                    if config.weight_stash {
                        // Differentiate against the stashed version, not
                        // the live weights; the copy dies here (its
                        // microbatch window closes with this backward).
                        reads.push(TensorRef::WeightStash {
                            layer: l,
                            ubatch: u,
                        });
                        frees.push(TensorRef::WeightStash {
                            layer: l,
                            ubatch: u,
                        });
                    } else {
                        reads.push(TensorRef::Weight { layer: l });
                    }
                    if config.recompute {
                        flops += model.layers[l].fwd_flops(config.ubatch_size) as f64
                            * (1.0 + config.bwd_flops_mult);
                    } else {
                        reads.push(TensorRef::Stash {
                            layer: l,
                            ubatch: u,
                        });
                        flops += model.layers[l].fwd_flops(config.ubatch_size) as f64
                            * config.bwd_flops_mult;
                    }
                    reads.push(TensorRef::Grad { layer: l });
                    writes.push(TensorRef::Grad { layer: l });
                    if !config.recompute {
                        frees.push(TensorRef::Stash {
                            layer: l,
                            ubatch: u,
                        });
                    }
                }
                if p > 0 {
                    writes.push(TensorRef::ActGrad {
                        layer: packs[p - 1].end - 1,
                        ubatch: u,
                    });
                }
                let mut deps = vec![by_kind[&TaskKind::Forward { pack: p, ubatch: u }]];
                if p == np - 1 {
                    deps.push(by_kind[&TaskKind::Loss { ubatch: u }]);
                } else {
                    deps.push(
                        by_kind[&TaskKind::Backward {
                            pack: p + 1,
                            ubatch: u,
                        }],
                    );
                }
                add(
                    &mut tasks,
                    &mut by_kind,
                    Task {
                        id,
                        kind: TaskKind::Backward { pack: p, ubatch: u },
                        deps,
                        reads,
                        writes,
                        frees,
                        flops: flops as u64,
                    },
                );
            }
        }

        // Update tasks (one per pack, after all its microbatch backwards).
        for (p, range) in packs.iter().enumerate() {
            let id = tasks.len();
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            let mut params = 0u64;
            for l in range.clone() {
                reads.push(TensorRef::Grad { layer: l });
                reads.push(TensorRef::Weight { layer: l });
                reads.push(TensorRef::OptState { layer: l });
                writes.push(TensorRef::Weight { layer: l });
                writes.push(TensorRef::Grad { layer: l }); // reset dW'
                writes.push(TensorRef::OptState { layer: l });
                params += model.layers[l].params;
            }
            let deps = (0..m)
                .map(|u| by_kind[&TaskKind::Backward { pack: p, ubatch: u }])
                .collect();
            add(
                &mut tasks,
                &mut by_kind,
                Task {
                    id,
                    kind: TaskKind::Update { pack: p },
                    deps,
                    reads,
                    writes,
                    frees: Vec::new(),
                    flops: (params as f64 * config.update_flops_per_param) as u64,
                },
            );
        }

        Ok(TaskGraph {
            tasks,
            packs,
            config,
            by_kind,
        })
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// A task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    /// The layer ranges of each pack.
    pub fn packs(&self) -> &[Range<usize>] {
        &self.packs
    }

    /// Construction config.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Task id by kind (all kinds produced by `build` exist).
    pub fn id_of(&self, kind: TaskKind) -> Option<TaskId> {
        self.by_kind.get(&kind).copied()
    }

    /// A topological order (deps before dependents); also validates
    /// acyclicity by construction.
    pub fn topo_order(&self) -> Vec<TaskId> {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for t in &self.tasks {
            for &d in &t.deps {
                succs[d].push(t.id);
                indeg[t.id] += 1;
            }
        }
        let mut ready: Vec<TaskId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::BinaryHeap::new();
        for r in ready {
            queue.push(std::cmp::Reverse(r));
        }
        while let Some(std::cmp::Reverse(t)) = queue.pop() {
            order.push(t);
            for &s in &succs[t] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(std::cmp::Reverse(s));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "task graph must be acyclic");
        order
    }

    /// Successor lists (inverse of deps).
    pub fn successors(&self) -> Vec<Vec<TaskId>> {
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); self.tasks.len()];
        for t in &self.tasks {
            for &d in &t.deps {
                succs[d].push(t.id);
            }
        }
        succs
    }

    /// Resident bytes a task needs at once (reads ∪ writes, deduplicated).
    pub fn task_footprint_bytes(&self, id: TaskId, model: &ModelSpec) -> u64 {
        self.tasks[id]
            .touched()
            .iter()
            .map(|r| r.bytes(model, self.config.ubatch_size, self.config.opt_slots))
            .sum()
    }

    /// Total FLOPs across all tasks (one iteration).
    pub fn total_flops(&self) -> u64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// The graph's logical work content, pack-structure-agnostic: how many
    /// times each *layer* is traversed forward/backward/updated and the
    /// FLOPs behind those traversals. Two graphs that decompose the same
    /// training iteration (e.g. with different pack sizes, or replicated
    /// vs pipelined) must agree on this signature once scaled by their
    /// replica counts — the conformance harness's differential check.
    pub fn work_signature(&self) -> WorkSignature {
        let layers = self.packs.last().map_or(0, |p| p.end);
        let mut sig = WorkSignature {
            fwd_per_layer: vec![0; layers],
            bwd_per_layer: vec![0; layers],
            upd_per_layer: vec![0; layers],
            losses: 0,
            fwd_bwd_flops: 0,
            update_flops: 0,
        };
        for t in &self.tasks {
            match t.kind {
                TaskKind::Forward { pack, .. } => {
                    for l in self.packs[pack].clone() {
                        sig.fwd_per_layer[l] += 1;
                    }
                    sig.fwd_bwd_flops += t.flops;
                }
                TaskKind::Backward { pack, .. } => {
                    for l in self.packs[pack].clone() {
                        sig.bwd_per_layer[l] += 1;
                    }
                    sig.fwd_bwd_flops += t.flops;
                }
                TaskKind::Loss { .. } => {
                    sig.losses += 1;
                    sig.fwd_bwd_flops += t.flops;
                }
                TaskKind::Update { pack } => {
                    for l in self.packs[pack].clone() {
                        sig.upd_per_layer[l] += 1;
                    }
                    sig.update_flops += t.flops;
                }
            }
        }
        sig
    }
}

/// Per-layer traversal counts and FLOPs of one graph (see
/// [`TaskGraph::work_signature`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkSignature {
    /// Forward traversals per layer.
    pub fwd_per_layer: Vec<u64>,
    /// Backward traversals per layer.
    pub bwd_per_layer: Vec<u64>,
    /// Weight updates per layer.
    pub upd_per_layer: Vec<u64>,
    /// Loss computations.
    pub losses: u64,
    /// FLOPs of all forward + backward + loss tasks.
    pub fwd_bwd_flops: u64,
    /// FLOPs of all update tasks.
    pub update_flops: u64,
}

impl WorkSignature {
    /// The signature of `replicas` copies of this graph running together
    /// (data parallelism executes the whole graph once per replica).
    pub fn scaled(&self, replicas: u64) -> WorkSignature {
        WorkSignature {
            fwd_per_layer: self.fwd_per_layer.iter().map(|c| c * replicas).collect(),
            bwd_per_layer: self.bwd_per_layer.iter().map(|c| c * replicas).collect(),
            upd_per_layer: self.upd_per_layer.iter().map(|c| c * replicas).collect(),
            losses: self.losses * replicas,
            fwd_bwd_flops: self.fwd_bwd_flops * replicas,
            update_flops: self.update_flops * replicas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_models::TransformerConfig;

    fn graph(m: usize, pack: usize) -> (ModelSpec, TaskGraph) {
        let model = TransformerConfig::tiny().build();
        let g = TaskGraph::build(
            &model,
            GraphConfig {
                microbatches: m,
                ubatch_size: 2,
                pack_size: pack,
                ..GraphConfig::default()
            },
        )
        .unwrap();
        (model, g)
    }

    #[test]
    fn task_count_matches_decomposition() {
        let (model, g) = graph(3, 1);
        let r = model.layers.len();
        // m·R forward + m loss + m·R backward + R update.
        assert_eq!(g.tasks().len(), 3 * r + 3 + 3 * r + r);
    }

    #[test]
    fn packing_reduces_task_count() {
        let (model, g) = graph(2, 2);
        let r = model.layers.len();
        let np = r.div_ceil(2);
        assert_eq!(g.packs().len(), np);
        assert_eq!(g.tasks().len(), 2 * np + 2 + 2 * np + np);
        // Uneven division: last pack may be smaller but covers all layers.
        let covered: usize = g.packs().iter().map(|r| r.len()).sum();
        assert_eq!(covered, r);
    }

    #[test]
    fn forward_footprint_matches_fig5a() {
        let (_, g) = graph(2, 1);
        let id = g.id_of(TaskKind::Forward { pack: 1, ubatch: 0 }).unwrap();
        let t = g.task(id);
        // Swap-in: X (previous activation) + W.
        assert!(t.reads.contains(&TensorRef::Activation {
            layer: 0,
            ubatch: 0
        }));
        assert!(t.reads.contains(&TensorRef::Weight { layer: 1 }));
        // Swap-out: Y + stashed X (W stays resident, not re-written).
        assert!(t.writes.contains(&TensorRef::Activation {
            layer: 1,
            ubatch: 0
        }));
        assert!(t.writes.contains(&TensorRef::Stash {
            layer: 1,
            ubatch: 0
        }));
    }

    #[test]
    fn backward_footprint_matches_fig5a() {
        let (_, g) = graph(2, 1);
        let id = g.id_of(TaskKind::Backward { pack: 2, ubatch: 1 }).unwrap();
        let t = g.task(id);
        // Swap-in: dY, dW, stashed X, W.
        assert!(t.reads.contains(&TensorRef::ActGrad {
            layer: 2,
            ubatch: 1
        }));
        assert!(t.reads.contains(&TensorRef::Grad { layer: 2 }));
        assert!(t.reads.contains(&TensorRef::Stash {
            layer: 2,
            ubatch: 1
        }));
        assert!(t.reads.contains(&TensorRef::Weight { layer: 2 }));
        // Swap-out: dX, accumulated dW.
        assert!(t.writes.contains(&TensorRef::ActGrad {
            layer: 1,
            ubatch: 1
        }));
        assert!(t.writes.contains(&TensorRef::Grad { layer: 2 }));
        // Stash dies here.
        assert!(t.frees.contains(&TensorRef::Stash {
            layer: 2,
            ubatch: 1
        }));
    }

    #[test]
    fn update_footprint_matches_fig5a() {
        let (_, g) = graph(2, 1);
        let id = g.id_of(TaskKind::Update { pack: 0 }).unwrap();
        let t = g.task(id);
        assert!(t.reads.contains(&TensorRef::Grad { layer: 0 }));
        assert!(t.reads.contains(&TensorRef::Weight { layer: 0 }));
        assert!(t.reads.contains(&TensorRef::OptState { layer: 0 }));
        assert!(t.writes.contains(&TensorRef::Weight { layer: 0 }));
        assert!(t.writes.contains(&TensorRef::OptState { layer: 0 }));
        // Update waits for ALL microbatch backwards of its pack.
        assert_eq!(t.deps.len(), 2);
    }

    #[test]
    fn dependencies_are_acyclic_and_phase_ordered() {
        let (_, g) = graph(2, 1);
        let order = g.topo_order();
        assert_eq!(order.len(), g.tasks().len());
        let pos: HashMap<TaskId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for t in g.tasks() {
            for &d in &t.deps {
                assert!(pos[&d] < pos[&t.id], "dep order violated");
            }
        }
    }

    #[test]
    fn backward_depends_on_forward_and_downstream() {
        let (_, g) = graph(1, 1);
        let b1 = g.id_of(TaskKind::Backward { pack: 1, ubatch: 0 }).unwrap();
        let deps = &g.task(b1).deps;
        assert!(deps.contains(&g.id_of(TaskKind::Forward { pack: 1, ubatch: 0 }).unwrap()));
        assert!(deps.contains(&g.id_of(TaskKind::Backward { pack: 2, ubatch: 0 }).unwrap()));
    }

    #[test]
    fn footprints_scale_with_pack_size() {
        let (model, g1) = graph(1, 1);
        let (_, g2) = graph(1, 3);
        let f1 = g1.task_footprint_bytes(
            g1.id_of(TaskKind::Forward { pack: 0, ubatch: 0 }).unwrap(),
            &model,
        );
        let f2 = g2.task_footprint_bytes(
            g2.id_of(TaskKind::Forward { pack: 0, ubatch: 0 }).unwrap(),
            &model,
        );
        assert!(f2 > f1, "a 3-layer pack must need more resident bytes");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let model = TransformerConfig::tiny().build();
        for cfg in [
            GraphConfig {
                microbatches: 0,
                ..GraphConfig::default()
            },
            GraphConfig {
                pack_size: 0,
                ..GraphConfig::default()
            },
            GraphConfig {
                ubatch_size: 0,
                ..GraphConfig::default()
            },
        ] {
            assert!(TaskGraph::build(&model, cfg).is_err());
        }
        let empty = ModelSpec {
            name: "empty".to_string(),
            layers: vec![],
            seq_len: 1,
        };
        assert!(TaskGraph::build(&empty, GraphConfig::default()).is_err());
    }

    #[test]
    fn flops_account_for_backward_multiplier() {
        let (_, g) = graph(1, 1);
        let f = g.id_of(TaskKind::Forward { pack: 1, ubatch: 0 }).unwrap();
        let b = g.id_of(TaskKind::Backward { pack: 1, ubatch: 0 }).unwrap();
        assert_eq!(g.task(b).flops, 2 * g.task(f).flops);
    }

    use std::collections::HashMap;
}

#[cfg(test)]
mod recompute_tests {
    use super::*;
    use harmony_models::TransformerConfig;

    fn graphs(pack: usize) -> (ModelSpec, TaskGraph, TaskGraph) {
        let model = TransformerConfig::tiny().build();
        let base = GraphConfig {
            microbatches: 2,
            ubatch_size: 2,
            pack_size: pack,
            ..GraphConfig::default()
        };
        let stash = TaskGraph::build(&model, base).unwrap();
        let recompute = TaskGraph::build(
            &model,
            GraphConfig {
                recompute: true,
                ..base
            },
        )
        .unwrap();
        (model, stash, recompute)
    }

    #[test]
    fn recompute_graphs_have_no_stash_tensors() {
        let (_, _, g) = graphs(2);
        for t in g.tasks() {
            for rf in t.reads.iter().chain(&t.writes).chain(&t.frees) {
                assert!(
                    !matches!(rf, TensorRef::Stash { .. }),
                    "{:?} references stash {:?}",
                    t.kind,
                    rf
                );
            }
        }
    }

    #[test]
    fn recompute_backward_rereads_boundary_input_and_pays_forward_flops() {
        let (_, stash, rec) = graphs(1);
        let b = rec
            .id_of(TaskKind::Backward { pack: 2, ubatch: 0 })
            .unwrap();
        let bs = stash
            .id_of(TaskKind::Backward { pack: 2, ubatch: 0 })
            .unwrap();
        // Reads the previous pack's output activation (to re-run forward).
        assert!(rec.task(b).reads.contains(&TensorRef::Activation {
            layer: 1,
            ubatch: 0
        }));
        // Extra forward FLOPs: (1 + mult) vs mult.
        let f = rec.id_of(TaskKind::Forward { pack: 2, ubatch: 0 }).unwrap();
        assert_eq!(rec.task(b).flops, stash.task(bs).flops + rec.task(f).flops);
        // The boundary input dies with the backward, not the forward.
        assert!(rec.task(b).frees.contains(&TensorRef::Activation {
            layer: 1,
            ubatch: 0
        }));
        assert!(rec.task(f).frees.is_empty());
    }

    #[test]
    fn recompute_first_pack_keeps_model_input_alive() {
        let (_, _, rec) = graphs(1);
        let b0 = rec
            .id_of(TaskKind::Backward { pack: 0, ubatch: 1 })
            .unwrap();
        assert!(rec.task(b0).reads.contains(&TensorRef::Input { ubatch: 1 }));
        // Model inputs are owned by the data loader — never freed.
        assert!(!rec.task(b0).frees.contains(&TensorRef::Input { ubatch: 1 }));
    }

    #[test]
    fn recompute_shrinks_backward_footprint_for_stash_heavy_layers() {
        let (model, stash, rec) = graphs(1);
        // Attention layers stash heads·s² probabilities: recompute removes
        // that from the resident working set.
        let attn_pack = 1; // block0.attn in the tiny transformer
        let bs = stash
            .id_of(TaskKind::Backward {
                pack: attn_pack,
                ubatch: 0,
            })
            .unwrap();
        let br = rec
            .id_of(TaskKind::Backward {
                pack: attn_pack,
                ubatch: 0,
            })
            .unwrap();
        assert!(
            rec.task_footprint_bytes(br, &model) < stash.task_footprint_bytes(bs, &model),
            "recompute should shrink the backward working set"
        );
    }

    #[test]
    fn recompute_graph_is_still_consistent() {
        let (_, _, rec) = graphs(3);
        let order = rec.topo_order();
        assert_eq!(order.len(), rec.tasks().len());
        // Dataflow check: reads are produced (or persistent) before use.
        use std::collections::HashSet;
        let mut live: HashSet<TensorRef> = HashSet::new();
        for l in 0..6 {
            live.insert(TensorRef::Weight { layer: l });
            live.insert(TensorRef::Grad { layer: l });
            live.insert(TensorRef::OptState { layer: l });
        }
        for u in 0..2 {
            live.insert(TensorRef::Input { ubatch: u });
        }
        for &tid in &order {
            let t = rec.task(tid);
            for rf in &t.reads {
                assert!(live.contains(rf), "{:?} reads dead {:?}", t.kind, rf);
            }
            for &w in &t.writes {
                live.insert(w);
            }
            for f in &t.frees {
                live.remove(f);
            }
        }
    }
}
