//! # harmony-taskgraph
//!
//! Harmony's **Task Decomposer** (paper §3, Fig 3): splits one logical
//! training iteration — written by the user as if it ran sequentially on a
//! single unbounded device — into fine-grained tasks:
//!
//! * `Forward { layer, µbatch }`, `Backward { layer, µbatch }`,
//!   `Update { layer }`, and a `Loss { µbatch }` seed task,
//! * data dependencies between them (encoded in the task graph rather than
//!   implied by program order, which is what enables just-in-time
//!   scheduling and late binding),
//! * per-task tensor *footprints* following the swap model of Fig 5(a):
//!   which logical tensors a task must have resident (swap-in set), which
//!   it produces (swap-out set), and which die with it (free set),
//! * optional **layer packing** (§4's "memory–performance tango"): a pack
//!   of contiguous layers executes as one task, trading per-layer transfer
//!   volume against per-task memory footprint.
//!
//! The graph is parallelism-agnostic: `harmony-sched` replicates it for
//! data parallelism or partitions it for pipeline parallelism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod swap_model;
pub mod tensors;

pub use graph::{GraphConfig, GraphError, Task, TaskGraph, TaskId, TaskKind, WorkSignature};
pub use swap_model::{phase_swap_sets, Phase, TensorRole};
pub use tensors::TensorRef;
