//! Logical tensor references.
//!
//! A [`TensorRef`] names a tensor in the *logical* training state — the
//! single-virtual-device view. Schedulers map logical refs to physical
//! tensor instances (e.g. one weight replica per GPU in DP).

use harmony_memory::TensorClass;
use harmony_models::ModelSpec;

/// A logical tensor of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TensorRef {
    /// Weights `W` of a layer.
    Weight {
        /// Layer index.
        layer: usize,
    },
    /// Gradient buffer `dW` of a layer (accumulated across microbatches).
    Grad {
        /// Layer index.
        layer: usize,
    },
    /// Optimizer state `K` of a layer.
    OptState {
        /// Layer index.
        layer: usize,
    },
    /// Output activation of `layer` for microbatch `ubatch` (also the input
    /// of `layer + 1`). `layer == usize::MAX` is never used; the model
    /// input is [`TensorRef::Input`].
    Activation {
        /// Producing layer index.
        layer: usize,
        /// Microbatch index.
        ubatch: usize,
    },
    /// Gradient w.r.t. the output activation of `layer` for a microbatch.
    ActGrad {
        /// Layer whose output this gradient corresponds to.
        layer: usize,
        /// Microbatch index.
        ubatch: usize,
    },
    /// Stashed forward state of `layer` for a microbatch (input + extras).
    Stash {
        /// Layer index.
        layer: usize,
        /// Microbatch index.
        ubatch: usize,
    },
    /// The weight version of `layer` stashed by microbatch `ubatch`'s
    /// forward under 1F1B weight stashing (PipeDream): backward must
    /// differentiate against the weights its forward actually used, so
    /// each in-flight microbatch carries a stashed copy whose lifetime
    /// spans its forward→backward window.
    WeightStash {
        /// Layer index.
        layer: usize,
        /// Microbatch index.
        ubatch: usize,
    },
    /// The model input for a microbatch.
    Input {
        /// Microbatch index.
        ubatch: usize,
    },
}

impl TensorRef {
    /// The swap-model class of this tensor (Fig 5a taxonomy).
    pub fn class(&self) -> TensorClass {
        match self {
            TensorRef::Weight { .. } => TensorClass::Weight,
            TensorRef::Grad { .. } => TensorClass::Grad,
            TensorRef::OptState { .. } => TensorClass::OptState,
            TensorRef::Activation { .. } | TensorRef::ActGrad { .. } | TensorRef::Input { .. } => {
                TensorClass::Activation
            }
            TensorRef::Stash { .. } => TensorClass::Stash,
            TensorRef::WeightStash { .. } => TensorClass::WeightStash,
        }
    }

    /// Byte size of this tensor for a model, microbatch size, and optimizer
    /// state multiplicity.
    pub fn bytes(&self, model: &ModelSpec, ubatch_size: u64, opt_slots: u64) -> u64 {
        let layer = |l: usize| &model.layers[l];
        match *self {
            TensorRef::Weight { layer: l } => layer(l).weight_bytes(),
            TensorRef::Grad { layer: l } => layer(l).grad_bytes(),
            TensorRef::OptState { layer: l } => layer(l).opt_state_bytes(opt_slots),
            TensorRef::Activation { layer: l, .. } => layer(l).out_bytes(ubatch_size),
            // dY has the shape of the producing layer's output.
            TensorRef::ActGrad { layer: l, .. } => layer(l).out_bytes(ubatch_size),
            TensorRef::Stash { layer: l, .. } => layer(l).stash_bytes(ubatch_size),
            // A stashed weight version is a full copy of the layer's
            // weights; it does not scale with the microbatch size.
            TensorRef::WeightStash { layer: l, .. } => layer(l).weight_bytes(),
            TensorRef::Input { .. } => model
                .layers
                .first()
                .map(|l| l.in_bytes(ubatch_size))
                .unwrap_or(0),
        }
    }

    /// The layer index this tensor belongs to (`None` for model inputs).
    pub fn layer(&self) -> Option<usize> {
        match *self {
            TensorRef::Weight { layer }
            | TensorRef::Grad { layer }
            | TensorRef::OptState { layer }
            | TensorRef::Activation { layer, .. }
            | TensorRef::ActGrad { layer, .. }
            | TensorRef::Stash { layer, .. }
            | TensorRef::WeightStash { layer, .. } => Some(layer),
            TensorRef::Input { .. } => None,
        }
    }

    /// The microbatch this tensor belongs to (`None` for per-layer state
    /// shared across microbatches — exactly the tensors input-batch
    /// grouping saves swaps on).
    pub fn ubatch(&self) -> Option<usize> {
        match *self {
            TensorRef::Activation { ubatch, .. }
            | TensorRef::ActGrad { ubatch, .. }
            | TensorRef::Stash { ubatch, .. }
            | TensorRef::WeightStash { ubatch, .. }
            | TensorRef::Input { ubatch } => Some(ubatch),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_models::TransformerConfig;

    #[test]
    fn classes_follow_fig5a_taxonomy() {
        assert_eq!(TensorRef::Weight { layer: 0 }.class(), TensorClass::Weight);
        assert_eq!(TensorRef::Grad { layer: 0 }.class(), TensorClass::Grad);
        assert_eq!(
            TensorRef::OptState { layer: 0 }.class(),
            TensorClass::OptState
        );
        assert_eq!(
            TensorRef::Stash {
                layer: 0,
                ubatch: 0
            }
            .class(),
            TensorClass::Stash
        );
        assert_eq!(
            TensorRef::Activation {
                layer: 0,
                ubatch: 0
            }
            .class(),
            TensorClass::Activation
        );
    }

    #[test]
    fn sizes_come_from_the_model_spec() {
        let m = TransformerConfig::tiny().build();
        let w = TensorRef::Weight { layer: 1 }.bytes(&m, 4, 2);
        assert_eq!(w, m.layers[1].weight_bytes());
        let k = TensorRef::OptState { layer: 1 }.bytes(&m, 4, 2);
        assert_eq!(k, 2 * w);
        let act = TensorRef::Activation {
            layer: 1,
            ubatch: 0,
        }
        .bytes(&m, 4, 2);
        assert_eq!(act, m.layers[1].out_bytes(4));
        // Activations scale with microbatch size, weights don't.
        assert_eq!(TensorRef::Weight { layer: 1 }.bytes(&m, 8, 2), w);
        assert_eq!(
            TensorRef::Activation {
                layer: 1,
                ubatch: 0
            }
            .bytes(&m, 8, 2),
            2 * act
        );
    }

    #[test]
    fn grouping_dimension_is_encoded_in_ubatch() {
        assert_eq!(TensorRef::Weight { layer: 3 }.ubatch(), None);
        assert_eq!(
            TensorRef::Stash {
                layer: 3,
                ubatch: 2
            }
            .ubatch(),
            Some(2)
        );
        assert_eq!(TensorRef::Input { ubatch: 1 }.layer(), None);
    }
}
