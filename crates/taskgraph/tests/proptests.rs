//! Property-based tests on task-graph invariants for arbitrary models and
//! decomposition configs.

use harmony_memory::TensorClass;
use harmony_models::{LayerClass, LayerSpec, ModelSpec};
use harmony_taskgraph::{GraphConfig, TaskGraph, TaskKind, TensorRef};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn model_strategy() -> impl Strategy<Value = ModelSpec> {
    prop::collection::vec((1u64..5000, 1u64..300, 0u64..300), 1..12).prop_map(|layers| ModelSpec {
        name: "prop".to_string(),
        layers: layers
            .into_iter()
            .enumerate()
            .map(|(i, (params, out, extra))| LayerSpec {
                name: format!("L{i}"),
                class: LayerClass::Other,
                params,
                fwd_flops_per_sample: params * 2,
                out_elems_per_sample: out,
                extra_stash_elems_per_sample: extra,
                in_elems_per_sample: out,
            })
            .collect(),
        seq_len: 1,
    })
}

fn config_strategy() -> impl Strategy<Value = GraphConfig> {
    (1usize..6, 1u64..8, 1usize..6, 0u64..3).prop_map(|(m, ub, pack, opt)| GraphConfig {
        microbatches: m,
        ubatch_size: ub,
        pack_size: pack,
        opt_slots: opt,
        ..GraphConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn graph_structure_invariants(model in model_strategy(), cfg in config_strategy()) {
        let g = TaskGraph::build(&model, cfg).unwrap();
        let m = cfg.microbatches;
        let np = g.packs().len();
        let r = model.layers.len();

        // Pack coverage: contiguous, complete, none empty.
        prop_assert_eq!(g.packs().iter().map(|p| p.len()).sum::<usize>(), r);
        prop_assert_eq!(g.packs()[0].start, 0);
        for w in g.packs().windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        prop_assert!(g.packs().iter().all(|p| !p.is_empty()));

        // Task count: m·np forwards + m losses + m·np backwards + np updates.
        prop_assert_eq!(g.tasks().len(), 2 * m * np + m + np);

        // Topological order exists and respects deps.
        let order = g.topo_order();
        prop_assert_eq!(order.len(), g.tasks().len());
        let pos: HashMap<_, _> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for t in g.tasks() {
            for &d in &t.deps {
                prop_assert!(pos[&d] < pos[&t.id]);
            }
        }
    }

    #[test]
    fn every_allocated_tensor_is_eventually_freed_or_persistent(
        model in model_strategy(),
        cfg in config_strategy(),
    ) {
        let g = TaskGraph::build(&model, cfg).unwrap();
        let mut freed: HashSet<TensorRef> = HashSet::new();
        let mut written: HashSet<TensorRef> = HashSet::new();
        for t in g.tasks() {
            for &f in &t.frees {
                prop_assert!(!freed.contains(&f), "double free of {:?}", f);
                freed.insert(f);
            }
            written.extend(t.writes.iter().copied());
        }
        // Transient tensors (activations, stashes, act-grads) all die;
        // persistent state (W, dW, K) never does.
        for w in &written {
            match w.class() {
                TensorClass::Weight | TensorClass::Grad | TensorClass::OptState => {
                    prop_assert!(!freed.contains(w), "persistent {:?} freed", w);
                }
                TensorClass::Activation | TensorClass::Stash => {
                    prop_assert!(freed.contains(w), "leaked {:?}", w);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn reads_are_always_produced_before_use(
        model in model_strategy(),
        cfg in config_strategy(),
    ) {
        let g = TaskGraph::build(&model, cfg).unwrap();
        let order = g.topo_order();
        let mut live: HashSet<TensorRef> = HashSet::new();
        // Persistent tensors and inputs pre-exist.
        for l in 0..model.layers.len() {
            live.insert(TensorRef::Weight { layer: l });
            live.insert(TensorRef::Grad { layer: l });
            live.insert(TensorRef::OptState { layer: l });
        }
        for u in 0..cfg.microbatches {
            live.insert(TensorRef::Input { ubatch: u });
        }
        for &tid in &order {
            let t = g.task(tid);
            for rf in &t.reads {
                prop_assert!(live.contains(rf), "{:?} reads unproduced {:?}", t.kind, rf);
            }
            for &w in &t.writes {
                live.insert(w);
            }
            for f in &t.frees {
                live.remove(f);
            }
        }
    }

    #[test]
    fn footprints_and_flops_are_monotone_in_ubatch_size(
        model in model_strategy(),
        m in 1usize..4,
        pack in 1usize..4,
    ) {
        let mk = |ub: u64| {
            TaskGraph::build(&model, GraphConfig {
                microbatches: m,
                ubatch_size: ub,
                pack_size: pack,
                opt_slots: 2,
                ..GraphConfig::default()
            }).unwrap()
        };
        let g1 = mk(1);
        let g4 = mk(4);
        for (a, b) in g1.tasks().iter().zip(g4.tasks()) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert!(b.flops >= a.flops);
            prop_assert!(
                g4.task_footprint_bytes(b.id, &model) >= g1.task_footprint_bytes(a.id, &model)
            );
        }
    }

    #[test]
    fn update_waits_for_all_its_backwards(model in model_strategy(), cfg in config_strategy()) {
        let g = TaskGraph::build(&model, cfg).unwrap();
        for (p, _) in g.packs().iter().enumerate() {
            let u_id = g.id_of(TaskKind::Update { pack: p }).unwrap();
            let deps = &g.task(u_id).deps;
            prop_assert_eq!(deps.len(), cfg.microbatches);
            for u in 0..cfg.microbatches {
                let b = g.id_of(TaskKind::Backward { pack: p, ubatch: u }).unwrap();
                prop_assert!(deps.contains(&b));
            }
        }
    }
}
