//! Property-based tests on trace rendering: never panic, always preserve
//! structure, for arbitrary span soups.

use harmony_trace::{gantt, table::Table, SpanKind, Trace};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = SpanKind> {
    prop_oneof![
        Just(SpanKind::Compute),
        Just(SpanKind::SwapIn),
        Just(SpanKind::SwapOut),
        Just(SpanKind::P2p),
        Just(SpanKind::Collective),
    ]
}

/// Raw span fields; recorded into a trace via `Trace::record` (labels
/// are interned per trace, so spans can't exist detached from one).
type SpanFields = (f64, f64, Option<usize>, SpanKind, String);

fn span_strategy() -> impl Strategy<Value = SpanFields> {
    (
        0.0f64..100.0,
        0.0f64..10.0,
        prop::option::of(0usize..6),
        kind_strategy(),
        "[a-z]{0,12}",
    )
        .prop_map(|(start, len, gpu, kind, label)| (start, start + len, gpu, kind, label))
}

fn build(name: &str, spans: &[SpanFields]) -> Trace {
    let mut t = Trace::new(name);
    for (start, end, gpu, kind, label) in spans {
        t.record(*start, *end, *gpu, *kind, label);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gantt_never_panics_and_has_one_row_per_lane(
        spans in prop::collection::vec(span_strategy(), 0..40),
        width in 0usize..200,
    ) {
        let t = build("prop", &spans);
        let rendered = gantt::render(&t, width);
        if t.duration() > 0.0 && t.num_lanes() > 0 {
            // Header + one line per lane.
            prop_assert_eq!(rendered.lines().count(), 1 + t.num_lanes());
            for g in 0..t.num_lanes() {
                let lane_header = format!("gpu{g} |");
                let has_lane = rendered.contains(&lane_header);
                prop_assert!(has_lane, "missing lane {}", g);
            }
        } else {
            prop_assert!(rendered.contains("empty trace"));
        }
    }

    #[test]
    fn json_roundtrip_preserves_span_structure(
        spans in prop::collection::vec(span_strategy(), 0..30),
    ) {
        let t = build("rt", &spans);
        let back = Trace::from_json(&t.to_json()).unwrap();
        prop_assert_eq!(back.spans.len(), t.spans.len());
        for (a, b) in back.spans.iter().zip(&t.spans) {
            prop_assert_eq!(a.gpu, b.gpu);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(back.label(a), t.label(b));
        }
    }

    #[test]
    fn busy_secs_is_additive_over_kinds(
        spans in prop::collection::vec(span_strategy(), 0..30),
    ) {
        let t = build("b", &spans);
        for g in 0..6 {
            let per_kind: f64 = [
                SpanKind::Compute,
                SpanKind::SwapIn,
                SpanKind::SwapOut,
                SpanKind::P2p,
                SpanKind::Collective,
            ]
            .iter()
            .map(|&k| t.busy_secs(g, k))
            .sum();
            let total: f64 = t
                .spans
                .iter()
                .filter(|s| s.gpu == Some(g))
                .map(|s| s.end - s.start)
                .sum();
            prop_assert!((per_kind - total).abs() < 1e-9);
        }
    }

    #[test]
    fn tables_render_for_arbitrary_cell_content(
        title in "[a-zA-Z ]{0,20}",
        rows in prop::collection::vec(prop::collection::vec("[ -~]{0,24}", 0..5), 0..10),
    ) {
        let mut t = Table::new(title.clone(), &["a", "bb", "ccc"]);
        for row in &rows {
            t.row(&row.clone());
        }
        let rendered = t.render();
        prop_assert!(rendered.contains("| a"));
        prop_assert_eq!(t.num_rows(), rows.len());
        // Every rendered data line has the same width (alignment).
        let widths: Vec<usize> = rendered
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.chars().count())
            .collect();
        if let Some(&first) = widths.first() {
            prop_assert!(widths.iter().all(|&w| w == first));
        }
    }
}
