//! Minimal JSON support for trace export/import.
//!
//! The build environment has no registry access, so traces are
//! (de)serialised by hand: a tiny recursive-descent parser producing a
//! [`Value`] tree, plus string-escaping helpers for the writer. Only
//! the subset of JSON the trace format emits is exercised, but the
//! parser accepts arbitrary well-formed JSON documents.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// A JSON parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

/// Escapes a string for embedding in a JSON document (adds quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an f64 the way the writer emits numbers (round-trippable).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps enough digits for exact f64 round-trips.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).ok_or_else(|| self.err("bad codepoint"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null, "e": true}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn quote_roundtrips_specials() {
        let s = "a\"b\\c\nd\te\u{1}";
        let parsed = parse(&quote(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn number_format_roundtrips() {
        for v in [0.0, 1.5, -3.25, 1e-9, 123456789.123456] {
            let back = parse(&number(v)).unwrap().as_f64().unwrap();
            assert_eq!(back, v);
        }
    }
}
