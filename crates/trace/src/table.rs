//! Markdown-style result tables for the repro harness.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells; long rows are
    /// truncated to the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut r: Vec<String> = cells.iter().take(self.header.len()).cloned().collect();
        while r.len() < self.header.len() {
            r.push(String::new());
        }
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as aligned markdown.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, &width) in widths.iter().enumerate().take(ncol) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!(" {cell:<width$} |"));
            }
            s.push('\n');
            s
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n\n", self.title));
        }
        out.push_str(&line(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&line(row));
        }
        out
    }
}

/// Formats bytes as GB with 2 decimals.
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Results", &["scheme", "GB"]);
        t.row(&["baseline".to_string(), "12.50".to_string()]);
        t.row(&["harmony".to_string(), "3.00".to_string()]);
        let s = t.render();
        assert!(s.starts_with("## Results"));
        assert!(s.contains("| scheme   | GB    |"));
        assert_eq!(s.lines().count(), 6); // title, blank, header, sep, 2 rows
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["1".to_string()]);
        t.row(&["1".to_string(), "2".to_string(), "3".to_string()]);
        let s = t.render();
        assert_eq!(t.rows[0].len(), 2);
        assert_eq!(t.rows[1].len(), 2);
        assert!(!s.contains('3'));
    }

    #[test]
    fn format_helpers() {
        assert_eq!(gb(2_500_000_000), "2.50");
        assert_eq!(f2(1.234), "1.23");
    }
}
