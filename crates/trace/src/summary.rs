//! Run summaries: the numbers the paper's figures plot.

/// Whether a run ended in its statically-planned regime or had to adapt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResilienceMode {
    /// No resilience action was ever taken: the plan held as scheduled.
    #[default]
    Normal,
    /// At least one spill, reroute, retry, or overcommit occurred.
    Degraded,
}

impl ResilienceMode {
    /// Stable lower-case label used in JSON exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResilienceMode::Normal => "normal",
            ResilienceMode::Degraded => "degraded",
        }
    }
}

/// What the executor's resilience layer did during a faulted run: the
/// typed outcome that replaces aborting with an infeasibility error when
/// injected faults invalidate the static plan. Recorded in
/// [`RunSummary::resilience`] only for runs where the layer was armed and
/// faults were injected — clean runs carry `None` so their summaries stay
/// byte-identical with the layer on or off.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResilienceOutcome {
    /// Steps that entered pressure-spill mode (an allocation or fetch hit
    /// post-fault capacity pressure and was parked for eviction + retry).
    pub spill_events: u64,
    /// In-flight p2p moves cancelled off a degraded link and re-issued
    /// over the host-bounce path.
    pub rerouted_transfers: u64,
    /// Backoff retry timers that fired and re-attempted a parked step.
    pub retries: u64,
    /// Capacity overcommits (UVM-style oversubscription) granted after a
    /// spill exhausted its retry budget — the last-resort guarantee that
    /// a squeezed run still completes.
    pub overcommits: u64,
    /// The regime the run ended in.
    pub final_mode: ResilienceMode,
}

impl ResilienceOutcome {
    /// True when any resilience action was taken.
    pub fn degraded(&self) -> bool {
        self.spill_events + self.rerouted_transfers + self.retries + self.overcommits > 0
    }

    /// Serialises the outcome as a JSON object (null-free by construction).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"spill_events\": {}, \"rerouted_transfers\": {}, \"retries\": {}, \
             \"overcommits\": {}, \"final_mode\": \"{}\"}}",
            self.spill_events,
            self.rerouted_transfers,
            self.retries,
            self.overcommits,
            self.final_mode.as_str(),
        )
    }
}

/// Structural counters of the memory manager's planning hot path, as
/// exported into run summaries (a dependency-free mirror of
/// `harmony-memory`'s `MemCounters` — this crate sits below the memory
/// crate in the dependency order). `fresh_allocs` is the
/// no-per-fetch-allocation witness `repro mem-smoke` gates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemPlanningCounters {
    /// Planning-path heap materialisations (buffers and index builds).
    pub fresh_allocs: u64,
    /// Candidate records offered to `EvictionPolicy::choose`.
    pub candidate_scans: u64,
    /// Ordered-victim-index mutations at state transitions.
    pub index_ops: u64,
    /// Victims taken straight off the ordered index.
    pub victim_pops: u64,
}

impl MemPlanningCounters {
    /// Serialises the counters as a JSON object (null-free by construction).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"fresh_allocs\": {}, \"candidate_scans\": {}, \"index_ops\": {}, \
             \"victim_pops\": {}}}",
            self.fresh_allocs, self.candidate_scans, self.index_ops, self.victim_pops,
        )
    }
}

/// Aggregate results of one simulated (or executed) training run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Scheme + workload label.
    pub name: String,
    /// Virtual seconds for the measured iterations.
    pub sim_secs: f64,
    /// Samples (sequences) processed.
    pub samples: u64,
    /// Host swap-in bytes per GPU.
    pub swap_in_bytes: Vec<u64>,
    /// Host swap-out bytes per GPU.
    pub swap_out_bytes: Vec<u64>,
    /// Device-to-device bytes (global).
    pub p2p_bytes: u64,
    /// Peak resident bytes per GPU.
    pub peak_mem_bytes: Vec<u64>,
    /// Logical memory demand per GPU (what *would* have to be resident
    /// without virtualization) — the Fig 2(c) y-axis.
    pub demand_bytes: Vec<u64>,
    /// Global swap volume (both directions) per tensor class, keyed by the
    /// Fig 5(a) class names (`weight`, `grad`, `opt_state`, `activation`,
    /// `stash`, `workspace`). Used by the analytical cross-check.
    pub swap_by_class: std::collections::BTreeMap<String, u64>,
    /// Per-channel busy time in seconds, keyed by channel name — identifies
    /// the bottleneck link (the host uplink, in the paper's Fig 2a).
    pub channel_busy_secs: std::collections::BTreeMap<String, f64>,
    /// Simulator events (completions) the executor processed to produce
    /// this run — the unit the executor hot-path sweep scales in.
    pub events_processed: u64,
    /// Wall-clock seconds the host spent inside the executor's event loop
    /// (not virtual time). Nondeterministic by nature: comparisons between
    /// runs must ignore it (see the harness's executor differential).
    pub elapsed_secs: f64,
    /// Wall-clock seconds spent *setting up* the run — planning plus
    /// executor construction (key arenas, registration, queue
    /// compilation) — as opposed to executing it (`elapsed_secs`). The
    /// sweep-session work (DESIGN §14) exists to amortise exactly this
    /// cost, so it is observable per run. Wall clock like `elapsed_secs`:
    /// excluded from equality and zeroed before byte-for-byte
    /// comparisons.
    pub setup_secs: f64,
    /// What the resilience layer did, for runs where it was armed AND
    /// faults were injected; `None` on clean runs (so clean summaries are
    /// byte-identical with the layer on or off). Deterministic, and part
    /// of a run's identity.
    pub resilience: Option<ResilienceOutcome>,
    /// Memory-manager planning hot-path counters, when the producer
    /// exports them (`None` for hand-built or merged summaries). Like
    /// `elapsed_secs` these describe *how* the run was computed, not what
    /// it computed: the dense-memory reference legitimately allocates per
    /// fetch where the indexed manager does not, so counters are excluded
    /// from equality and stripped before byte-for-byte JSON comparisons.
    pub mem_counters: Option<MemPlanningCounters>,
}

/// Equality over the *deterministic* content of a run. `elapsed_secs`
/// and `setup_secs` are host wall clock — measurement noise, not part of
/// a run's identity — so two deterministic replays of the same plan
/// compare equal even though their clocks differ. (`events_processed` IS
/// deterministic and is compared.)
impl PartialEq for RunSummary {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.sim_secs == other.sim_secs
            && self.samples == other.samples
            && self.swap_in_bytes == other.swap_in_bytes
            && self.swap_out_bytes == other.swap_out_bytes
            && self.p2p_bytes == other.p2p_bytes
            && self.peak_mem_bytes == other.peak_mem_bytes
            && self.demand_bytes == other.demand_bytes
            && self.swap_by_class == other.swap_by_class
            && self.channel_busy_secs == other.channel_busy_secs
            && self.events_processed == other.events_processed
            && self.resilience == other.resilience
    }
}

impl RunSummary {
    /// Global training throughput in samples (sequences) per virtual
    /// second — the Fig 2(a) left axis.
    pub fn throughput(&self) -> f64 {
        if self.sim_secs <= 0.0 {
            0.0
        } else {
            self.samples as f64 / self.sim_secs
        }
    }

    /// Global swap-out volume in bytes — the Fig 2(a) right axis.
    pub fn global_swap_out(&self) -> u64 {
        self.swap_out_bytes.iter().sum()
    }

    /// Global swap-in volume in bytes.
    pub fn global_swap_in(&self) -> u64 {
        self.swap_in_bytes.iter().sum()
    }

    /// Global swap volume, both directions.
    pub fn global_swap(&self) -> u64 {
        self.global_swap_in() + self.global_swap_out()
    }

    /// Executor events per wall-clock second — the hot-path throughput
    /// `repro bench` tracks across the scaling grid. Zero when no wall
    /// clock was recorded (hand-built summaries).
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.events_processed as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Max/min swap imbalance across GPUs — quantifies Fig 2(c).
    ///
    /// `None` when the ratio is unbounded (some GPU swaps nothing while
    /// another swaps): the old `f64::INFINITY` sentinel serialised to
    /// `null` in JSON exports (non-finite floats have no JSON
    /// representation), corrupting trace/bench files. `Some(1.0)` for a
    /// run with no swap traffic at all (perfectly balanced).
    pub fn swap_imbalance(&self) -> Option<f64> {
        let totals: Vec<u64> = self
            .swap_in_bytes
            .iter()
            .zip(&self.swap_out_bytes)
            .map(|(i, o)| i + o)
            .collect();
        let max = totals.iter().copied().max().unwrap_or(0);
        let min = totals.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                Some(1.0)
            } else {
                None
            }
        } else {
            Some(max as f64 / min as f64)
        }
    }

    /// Fraction of the run a channel was busy, summed over channels whose
    /// name contains `pattern` and averaged (1.0 = always busy). Returns
    /// `None` when no channel matches.
    pub fn channel_utilisation(&self, pattern: &str) -> Option<f64> {
        let matched: Vec<f64> = self
            .channel_busy_secs
            .iter()
            .filter(|(name, _)| name.contains(pattern))
            .map(|(_, &busy)| busy)
            .collect();
        if matched.is_empty() || self.sim_secs <= 0.0 {
            return None;
        }
        Some(matched.iter().sum::<f64>() / matched.len() as f64 / self.sim_secs)
    }

    /// Serialises the summary as a JSON object. Derived non-finite
    /// quantities are *omitted* rather than emitted as `null` (JSON has no
    /// Inf/NaN), so exports always parse back into meaningful numbers.
    pub fn to_json(&self) -> String {
        use crate::json::{number, quote};
        let u64s = |v: &[u64]| {
            let items: Vec<String> = v.iter().map(|b| b.to_string()).collect();
            format!("[{}]", items.join(", "))
        };
        let mut out = String::from("{");
        out.push_str(&format!("\"name\": {}, ", quote(&self.name)));
        out.push_str(&format!("\"sim_secs\": {}, ", number(self.sim_secs)));
        out.push_str(&format!("\"samples\": {}, ", self.samples));
        out.push_str(&format!(
            "\"events_processed\": {}, ",
            self.events_processed
        ));
        if self.elapsed_secs.is_finite() {
            out.push_str(&format!(
                "\"elapsed_secs\": {}, ",
                number(self.elapsed_secs)
            ));
        }
        if self.setup_secs.is_finite() {
            out.push_str(&format!("\"setup_secs\": {}, ", number(self.setup_secs)));
        }
        out.push_str(&format!("\"throughput\": {}, ", number(self.throughput())));
        if let Some(r) = &self.resilience {
            out.push_str(&format!("\"resilience\": {}, ", r.to_json()));
        }
        if let Some(c) = &self.mem_counters {
            out.push_str(&format!("\"mem_counters\": {}, ", c.to_json()));
        }
        if let Some(imb) = self.swap_imbalance().filter(|v| v.is_finite()) {
            out.push_str(&format!("\"swap_imbalance\": {}, ", number(imb)));
        }
        out.push_str(&format!(
            "\"swap_in_bytes\": {}, ",
            u64s(&self.swap_in_bytes)
        ));
        out.push_str(&format!(
            "\"swap_out_bytes\": {}, ",
            u64s(&self.swap_out_bytes)
        ));
        out.push_str(&format!("\"p2p_bytes\": {}, ", self.p2p_bytes));
        out.push_str(&format!(
            "\"peak_mem_bytes\": {}, ",
            u64s(&self.peak_mem_bytes)
        ));
        out.push_str(&format!("\"demand_bytes\": {}, ", u64s(&self.demand_bytes)));
        let classes: Vec<String> = self
            .swap_by_class
            .iter()
            .map(|(k, v)| format!("{}: {}", quote(k), v))
            .collect();
        out.push_str(&format!("\"swap_by_class\": {{{}}}, ", classes.join(", ")));
        let channels: Vec<String> = self
            .channel_busy_secs
            .iter()
            .filter(|(_, v)| v.is_finite())
            .map(|(k, v)| format!("{}: {}", quote(k), number(*v)))
            .collect();
        out.push_str(&format!(
            "\"channel_busy_secs\": {{{}}}",
            channels.join(", ")
        ));
        out.push('}');
        out
    }

    /// One-line human summary.
    pub fn one_line(&self) -> String {
        format!(
            "{}: {:.2} samples/s, swap {:.2} GB (in {:.2} / out {:.2}), p2p {:.2} GB",
            self.name,
            self.throughput(),
            self.global_swap() as f64 / 1e9,
            self.global_swap_in() as f64 / 1e9,
            self.global_swap_out() as f64 / 1e9,
            self.p2p_bytes as f64 / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            name: "test".to_string(),
            sim_secs: 2.0,
            samples: 10,
            swap_in_bytes: vec![100, 300],
            swap_out_bytes: vec![200, 400],
            p2p_bytes: 50,
            peak_mem_bytes: vec![1000, 2000],
            demand_bytes: vec![3000, 1500],
            swap_by_class: Default::default(),
            channel_busy_secs: Default::default(),
            events_processed: 40,
            elapsed_secs: 0.5,
            setup_secs: 0.1,
            resilience: None,
            mem_counters: None,
        }
    }

    #[test]
    fn throughput_is_samples_per_sec() {
        assert_eq!(summary().throughput(), 5.0);
        let mut s = summary();
        s.sim_secs = 0.0;
        assert_eq!(s.throughput(), 0.0);
    }

    #[test]
    fn swap_totals() {
        let s = summary();
        assert_eq!(s.global_swap_in(), 400);
        assert_eq!(s.global_swap_out(), 600);
        assert_eq!(s.global_swap(), 1000);
    }

    #[test]
    fn imbalance_ratio() {
        let s = summary();
        // GPU0: 300, GPU1: 700 → 7/3.
        assert!((s.swap_imbalance().unwrap() - 700.0 / 300.0).abs() < 1e-9);
        let balanced = RunSummary {
            swap_in_bytes: vec![0, 0],
            swap_out_bytes: vec![0, 0],
            ..summary()
        };
        assert_eq!(balanced.swap_imbalance(), Some(1.0));
        // Unbounded skew is `None`, not an infinity that would serialise
        // to JSON `null`.
        let skewed = RunSummary {
            swap_in_bytes: vec![0, 10],
            swap_out_bytes: vec![0, 0],
            ..summary()
        };
        assert_eq!(skewed.swap_imbalance(), None);
    }

    #[test]
    fn json_export_parses_and_never_contains_null() {
        for s in [
            summary(),
            // Unbounded imbalance: the field is omitted, not `null`.
            RunSummary {
                swap_in_bytes: vec![0, 10],
                swap_out_bytes: vec![0, 0],
                ..summary()
            },
            // A non-finite wall clock must be omitted, never `null`.
            RunSummary {
                elapsed_secs: f64::INFINITY,
                ..summary()
            },
            RunSummary {
                setup_secs: f64::NAN,
                ..summary()
            },
        ] {
            let text = s.to_json();
            assert!(
                !text.contains("null"),
                "non-finite leaked into JSON: {text}"
            );
            let doc = crate::json::parse(&text).expect("valid JSON");
            assert_eq!(doc.get("name").and_then(|v| v.as_str()), Some("test"));
            assert_eq!(doc.get("sim_secs").and_then(|v| v.as_f64()), Some(2.0));
            assert_eq!(
                doc.get("events_processed").and_then(|v| v.as_f64()),
                Some(40.0)
            );
            if s.elapsed_secs.is_finite() {
                assert_eq!(
                    doc.get("elapsed_secs").and_then(|v| v.as_f64()),
                    Some(s.elapsed_secs)
                );
            } else {
                assert!(doc.get("elapsed_secs").is_none());
            }
            if s.setup_secs.is_finite() {
                assert_eq!(
                    doc.get("setup_secs").and_then(|v| v.as_f64()),
                    Some(s.setup_secs)
                );
            } else {
                assert!(doc.get("setup_secs").is_none());
            }
            match s.swap_imbalance() {
                Some(v) => {
                    assert_eq!(doc.get("swap_imbalance").and_then(|x| x.as_f64()), Some(v))
                }
                None => assert!(doc.get("swap_imbalance").is_none()),
            }
        }
    }

    #[test]
    fn resilience_outcome_serialises_only_when_present() {
        let clean = summary();
        assert!(!clean.to_json().contains("resilience"));
        let degraded = RunSummary {
            resilience: Some(ResilienceOutcome {
                spill_events: 2,
                rerouted_transfers: 1,
                retries: 3,
                overcommits: 1,
                final_mode: ResilienceMode::Degraded,
            }),
            ..summary()
        };
        let text = degraded.to_json();
        assert!(!text.contains("null"));
        let doc = crate::json::parse(&text).expect("valid JSON");
        let r = doc.get("resilience").expect("resilience object emitted");
        assert_eq!(r.get("spill_events").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(
            r.get("final_mode").and_then(|v| v.as_str()),
            Some("degraded")
        );
        // The outcome is part of a run's identity.
        assert_ne!(clean, degraded);
    }

    #[test]
    fn mem_counters_serialise_only_when_present_and_skip_equality() {
        let plain = summary();
        assert!(!plain.to_json().contains("mem_counters"));
        let counted = RunSummary {
            mem_counters: Some(MemPlanningCounters {
                fresh_allocs: 3,
                candidate_scans: 0,
                index_ops: 120,
                victim_pops: 17,
            }),
            ..summary()
        };
        let text = counted.to_json();
        assert!(!text.contains("null"));
        let doc = crate::json::parse(&text).expect("valid JSON");
        let c = doc.get("mem_counters").expect("counters object emitted");
        assert_eq!(c.get("fresh_allocs").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(c.get("victim_pops").and_then(|v| v.as_f64()), Some(17.0));
        // Counters describe how the run was computed, not what it
        // computed: they do not participate in run identity.
        assert_eq!(plain, counted);
    }

    #[test]
    fn wall_clocks_do_not_participate_in_identity() {
        let mut replay = summary();
        replay.elapsed_secs = 99.0;
        replay.setup_secs = 42.0;
        assert_eq!(summary(), replay);
    }

    #[test]
    fn events_per_sec_is_events_over_wall_clock() {
        assert_eq!(summary().events_per_sec(), 80.0);
        let mut s = summary();
        s.elapsed_secs = 0.0;
        assert_eq!(s.events_per_sec(), 0.0);
    }

    #[test]
    fn channel_utilisation_averages_matches() {
        let mut s = summary();
        s.channel_busy_secs.insert("sw0->host".to_string(), 1.5);
        s.channel_busy_secs.insert("gpu0->sw0".to_string(), 0.5);
        // sim_secs = 2.0 → uplink util 0.75.
        assert!((s.channel_utilisation("->host").unwrap() - 0.75).abs() < 1e-9);
        assert!(s.channel_utilisation("nvlink").is_none());
    }

    #[test]
    fn one_line_mentions_name_and_units() {
        let line = summary().one_line();
        assert!(line.contains("test"));
        assert!(line.contains("samples/s"));
    }
}
