//! # harmony-trace
//!
//! Execution traces, per-device Gantt timelines, and result tables for the
//! benchmark harness. The `repro` binary renders Fig 4-style schedules
//! with [`gantt::render`] and emits the paper's tables via
//! [`table::Table`]; runs can be exported as JSON for external tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gantt;
pub mod json;
pub mod summary;
pub mod table;

pub use json::JsonError;

/// What a trace span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Kernel execution on a GPU.
    Compute,
    /// Host → device swap-in.
    SwapIn,
    /// Device → host swap-out.
    SwapOut,
    /// Device → device transfer.
    P2p,
    /// Collective communication (e.g. AllReduce).
    Collective,
}

impl SpanKind {
    /// Single-character glyph used by the Gantt renderer.
    pub fn glyph(&self) -> char {
        match self {
            SpanKind::Compute => '#',
            SpanKind::SwapIn => '<',
            SpanKind::SwapOut => '>',
            SpanKind::P2p => '=',
            SpanKind::Collective => '+',
        }
    }
}

impl SpanKind {
    fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Compute => "Compute",
            SpanKind::SwapIn => "SwapIn",
            SpanKind::SwapOut => "SwapOut",
            SpanKind::P2p => "P2p",
            SpanKind::Collective => "Collective",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "Compute" => SpanKind::Compute,
            "SwapIn" => SpanKind::SwapIn,
            "SwapOut" => SpanKind::SwapOut,
            "P2p" => SpanKind::P2p,
            "Collective" => SpanKind::Collective,
            _ => return None,
        })
    }
}

/// One timed span of activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Start time (virtual seconds).
    pub start: f64,
    /// End time (virtual seconds).
    pub end: f64,
    /// Device lane (GPU index); `None` → host/global lane.
    pub gpu: Option<usize>,
    /// Kind of activity.
    pub kind: SpanKind,
    /// Short label, e.g. `"F L1 u0"`.
    pub label: String,
}

/// An execution trace: a list of spans plus metadata.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Trace name (scheme + workload).
    pub name: String,
    /// Recorded spans.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Creates an empty named trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            spans: Vec::new(),
        }
    }

    /// Records a span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Convenience: record a span from fields.
    pub fn record(
        &mut self,
        start: f64,
        end: f64,
        gpu: Option<usize>,
        kind: SpanKind,
        label: impl Into<String>,
    ) {
        self.push(Span {
            start,
            end,
            gpu,
            kind,
            label: label.into(),
        });
    }

    /// Makespan: latest span end (0 for an empty trace).
    pub fn duration(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total busy seconds of `kind` on a GPU lane.
    pub fn busy_secs(&self, gpu: usize, kind: SpanKind) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.gpu == Some(gpu) && s.kind == kind)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Number of GPU lanes referenced.
    pub fn num_lanes(&self) -> usize {
        self.spans
            .iter()
            .filter_map(|s| s.gpu)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": {},\n", json::quote(&self.name)));
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"start\": {}, \"end\": {}, \"gpu\": {}, \"kind\": {}, \"label\": {}}}",
                json::number(s.start),
                json::number(s.end),
                s.gpu.map_or("null".to_string(), |g| g.to_string()),
                json::quote(s.kind.as_str()),
                json::quote(&s.label),
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Parses a trace from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let err = |message: &str| JsonError {
            message: message.to_string(),
            offset: 0,
        };
        let doc = json::parse(s)?;
        let name = doc
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| err("missing `name`"))?
            .to_string();
        let mut spans = Vec::new();
        for (i, sv) in doc
            .get("spans")
            .and_then(|v| v.as_array())
            .ok_or_else(|| err("missing `spans`"))?
            .iter()
            .enumerate()
        {
            let field = |key: &str| {
                sv.get(key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| err(&format!("span {i}: missing `{key}`")))
            };
            let gpu = match sv.get("gpu") {
                None | Some(json::Value::Null) => None,
                Some(v) => Some(
                    v.as_f64()
                        .ok_or_else(|| err(&format!("span {i}: bad `gpu`")))?
                        as usize,
                ),
            };
            let kind = sv
                .get("kind")
                .and_then(|v| v.as_str())
                .and_then(SpanKind::from_str)
                .ok_or_else(|| err(&format!("span {i}: bad `kind`")))?;
            let label = sv
                .get("label")
                .and_then(|v| v.as_str())
                .ok_or_else(|| err(&format!("span {i}: missing `label`")))?
                .to_string();
            spans.push(Span {
                start: field("start")?,
                end: field("end")?,
                gpu,
                kind,
                label,
            });
        }
        Ok(Trace { name, spans })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_busy_accounting() {
        let mut t = Trace::new("t");
        t.record(0.0, 1.0, Some(0), SpanKind::Compute, "a");
        t.record(1.0, 3.0, Some(0), SpanKind::SwapIn, "b");
        t.record(0.5, 2.0, Some(1), SpanKind::Compute, "c");
        assert_eq!(t.duration(), 3.0);
        assert_eq!(t.busy_secs(0, SpanKind::Compute), 1.0);
        assert_eq!(t.busy_secs(0, SpanKind::SwapIn), 2.0);
        assert_eq!(t.busy_secs(1, SpanKind::Compute), 1.5);
        assert_eq!(t.num_lanes(), 2);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new("e");
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.num_lanes(), 0);
        assert_eq!(t.busy_secs(0, SpanKind::Compute), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Trace::new("rt");
        t.record(0.0, 1.5, Some(2), SpanKind::P2p, "x");
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back.name, "rt");
        assert_eq!(back.spans.len(), 1);
        assert_eq!(back.spans[0].kind, SpanKind::P2p);
    }

    #[test]
    fn glyphs_are_distinct() {
        use std::collections::HashSet;
        let glyphs: HashSet<char> = [
            SpanKind::Compute,
            SpanKind::SwapIn,
            SpanKind::SwapOut,
            SpanKind::P2p,
            SpanKind::Collective,
        ]
        .iter()
        .map(|k| k.glyph())
        .collect();
        assert_eq!(glyphs.len(), 5);
    }
}
