//! # harmony-trace
//!
//! Execution traces, per-device Gantt timelines, and result tables for the
//! benchmark harness. The `repro` binary renders Fig 4-style schedules
//! with [`gantt::render`] and emits the paper's tables via
//! [`table::Table`]; runs can be exported as JSON for external tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gantt;
pub mod json;
pub mod merge;
pub mod summary;
pub mod table;

pub use json::JsonError;

/// What a trace span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Kernel execution on a GPU.
    Compute,
    /// Host → device swap-in.
    SwapIn,
    /// Device → host swap-out.
    SwapOut,
    /// Device → device transfer.
    P2p,
    /// Collective communication (e.g. AllReduce).
    Collective,
}

impl SpanKind {
    /// Single-character glyph used by the Gantt renderer.
    pub fn glyph(&self) -> char {
        match self {
            SpanKind::Compute => '#',
            SpanKind::SwapIn => '<',
            SpanKind::SwapOut => '>',
            SpanKind::P2p => '=',
            SpanKind::Collective => '+',
        }
    }
}

impl SpanKind {
    fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Compute => "Compute",
            SpanKind::SwapIn => "SwapIn",
            SpanKind::SwapOut => "SwapOut",
            SpanKind::P2p => "P2p",
            SpanKind::Collective => "Collective",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "Compute" => SpanKind::Compute,
            "SwapIn" => SpanKind::SwapIn,
            "SwapOut" => SpanKind::SwapOut,
            "P2p" => SpanKind::P2p,
            "Collective" => SpanKind::Collective,
            _ => return None,
        })
    }
}

/// An interned span label: an index into the owning [`Trace`]'s
/// [`SymbolTable`]. Copyable, 4 bytes, allocation-free to record — the
/// executor interns each distinct label once at plan build/registration
/// and stamps millions of spans with the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymbolId(u32);

/// A string interner mapping distinct label texts to dense [`SymbolId`]s.
///
/// Lookups are by hash; ids are stable for the table's lifetime, so a
/// `SymbolId` is only meaningful against the table that produced it
/// (spans copied between traces must be re-interned — see
/// [`Trace::label`]).
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    strings: Vec<String>,
    index: std::collections::HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Returns the id for `s`, interning it on first sight.
    pub fn intern(&mut self, s: &str) -> SymbolId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = SymbolId(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    /// The text behind `id`. Empty string for an id minted by a
    /// *different* table (a span moved across traces without
    /// re-interning) — callers copying spans must go through
    /// [`Trace::label`] + re-intern.
    pub fn resolve(&self, id: SymbolId) -> &str {
        self.strings.get(id.0 as usize).map_or("", String::as_str)
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table has no labels.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Empties the table, retaining its capacity. Ids are minted densely
    /// from `strings.len()` and the hash index is lookup-only (never
    /// iterated), so a cleared table re-interns the same label sequence
    /// to the same ids as a fresh one — the pooled-trace identity
    /// contract (DESIGN §14).
    pub fn clear(&mut self) {
        self.strings.clear();
        self.index.clear();
    }
}

/// One timed span of activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Start time (virtual seconds).
    pub start: f64,
    /// End time (virtual seconds).
    pub end: f64,
    /// Device lane (GPU index); `None` → host/global lane.
    pub gpu: Option<usize>,
    /// Kind of activity.
    pub kind: SpanKind,
    /// Short label, e.g. `"F L1 u0"`, interned in the owning trace's
    /// symbol table (resolve with [`Trace::label`]).
    pub label: SymbolId,
    /// Intra-instant wave of the simulator event that emitted this span
    /// (see the simulator's event ordering): spans sharing an end time
    /// were emitted in ascending `(wave, lane)` order. Carried so the
    /// sharded merge can reconstruct the whole-run emission order; not
    /// serialized to JSON.
    pub wave: u32,
}

/// An execution trace: a list of spans plus metadata.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Trace name (scheme + workload).
    pub name: String,
    /// Recorded spans.
    pub spans: Vec<Span>,
    /// Interned label texts for `spans`.
    pub symbols: SymbolTable,
}

impl Trace {
    /// Creates an empty named trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            spans: Vec::new(),
            symbols: SymbolTable::default(),
        }
    }

    /// Rebinds a recycled trace to a new run: renames it and empties the
    /// span list and symbol table while keeping their capacity, so a
    /// pooled sweep records without growth reallocations. Equivalent to
    /// `Trace::new(name)` for every observable output (spans, labels,
    /// JSON) — symbol ids re-intern densely from zero.
    pub fn reset(&mut self, name: impl Into<String>) {
        self.name = name.into();
        self.spans.clear();
        self.symbols.clear();
    }

    /// Records a span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Reserves room for at least `extra` further spans. Callers that can
    /// bound their span count up front (the executor: a handful per work
    /// item) use this to keep the hot recording path free of growth
    /// reallocations.
    pub fn reserve_spans(&mut self, extra: usize) {
        self.spans.reserve(extra);
    }

    /// Interns `label` in this trace's symbol table.
    pub fn intern(&mut self, label: &str) -> SymbolId {
        self.symbols.intern(label)
    }

    /// The label text of a span recorded in this trace.
    pub fn label(&self, span: &Span) -> &str {
        self.symbols.resolve(span.label)
    }

    /// Convenience: record a span from fields, interning the label.
    pub fn record(
        &mut self,
        start: f64,
        end: f64,
        gpu: Option<usize>,
        kind: SpanKind,
        label: impl AsRef<str>,
    ) {
        let label = self.symbols.intern(label.as_ref());
        self.record_sym(start, end, gpu, kind, label, 0);
    }

    /// Allocation-free record: stamp a span with an already-interned
    /// label (the executor hot path). `wave` is the emitting event's
    /// intra-instant wave (0 when the caller doesn't track waves).
    pub fn record_sym(
        &mut self,
        start: f64,
        end: f64,
        gpu: Option<usize>,
        kind: SpanKind,
        label: SymbolId,
        wave: u32,
    ) {
        self.push(Span {
            start,
            end,
            gpu,
            kind,
            label,
            wave,
        });
    }

    /// Makespan: latest span end (0 for an empty trace).
    pub fn duration(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total busy seconds of `kind` on a GPU lane.
    pub fn busy_secs(&self, gpu: usize, kind: SpanKind) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.gpu == Some(gpu) && s.kind == kind)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Number of GPU lanes referenced.
    pub fn num_lanes(&self) -> usize {
        self.spans
            .iter()
            .filter_map(|s| s.gpu)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": {},\n", json::quote(&self.name)));
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"start\": {}, \"end\": {}, \"gpu\": {}, \"kind\": {}, \"label\": {}}}",
                json::number(s.start),
                json::number(s.end),
                s.gpu.map_or("null".to_string(), |g| g.to_string()),
                json::quote(s.kind.as_str()),
                json::quote(self.symbols.resolve(s.label)),
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Parses a trace from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let err = |message: &str| JsonError {
            message: message.to_string(),
            offset: 0,
        };
        let doc = json::parse(s)?;
        let name = doc
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| err("missing `name`"))?
            .to_string();
        let mut spans = Vec::new();
        let mut symbols = SymbolTable::default();
        for (i, sv) in doc
            .get("spans")
            .and_then(|v| v.as_array())
            .ok_or_else(|| err("missing `spans`"))?
            .iter()
            .enumerate()
        {
            let field = |key: &str| {
                sv.get(key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| err(&format!("span {i}: missing `{key}`")))
            };
            let gpu = match sv.get("gpu") {
                None | Some(json::Value::Null) => None,
                Some(v) => Some(
                    v.as_f64()
                        .ok_or_else(|| err(&format!("span {i}: bad `gpu`")))?
                        as usize,
                ),
            };
            let kind = sv
                .get("kind")
                .and_then(|v| v.as_str())
                .and_then(SpanKind::from_str)
                .ok_or_else(|| err(&format!("span {i}: bad `kind`")))?;
            let label = symbols.intern(
                sv.get("label")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| err(&format!("span {i}: missing `label`")))?,
            );
            spans.push(Span {
                start: field("start")?,
                end: field("end")?,
                gpu,
                kind,
                label,
                wave: 0,
            });
        }
        Ok(Trace {
            name,
            spans,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_busy_accounting() {
        let mut t = Trace::new("t");
        t.record(0.0, 1.0, Some(0), SpanKind::Compute, "a");
        t.record(1.0, 3.0, Some(0), SpanKind::SwapIn, "b");
        t.record(0.5, 2.0, Some(1), SpanKind::Compute, "c");
        assert_eq!(t.duration(), 3.0);
        assert_eq!(t.busy_secs(0, SpanKind::Compute), 1.0);
        assert_eq!(t.busy_secs(0, SpanKind::SwapIn), 2.0);
        assert_eq!(t.busy_secs(1, SpanKind::Compute), 1.5);
        assert_eq!(t.num_lanes(), 2);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new("e");
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.num_lanes(), 0);
        assert_eq!(t.busy_secs(0, SpanKind::Compute), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Trace::new("rt");
        t.record(0.0, 1.5, Some(2), SpanKind::P2p, "x");
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back.name, "rt");
        assert_eq!(back.spans.len(), 1);
        assert_eq!(back.spans[0].kind, SpanKind::P2p);
        assert_eq!(back.label(&back.spans[0]), "x");
    }

    #[test]
    fn interning_dedups_and_resolves() {
        let mut t = Trace::new("sym");
        let a = t.intern("F L1 u0");
        let b = t.intern("B L1 u0");
        assert_ne!(a, b);
        assert_eq!(t.intern("F L1 u0"), a, "re-intern must hit the cache");
        assert_eq!(t.symbols.len(), 2);
        t.record_sym(0.0, 1.0, Some(0), SpanKind::Compute, a, 0);
        t.record(1.0, 2.0, Some(0), SpanKind::Compute, "F L1 u0");
        assert_eq!(t.spans[0].label, t.spans[1].label);
        assert_eq!(t.label(&t.spans[0]), "F L1 u0");
        assert_eq!(t.symbols.len(), 2, "record must not re-intern");
    }

    #[test]
    fn symbols_roundtrip_through_json_export() {
        // The JSON format carries label *text* (no symbol-table section),
        // so exports are byte-compatible with the old `label: String`
        // schema and parse back losslessly whatever the id assignment.
        let mut t = Trace::new("rt");
        t.record(0.0, 1.0, Some(0), SpanKind::Compute, "F L0 u0");
        t.record(1.0, 2.0, Some(1), SpanKind::SwapIn, "W1");
        t.record(2.0, 3.0, Some(0), SpanKind::Compute, "F L0 u0");
        let text = t.to_json();
        assert!(text.contains("\"label\": \"F L0 u0\""));
        assert!(!text.contains("symbols"), "no table section in JSON");
        let back = Trace::from_json(&text).unwrap();
        assert_eq!(back.spans.len(), t.spans.len());
        for (a, b) in back.spans.iter().zip(&t.spans) {
            assert_eq!(back.label(a), t.label(b));
        }
        // Shared labels stay shared after the round trip.
        assert_eq!(back.spans[0].label, back.spans[2].label);
        assert_eq!(back.symbols.len(), 2);
        // And the re-export is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn reset_trace_matches_fresh_trace_byte_for_byte() {
        let mut pooled = Trace::new("first");
        pooled.record(0.0, 1.0, Some(0), SpanKind::Compute, "old-a");
        pooled.record(1.0, 2.0, Some(1), SpanKind::SwapIn, "old-b");
        pooled.reset("second");
        let mut fresh = Trace::new("second");
        for t in [&mut pooled, &mut fresh] {
            t.record(0.0, 1.0, Some(0), SpanKind::P2p, "x");
            t.record(1.0, 2.0, Some(0), SpanKind::P2p, "y");
        }
        assert_eq!(pooled.to_json(), fresh.to_json());
        assert_eq!(pooled.spans[0].label, fresh.spans[0].label);
        assert_eq!(pooled.symbols.len(), fresh.symbols.len());
    }

    #[test]
    fn foreign_symbol_resolves_empty_not_panic() {
        let mut other = Trace::new("other");
        for i in 0..4 {
            other.intern(&format!("s{i}"));
        }
        let foreign = other.intern("outsider");
        let t = Trace::new("t");
        assert_eq!(t.symbols.resolve(foreign), "");
    }

    #[test]
    fn glyphs_are_distinct() {
        use std::collections::HashSet;
        let glyphs: HashSet<char> = [
            SpanKind::Compute,
            SpanKind::SwapIn,
            SpanKind::SwapOut,
            SpanKind::P2p,
            SpanKind::Collective,
        ]
        .iter()
        .map(|k| k.glyph())
        .collect();
        assert_eq!(glyphs.len(), 5);
    }
}
