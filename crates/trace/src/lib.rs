//! # harmony-trace
//!
//! Execution traces, per-device Gantt timelines, and result tables for the
//! benchmark harness. The `repro` binary renders Fig 4-style schedules
//! with [`gantt::render`] and emits the paper's tables via
//! [`table::Table`]; runs can be exported as JSON for external tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gantt;
pub mod summary;
pub mod table;

use serde::{Deserialize, Serialize};

/// What a trace span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Kernel execution on a GPU.
    Compute,
    /// Host → device swap-in.
    SwapIn,
    /// Device → host swap-out.
    SwapOut,
    /// Device → device transfer.
    P2p,
    /// Collective communication (e.g. AllReduce).
    Collective,
}

impl SpanKind {
    /// Single-character glyph used by the Gantt renderer.
    pub fn glyph(&self) -> char {
        match self {
            SpanKind::Compute => '#',
            SpanKind::SwapIn => '<',
            SpanKind::SwapOut => '>',
            SpanKind::P2p => '=',
            SpanKind::Collective => '+',
        }
    }
}

/// One timed span of activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Start time (virtual seconds).
    pub start: f64,
    /// End time (virtual seconds).
    pub end: f64,
    /// Device lane (GPU index); `None` → host/global lane.
    pub gpu: Option<usize>,
    /// Kind of activity.
    pub kind: SpanKind,
    /// Short label, e.g. `"F L1 u0"`.
    pub label: String,
}

/// An execution trace: a list of spans plus metadata.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Trace name (scheme + workload).
    pub name: String,
    /// Recorded spans.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Creates an empty named trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            spans: Vec::new(),
        }
    }

    /// Records a span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Convenience: record a span from fields.
    pub fn record(
        &mut self,
        start: f64,
        end: f64,
        gpu: Option<usize>,
        kind: SpanKind,
        label: impl Into<String>,
    ) {
        self.push(Span {
            start,
            end,
            gpu,
            kind,
            label: label.into(),
        });
    }

    /// Makespan: latest span end (0 for an empty trace).
    pub fn duration(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total busy seconds of `kind` on a GPU lane.
    pub fn busy_secs(&self, gpu: usize, kind: SpanKind) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.gpu == Some(gpu) && s.kind == kind)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Number of GPU lanes referenced.
    pub fn num_lanes(&self) -> usize {
        self.spans
            .iter()
            .filter_map(|s| s.gpu)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parses a trace from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_busy_accounting() {
        let mut t = Trace::new("t");
        t.record(0.0, 1.0, Some(0), SpanKind::Compute, "a");
        t.record(1.0, 3.0, Some(0), SpanKind::SwapIn, "b");
        t.record(0.5, 2.0, Some(1), SpanKind::Compute, "c");
        assert_eq!(t.duration(), 3.0);
        assert_eq!(t.busy_secs(0, SpanKind::Compute), 1.0);
        assert_eq!(t.busy_secs(0, SpanKind::SwapIn), 2.0);
        assert_eq!(t.busy_secs(1, SpanKind::Compute), 1.5);
        assert_eq!(t.num_lanes(), 2);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new("e");
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.num_lanes(), 0);
        assert_eq!(t.busy_secs(0, SpanKind::Compute), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Trace::new("rt");
        t.record(0.0, 1.5, Some(2), SpanKind::P2p, "x");
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back.name, "rt");
        assert_eq!(back.spans.len(), 1);
        assert_eq!(back.spans[0].kind, SpanKind::P2p);
    }

    #[test]
    fn glyphs_are_distinct() {
        use std::collections::HashSet;
        let glyphs: HashSet<char> = [
            SpanKind::Compute,
            SpanKind::SwapIn,
            SpanKind::SwapOut,
            SpanKind::P2p,
            SpanKind::Collective,
        ]
        .iter()
        .map(|k| k.glyph())
        .collect();
        assert_eq!(glyphs.len(), 5);
    }
}
