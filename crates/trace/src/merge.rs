//! Deterministic cross-shard merge of traces and run summaries.
//!
//! The sharded executor (DESIGN §12) runs the replicas of one
//! data-parallel plan through per-shard `SimExecutor` instances and
//! reassembles a single run from their outputs. Each shard simulates its
//! own GPUs exactly as the unsharded executor would (their channels are
//! disjoint and collectives rendezvous at barriers), and additionally
//! observes every collective ring hop — so reassembly is a matter of
//! ownership plus ordering:
//!
//! * Every span and every counter is **owned** by exactly one shard —
//!   the shard whose GPUs produced it. Collective hops, which every
//!   shard records identically, are owned by the shard of their source
//!   lane; that dedups them in the merge.
//! * Owned span streams are each in the unsharded recording order
//!   restricted to their lanes (recording order is completion-pop order,
//!   monotone in span end time). The simulator pops same-instant events
//!   in ascending `(wave, lane)` order — the *wave* is the intra-instant
//!   spawn phase: events scheduled from an earlier instant are wave 0,
//!   and an event spawned while a wave-*w* handler runs joins wave
//!   *w* + 1 (e.g. the zero-length fetches a finished collective wakes).
//!   Both labels are shard-invariant — the wave counts causal phases and
//!   the lane is the producing GPU — and the executor stamps each span
//!   with its emitting event's wave. A stable k-way merge keyed on
//!   `(end, wave, lane)` — bit-exact `f64` end comparison, within-shard
//!   order preserved — therefore reconstructs the exact interleaving;
//!   lane ownership is unique, so no two shards contribute the same key.
//!
//! The functions here are pure data-plumbing over [`Trace`] and
//! [`RunSummary`]; which shard owns which lane/channel is the
//! scheduler's knowledge, passed in as a [`MergeSpec`].

use std::collections::BTreeMap;

use crate::summary::{ResilienceMode, ResilienceOutcome, RunSummary};
use crate::Trace;

/// Ownership map for a sharded run: which shard's output is
/// authoritative for each GPU lane and each channel.
#[derive(Debug, Clone)]
pub struct MergeSpec {
    /// Owning shard index per GPU lane (index = lane).
    pub lane_owner: Vec<usize>,
    /// Owning shard index per channel name. Channels absent from the map
    /// (never used, or carrying only collective traffic every shard
    /// accounts identically) default to shard 0.
    pub channel_owner: BTreeMap<String, usize>,
}

impl MergeSpec {
    fn owner_of_lane(&self, lane: Option<usize>) -> usize {
        lane.and_then(|g| self.lane_owner.get(g).copied())
            .unwrap_or(0)
    }
}

/// Merges per-shard traces into the single trace of the logical run.
///
/// Keeps from each shard only the spans it owns (per
/// [`MergeSpec::lane_owner`]; lane-less spans belong to shard 0), then
/// interleaves the streams by `(end, wave, lane)` with a bit-exact end
/// comparison, preserving within-shard order and breaking residual
/// cross-shard ties toward the lower shard index. Labels are re-interned
/// into the output trace in merged span order — label *text* is what the
/// JSON export carries, so symbol-table numbering is free to differ from
/// the unsharded run's.
pub fn merge_traces(parts: &[Trace], spec: &MergeSpec) -> Trace {
    let mut out = Trace::new(parts.first().map(|t| t.name.as_str()).unwrap_or(""));
    // Per-shard cursors over owned spans only.
    let owned: Vec<Vec<usize>> = parts
        .iter()
        .enumerate()
        .map(|(s, t)| {
            (0..t.spans.len())
                .filter(|&i| spec.owner_of_lane(t.spans[i].gpu) == s)
                .collect()
        })
        .collect();
    out.reserve_spans(owned.iter().map(Vec::len).sum());
    let mut cursor = vec![0usize; parts.len()];
    loop {
        let mut best: Option<(usize, (u64, u32, usize))> = None;
        for (s, t) in parts.iter().enumerate() {
            let Some(&i) = owned[s].get(cursor[s]) else {
                continue;
            };
            let sp = &t.spans[i];
            // Times are non-negative finite, so the IEEE bit patterns
            // order exactly as the values do — and byte-exactly, which
            // `f64: Ord` via epsilon comparisons could not guarantee.
            let key = (sp.end.to_bits(), sp.wave, sp.gpu.map_or(usize::MAX, |g| g));
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((s, key));
            }
        }
        let Some((s, _)) = best else { break };
        let i = owned[s][cursor[s]];
        cursor[s] += 1;
        let sp = parts[s].spans[i];
        let label = out.intern(parts[s].label(&sp));
        out.record_sym(sp.start, sp.end, sp.gpu, sp.kind, label, sp.wave);
    }
    out
}

/// Merges per-shard run summaries into the summary of the logical run.
///
/// Per-GPU vectors take each lane from its owning shard (foreign lanes
/// are idle in a shard, so their entries are the registration-time
/// zeros); global byte counters and event counts sum (each shard reports
/// only owned events); per-channel busy times take each channel from its
/// owning shard (bit-identical across shards for shared collective
/// channels, thanks to the simulator's per-channel busy accrual);
/// `sim_secs` is the latest shard clock. `elapsed_secs` is left at 0 —
/// wall clock belongs to the caller that timed the whole sharded run.
///
/// `name`, `samples` and `demand_bytes` are plan-derived and identical
/// in every part; they are taken from the first.
pub fn merge_summaries(parts: &[RunSummary], spec: &MergeSpec) -> RunSummary {
    let first = parts.first().expect("at least one shard");
    let n = spec.lane_owner.len();
    let pick = |f: fn(&RunSummary) -> &Vec<u64>| -> Vec<u64> {
        (0..n).map(|g| f(&parts[spec.lane_owner[g]])[g]).collect()
    };
    let mut swap_by_class: BTreeMap<String, u64> = BTreeMap::new();
    for p in parts {
        for (k, v) in &p.swap_by_class {
            *swap_by_class.entry(k.clone()).or_insert(0) += v;
        }
    }
    let channel_busy_secs: BTreeMap<String, f64> = first
        .channel_busy_secs
        .keys()
        .map(|name| {
            let owner = spec.channel_owner.get(name).copied().unwrap_or(0);
            (name.clone(), parts[owner].channel_busy_secs[name])
        })
        .collect();
    let armed: Vec<&ResilienceOutcome> =
        parts.iter().filter_map(|p| p.resilience.as_ref()).collect();
    let resilience = (!armed.is_empty()).then(|| ResilienceOutcome {
        spill_events: armed.iter().map(|r| r.spill_events).sum(),
        rerouted_transfers: armed.iter().map(|r| r.rerouted_transfers).sum(),
        retries: armed.iter().map(|r| r.retries).sum(),
        overcommits: armed.iter().map(|r| r.overcommits).sum(),
        final_mode: if armed
            .iter()
            .any(|r| r.final_mode == ResilienceMode::Degraded)
        {
            ResilienceMode::Degraded
        } else {
            ResilienceMode::Normal
        },
    });
    RunSummary {
        name: first.name.clone(),
        sim_secs: parts.iter().map(|p| p.sim_secs).fold(0.0, f64::max),
        samples: first.samples,
        swap_in_bytes: pick(|p| &p.swap_in_bytes),
        swap_out_bytes: pick(|p| &p.swap_out_bytes),
        p2p_bytes: parts.iter().map(|p| p.p2p_bytes).sum(),
        peak_mem_bytes: pick(|p| &p.peak_mem_bytes),
        demand_bytes: first.demand_bytes.clone(),
        swap_by_class,
        channel_busy_secs,
        events_processed: parts.iter().map(|p| p.events_processed).sum(),
        elapsed_secs: 0.0,
        // Like elapsed_secs: wall clock belongs to whoever timed the
        // whole sharded run, not to any single shard.
        setup_secs: 0.0,
        resilience,
        // Planning counters are per-manager implementation detail; a
        // merged summary has no single manager to attribute them to.
        mem_counters: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanKind;

    fn spec2() -> MergeSpec {
        MergeSpec {
            lane_owner: vec![0, 1],
            channel_owner: BTreeMap::from([
                ("gpu0->host".to_string(), 0),
                ("gpu1->host".to_string(), 1),
            ]),
        }
    }

    #[test]
    fn merge_filters_foreign_lanes_and_orders_by_end_wave_lane() {
        // Both shards record the symmetric hop pair (lanes 0 and 1); each
        // also records its own compute. The merge must dedup the hops by
        // lane ownership and interleave by (end, wave, lane).
        let mut a = Trace::new("run");
        a.record(0.0, 1.0, Some(0), SpanKind::Compute, "F g0");
        a.record(1.0, 2.0, Some(0), SpanKind::Collective, "hop0");
        a.record(1.0, 2.0, Some(1), SpanKind::Collective, "hop1");
        let mut b = Trace::new("run");
        b.record(0.0, 1.0, Some(1), SpanKind::Compute, "F g1");
        b.record(1.0, 2.0, Some(0), SpanKind::Collective, "hop0");
        b.record(1.0, 2.0, Some(1), SpanKind::Collective, "hop1");
        let m = merge_traces(&[a, b], &spec2());
        let got: Vec<(f64, f64, Option<usize>, String)> = m
            .spans
            .iter()
            .map(|s| (s.start, s.end, s.gpu, m.label(s).to_string()))
            .collect();
        assert_eq!(
            got,
            vec![
                (0.0, 1.0, Some(0), "F g0".to_string()),
                (0.0, 1.0, Some(1), "F g1".to_string()),
                (1.0, 2.0, Some(0), "hop0".to_string()),
                (1.0, 2.0, Some(1), "hop1".to_string()),
            ]
        );
    }

    #[test]
    fn same_instant_waves_order_before_lanes() {
        // Two spans end at the same instant, but the lane-0 span sits in
        // a later wave (e.g. the zero-length fetch a finished collective
        // spawned mid-instant). Waves emit before lanes: the merge keys
        // (end, wave, lane), so the wave-0 lane-1 span comes first even
        // though its lane number is higher.
        let mut a = Trace::new("run");
        let l0 = a.intern("late-wave g0");
        a.record_sym(0.5, 1.0, Some(0), SpanKind::SwapIn, l0, 1);
        let mut b = Trace::new("run");
        let l1 = b.intern("early-wave g1");
        b.record_sym(0.2, 1.0, Some(1), SpanKind::SwapIn, l1, 0);
        let m = merge_traces(&[a, b], &spec2());
        assert_eq!(m.label(&m.spans[0]), "early-wave g1");
        assert_eq!(m.label(&m.spans[1]), "late-wave g0");
        assert_eq!(m.spans[0].wave, 0, "merged spans keep their wave");
        assert_eq!(m.spans[1].wave, 1);
    }

    #[test]
    fn merge_is_stable_within_a_shard() {
        // Shard 0 records two same-key spans in a known order; the merge
        // must not swap them even though their keys are equal.
        let mut a = Trace::new("run");
        a.record(0.5, 1.0, Some(0), SpanKind::SwapIn, "first");
        a.record(0.5, 1.0, Some(0), SpanKind::SwapOut, "second");
        let b = Trace::new("run");
        let m = merge_traces(&[a, b], &spec2());
        assert_eq!(m.label(&m.spans[0]), "first");
        assert_eq!(m.label(&m.spans[1]), "second");
    }

    #[test]
    fn summary_merge_applies_ownership_rules() {
        let mk = |swap_in: Vec<u64>, events: u64, busy: [f64; 2], sim: f64| RunSummary {
            name: "run".into(),
            sim_secs: sim,
            samples: 8,
            swap_in_bytes: swap_in,
            swap_out_bytes: vec![0, 0],
            p2p_bytes: 3,
            peak_mem_bytes: vec![10, 20],
            demand_bytes: vec![100, 100],
            swap_by_class: BTreeMap::from([("weight".to_string(), 5)]),
            channel_busy_secs: BTreeMap::from([
                ("gpu0->host".to_string(), busy[0]),
                ("gpu1->host".to_string(), busy[1]),
            ]),
            events_processed: events,
            elapsed_secs: 9.9,
            setup_secs: 0.3,
            resilience: None,
            mem_counters: None,
        };
        let s0 = mk(vec![7, 0], 11, [1.5, 0.0], 2.0);
        let s1 = mk(vec![0, 9], 22, [0.0, 2.5], 3.0);
        let m = merge_summaries(&[s0, s1], &spec2());
        assert_eq!(m.swap_in_bytes, vec![7, 9]);
        assert_eq!(m.events_processed, 33);
        assert_eq!(m.p2p_bytes, 6);
        assert_eq!(m.swap_by_class["weight"], 10);
        assert_eq!(m.channel_busy_secs["gpu0->host"], 1.5);
        assert_eq!(m.channel_busy_secs["gpu1->host"], 2.5);
        assert_eq!(m.sim_secs, 3.0);
        assert_eq!(m.samples, 8);
        assert_eq!(m.elapsed_secs, 0.0);
        assert!(m.resilience.is_none());
    }

    #[test]
    fn summary_merge_combines_resilience_outcomes() {
        let base = RunSummary {
            name: "run".into(),
            sim_secs: 1.0,
            samples: 1,
            swap_in_bytes: vec![0, 0],
            swap_out_bytes: vec![0, 0],
            p2p_bytes: 0,
            peak_mem_bytes: vec![0, 0],
            demand_bytes: vec![0, 0],
            swap_by_class: BTreeMap::new(),
            channel_busy_secs: BTreeMap::new(),
            events_processed: 0,
            elapsed_secs: 0.0,
            setup_secs: 0.0,
            resilience: Some(ResilienceOutcome {
                spill_events: 1,
                rerouted_transfers: 0,
                retries: 2,
                overcommits: 0,
                final_mode: ResilienceMode::Normal,
            }),
            mem_counters: None,
        };
        let mut degraded = base.clone();
        degraded.resilience = Some(ResilienceOutcome {
            spill_events: 0,
            rerouted_transfers: 4,
            retries: 1,
            overcommits: 1,
            final_mode: ResilienceMode::Degraded,
        });
        let m = merge_summaries(&[base, degraded], &spec2());
        let r = m.resilience.expect("armed in every shard");
        assert_eq!(r.spill_events, 1);
        assert_eq!(r.rerouted_transfers, 4);
        assert_eq!(r.retries, 3);
        assert_eq!(r.overcommits, 1);
        assert_eq!(r.final_mode, ResilienceMode::Degraded);
    }
}
