//! Text Gantt rendering of traces (the Fig 4 schedule view).

use crate::{SpanKind, Trace};

/// Renders the trace as a fixed-width text Gantt chart: one row per GPU
/// lane, `width` columns spanning `[0, trace.duration()]`. Later spans
/// overwrite earlier ones in a cell; compute wins over transfers so the
/// schedule structure stays readable.
pub fn render(trace: &Trace, width: usize) -> String {
    let width = width.max(10);
    let dur = trace.duration();
    let lanes = trace.num_lanes();
    if dur <= 0.0 || lanes == 0 {
        return format!("{}: (empty trace)\n", trace.name);
    }
    let mut rows: Vec<Vec<char>> = vec![vec!['.'; width]; lanes];
    let mut priority: Vec<Vec<u8>> = vec![vec![0; width]; lanes];
    for span in &trace.spans {
        let Some(gpu) = span.gpu else { continue };
        let prio = match span.kind {
            SpanKind::Compute => 3,
            SpanKind::Collective => 2,
            _ => 1,
        };
        let s = ((span.start / dur) * width as f64).floor() as usize;
        let e = (((span.end / dur) * width as f64).ceil() as usize).min(width);
        for c in s..e.max(s + 1).min(width) {
            if prio >= priority[gpu][c] {
                rows[gpu][c] = span.kind.glyph();
                priority[gpu][c] = prio;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{} (makespan {:.3}s)  [{}=compute {}=swap-in {}=swap-out {}=p2p {}=collective]\n",
        trace.name,
        dur,
        SpanKind::Compute.glyph(),
        SpanKind::SwapIn.glyph(),
        SpanKind::SwapOut.glyph(),
        SpanKind::P2p.glyph(),
        SpanKind::Collective.glyph(),
    ));
    for (g, row) in rows.iter().enumerate() {
        out.push_str(&format!("gpu{g} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_one_row_per_lane() {
        let mut t = Trace::new("g");
        t.record(0.0, 1.0, Some(0), SpanKind::Compute, "a");
        t.record(0.0, 2.0, Some(1), SpanKind::SwapIn, "b");
        let s = render(&t, 20);
        assert_eq!(s.lines().count(), 3); // header + 2 lanes
        assert!(s.contains("gpu0 |"));
        assert!(s.contains("gpu1 |"));
        assert!(s.contains('#'));
        assert!(s.contains('<'));
    }

    #[test]
    fn compute_overrides_transfers_in_shared_cells() {
        let mut t = Trace::new("g");
        t.record(0.0, 1.0, Some(0), SpanKind::SwapIn, "in");
        t.record(0.0, 1.0, Some(0), SpanKind::Compute, "k");
        let s = render(&t, 12);
        let lane = s.lines().nth(1).unwrap();
        assert!(lane.contains('#'));
        assert!(!lane.contains('<'));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Trace::new("e");
        assert!(render(&t, 40).contains("empty trace"));
    }

    #[test]
    fn golden_two_lane_schedule() {
        // Pins the exact rendered text for a small schedule so the
        // symbol-table migration (and any future refactor) provably
        // keeps the renderer's output identical.
        let mut t = Trace::new("golden");
        t.record(0.0, 1.0, Some(0), SpanKind::SwapIn, "W0");
        t.record(1.0, 2.0, Some(0), SpanKind::Compute, "F L0 u0");
        t.record(2.0, 3.0, Some(0), SpanKind::SwapOut, "A0");
        t.record(1.0, 2.0, Some(1), SpanKind::P2p, "A0>1");
        t.record(2.0, 4.0, Some(1), SpanKind::Compute, "F L1 u0");
        t.record(3.5, 4.0, Some(0), SpanKind::Collective, "allreduce p0 i0");
        let got = render(&t, 16);
        let want = "golden (makespan 4.000s)  \
                    [#=compute <=swap-in >=swap-out ==p2p +=collective]\n\
                    gpu0 |<<<<####>>>>..++|\n\
                    gpu1 |....====########|\n";
        assert_eq!(got, want);
    }
}
