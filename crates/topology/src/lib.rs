//! # harmony-topology
//!
//! Hardware description of a commodity multi-GPU server: devices with
//! memory capacity and compute rate, and a graph of *directed bandwidth
//! channels* connecting GPUs to each other and to host memory.
//!
//! This substitutes for the paper's physical testbed (four 11 GB NVIDIA
//! 1080Ti GPUs behind PCIe switches with a 4:1-oversubscribed host link,
//! Fig 2(b)). The interconnect properties that produce the paper's
//! bottlenecks are modelled explicitly:
//!
//! * every GPU has its own PCIe lanes to its switch (full duplex → one
//!   channel per direction);
//! * all GPUs behind a switch *share* the switch's host uplink — the
//!   oversubscribed resource that throttles data-parallel swapping
//!   (Fig 2a);
//! * GPU↔GPU transfers through a common switch do **not** cross the host
//!   uplink — the fast p2p path Harmony exploits (§3, optimization 3).
//!
//! Transfers are routed with [`Topology::route`]; the discrete-event
//! simulator applies fair-share contention per channel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod presets;

use std::collections::HashMap;
use std::fmt;

/// Identifier of a GPU device (index into [`Topology::gpus`]).
pub type GpuId = usize;

/// A memory endpoint: host RAM or one GPU's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// Host (CPU) memory.
    Host,
    /// GPU `i`'s device memory.
    Gpu(GpuId),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Host => write!(f, "host"),
            Endpoint::Gpu(i) => write!(f, "gpu{i}"),
        }
    }
}

/// A GPU's static properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Usable device memory in bytes.
    pub mem_bytes: u64,
    /// Sustained compute throughput in FLOP/s (fp32).
    pub flops: f64,
}

/// Identifier of a directed bandwidth channel.
pub type ChannelId = usize;

/// A directed bandwidth channel (one direction of a physical link).
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// Stable id.
    pub id: ChannelId,
    /// Human-readable name, e.g. `"gpu2->switch0"`.
    pub name: String,
    /// Capacity in bytes/second, shared fairly among concurrent transfers.
    pub bandwidth: f64,
}

/// Errors from topology construction and routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No route between the requested endpoints.
    NoRoute {
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
    },
    /// A referenced GPU does not exist.
    UnknownGpu(GpuId),
    /// Invalid construction parameter.
    Invalid(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoRoute { src, dst } => write!(f, "no route {src} -> {dst}"),
            TopologyError::UnknownGpu(g) => write!(f, "unknown gpu {g}"),
            TopologyError::Invalid(msg) => write!(f, "invalid topology: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A server's device and interconnect description.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Display name, e.g. `"4x1080Ti (PCIe, 4:1)"`.
    pub name: String,
    gpus: Vec<GpuSpec>,
    channels: Vec<Channel>,
    routes: HashMap<(Endpoint, Endpoint), Vec<ChannelId>>,
    /// Which switch each GPU hangs off (for reporting).
    switch_of: Vec<usize>,
}

/// Builder used by presets and tests to assemble a topology.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    name: String,
    gpus: Vec<GpuSpec>,
    channels: Vec<Channel>,
    routes: HashMap<(Endpoint, Endpoint), Vec<ChannelId>>,
    switch_of: Vec<usize>,
}

impl TopologyBuilder {
    /// Starts a named topology.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a GPU, returning its id.
    pub fn gpu(&mut self, spec: GpuSpec, switch: usize) -> GpuId {
        self.gpus.push(spec);
        self.switch_of.push(switch);
        self.gpus.len() - 1
    }

    /// Adds a directed channel, returning its id.
    pub fn channel(&mut self, name: impl Into<String>, bandwidth: f64) -> ChannelId {
        let id = self.channels.len();
        self.channels.push(Channel {
            id,
            name: name.into(),
            bandwidth,
        });
        id
    }

    /// Registers the route (ordered channel list) from `src` to `dst`.
    pub fn route(&mut self, src: Endpoint, dst: Endpoint, channels: Vec<ChannelId>) {
        self.routes.insert((src, dst), channels);
    }

    /// Finalises the topology, validating all route references.
    pub fn build(self) -> Result<Topology, TopologyError> {
        for ((src, dst), chans) in &self.routes {
            for &c in chans {
                if c >= self.channels.len() {
                    return Err(TopologyError::Invalid(format!(
                        "route {src}->{dst} references unknown channel {c}"
                    )));
                }
            }
            for ep in [src, dst] {
                if let Endpoint::Gpu(g) = ep {
                    if *g >= self.gpus.len() {
                        return Err(TopologyError::UnknownGpu(*g));
                    }
                }
            }
        }
        Ok(Topology {
            name: self.name,
            gpus: self.gpus,
            channels: self.channels,
            routes: self.routes,
            switch_of: self.switch_of,
        })
    }
}

impl Topology {
    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// GPU spec by id.
    pub fn gpu(&self, id: GpuId) -> Result<&GpuSpec, TopologyError> {
        self.gpus.get(id).ok_or(TopologyError::UnknownGpu(id))
    }

    /// All GPU specs.
    pub fn gpus(&self) -> &[GpuSpec] {
        &self.gpus
    }

    /// All channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The switch index a GPU hangs off.
    pub fn switch_of(&self, id: GpuId) -> Result<usize, TopologyError> {
        self.switch_of
            .get(id)
            .copied()
            .ok_or(TopologyError::UnknownGpu(id))
    }

    /// The ordered channel list a transfer from `src` to `dst` traverses.
    ///
    /// ```
    /// use harmony_topology::{presets, Endpoint};
    /// let topo = presets::commodity_4x1080ti();
    /// // Host swaps cross two channels: the GPU's lane and the shared uplink.
    /// assert_eq!(topo.route(Endpoint::Gpu(0), Endpoint::Host).unwrap().len(), 2);
    /// // p2p through the switch never touches the uplink.
    /// assert!(topo.p2p_avoids_host_uplink(0, 3).unwrap());
    /// ```
    pub fn route(&self, src: Endpoint, dst: Endpoint) -> Result<&[ChannelId], TopologyError> {
        self.routes
            .get(&(src, dst))
            .map(Vec::as_slice)
            .ok_or(TopologyError::NoRoute { src, dst })
    }

    /// Zero-contention transfer time for `bytes` from `src` to `dst`
    /// (bottleneck-channel model).
    pub fn ideal_transfer_secs(
        &self,
        src: Endpoint,
        dst: Endpoint,
        bytes: u64,
    ) -> Result<f64, TopologyError> {
        let route = self.route(src, dst)?;
        let min_bw = route
            .iter()
            .map(|&c| self.channels[c].bandwidth)
            .fold(f64::INFINITY, f64::min);
        if !min_bw.is_finite() || min_bw <= 0.0 {
            return Err(TopologyError::Invalid(format!(
                "route {src}->{dst} has no usable bandwidth"
            )));
        }
        Ok(bytes as f64 / min_bw)
    }

    /// Host-uplink oversubscription ratio: the sum of per-GPU link
    /// bandwidth behind each switch divided by that switch's uplink
    /// bandwidth, maximised over switches. 1.0 means no oversubscription.
    ///
    /// This is the "4:1 or 8:1" figure the paper cites for commodity
    /// servers (§2, inefficiency 3).
    pub fn host_oversubscription(&self) -> f64 {
        // Uplink of a switch = the last channel on some GPU->Host route;
        // per-GPU bandwidth = the first channel on it.
        let mut per_switch_sum: HashMap<ChannelId, f64> = HashMap::new();
        for g in 0..self.num_gpus() {
            if let Ok(route) = self.route(Endpoint::Gpu(g), Endpoint::Host) {
                if route.len() >= 2 {
                    let first_bw = self.channels[route[0]].bandwidth;
                    let uplink = *route.last().expect("len >= 2");
                    *per_switch_sum.entry(uplink).or_insert(0.0) += first_bw;
                }
            }
        }
        per_switch_sum
            .into_iter()
            .map(|(uplink, sum)| sum / self.channels[uplink].bandwidth)
            .fold(1.0, f64::max)
    }

    /// True if GPU↔GPU transfers between `a` and `b` avoid every channel on
    /// either GPU's host route's *uplink* — i.e. p2p does not contend with
    /// host swaps beyond the GPUs' own lanes.
    pub fn p2p_avoids_host_uplink(&self, a: GpuId, b: GpuId) -> Result<bool, TopologyError> {
        let p2p = self.route(Endpoint::Gpu(a), Endpoint::Gpu(b))?;
        let host_a = self.route(Endpoint::Gpu(a), Endpoint::Host)?;
        let uplink = host_a
            .last()
            .ok_or_else(|| TopologyError::Invalid("empty host route".to_string()))?;
        Ok(!p2p.contains(uplink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gpu_topo() -> Topology {
        let mut b = TopologyBuilder::new("test");
        let spec = GpuSpec {
            mem_bytes: 1 << 30,
            flops: 1e12,
        };
        let g0 = b.gpu(spec, 0);
        let g1 = b.gpu(spec, 0);
        let g0_up = b.channel("gpu0->sw", 10.0);
        let g0_down = b.channel("sw->gpu0", 10.0);
        let g1_up = b.channel("gpu1->sw", 10.0);
        let g1_down = b.channel("sw->gpu1", 10.0);
        let sw_up = b.channel("sw->host", 10.0);
        let sw_down = b.channel("host->sw", 10.0);
        b.route(Endpoint::Gpu(g0), Endpoint::Host, vec![g0_up, sw_up]);
        b.route(Endpoint::Host, Endpoint::Gpu(g0), vec![sw_down, g0_down]);
        b.route(Endpoint::Gpu(g1), Endpoint::Host, vec![g1_up, sw_up]);
        b.route(Endpoint::Host, Endpoint::Gpu(g1), vec![sw_down, g1_down]);
        b.route(Endpoint::Gpu(g0), Endpoint::Gpu(g1), vec![g0_up, g1_down]);
        b.route(Endpoint::Gpu(g1), Endpoint::Gpu(g0), vec![g1_up, g0_down]);
        b.build().unwrap()
    }

    #[test]
    fn routes_resolve() {
        let t = two_gpu_topo();
        assert_eq!(t.route(Endpoint::Gpu(0), Endpoint::Host).unwrap().len(), 2);
        assert!(t.route(Endpoint::Host, Endpoint::Host).is_err());
    }

    #[test]
    fn ideal_transfer_uses_bottleneck() {
        let t = two_gpu_topo();
        let secs = t
            .ideal_transfer_secs(Endpoint::Gpu(0), Endpoint::Host, 100)
            .unwrap();
        assert!((secs - 10.0).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_counts_shared_uplink() {
        let t = two_gpu_topo();
        // Two 10 B/s GPU links share one 10 B/s uplink → 2:1.
        assert!((t.host_oversubscription() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn p2p_route_avoids_uplink() {
        let t = two_gpu_topo();
        assert!(t.p2p_avoids_host_uplink(0, 1).unwrap());
    }

    #[test]
    fn build_rejects_dangling_refs() {
        let mut b = TopologyBuilder::new("bad");
        b.route(Endpoint::Gpu(0), Endpoint::Host, vec![99]);
        assert!(b.build().is_err());

        let mut b = TopologyBuilder::new("bad2");
        let c = b.channel("c", 1.0);
        b.route(Endpoint::Gpu(3), Endpoint::Host, vec![c]);
        assert!(matches!(b.build(), Err(TopologyError::UnknownGpu(3))));
    }

    #[test]
    fn gpu_lookup_bounds() {
        let t = two_gpu_topo();
        assert!(t.gpu(0).is_ok());
        assert!(t.gpu(5).is_err());
        assert_eq!(t.switch_of(1).unwrap(), 0);
        assert!(t.switch_of(9).is_err());
    }
}
