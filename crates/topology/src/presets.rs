//! Canonical server topologies.
//!
//! Bandwidth and capacity figures follow published specs for the hardware
//! the paper names: PCIe 3.0 x16 ≈ 12 GB/s effective per direction,
//! GTX 1080Ti = 11 GB / ~11 TFLOP/s fp32, DGX-1-style NVLink ≈ 20 GB/s per
//! direction per pair. The *ratios* (oversubscription, p2p vs host path)
//! are what drive the reproduced results.

use crate::{Endpoint, GpuId, GpuSpec, Topology, TopologyBuilder, TopologyError};

/// 1 GiB.
pub const GIB: u64 = 1 << 30;
/// 1 GB/s in bytes/second.
pub const GBPS: f64 = 1e9;

/// Parameters for a switched PCIe commodity server.
#[derive(Debug, Clone, Copy)]
pub struct CommodityParams {
    /// Number of GPUs.
    pub num_gpus: usize,
    /// GPUs behind each PCIe switch.
    pub gpus_per_switch: usize,
    /// Per-GPU PCIe bandwidth, bytes/s per direction.
    pub pcie_bw: f64,
    /// Switch→host uplink bandwidth, bytes/s per direction.
    pub host_uplink_bw: f64,
    /// Per-GPU memory bytes.
    pub gpu_mem: u64,
    /// Per-GPU compute, FLOP/s.
    pub gpu_flops: f64,
}

/// Builds a switched PCIe server: GPUs grouped under switches, each switch
/// sharing one host uplink; p2p within a switch goes GPU→switch→GPU without
/// touching the uplink; p2p across switches crosses both uplinks.
pub fn commodity_server(p: CommodityParams) -> Result<Topology, TopologyError> {
    if p.num_gpus == 0 || p.gpus_per_switch == 0 {
        return Err(TopologyError::Invalid(
            "need at least one GPU and one GPU per switch".to_string(),
        ));
    }
    let num_switches = p.num_gpus.div_ceil(p.gpus_per_switch);
    let over = (p.gpus_per_switch as f64 * p.pcie_bw) / p.host_uplink_bw;
    let mut b = TopologyBuilder::new(format!(
        "commodity {}xGPU ({} switch(es), {:.0}:1 host oversubscription)",
        p.num_gpus, num_switches, over
    ));
    let spec = GpuSpec {
        mem_bytes: p.gpu_mem,
        flops: p.gpu_flops,
    };
    let mut gpu_up = Vec::new(); // gpu -> switch
    let mut gpu_down = Vec::new(); // switch -> gpu
    for g in 0..p.num_gpus {
        let sw = g / p.gpus_per_switch;
        b.gpu(spec, sw);
        gpu_up.push(b.channel(format!("gpu{g}->sw{sw}"), p.pcie_bw));
        gpu_down.push(b.channel(format!("sw{sw}->gpu{g}"), p.pcie_bw));
    }
    let mut sw_up = Vec::new();
    let mut sw_down = Vec::new();
    for s in 0..num_switches {
        sw_up.push(b.channel(format!("sw{s}->host"), p.host_uplink_bw));
        sw_down.push(b.channel(format!("host->sw{s}"), p.host_uplink_bw));
    }
    for g in 0..p.num_gpus {
        let s = g / p.gpus_per_switch;
        b.route(Endpoint::Gpu(g), Endpoint::Host, vec![gpu_up[g], sw_up[s]]);
        b.route(
            Endpoint::Host,
            Endpoint::Gpu(g),
            vec![sw_down[s], gpu_down[g]],
        );
        for (h, &down) in gpu_down.iter().enumerate() {
            if g == h {
                continue;
            }
            let t = h / p.gpus_per_switch;
            let route = if s == t {
                vec![gpu_up[g], down]
            } else {
                vec![gpu_up[g], sw_up[s], sw_down[t], down]
            };
            b.route(Endpoint::Gpu(g), Endpoint::Gpu(h), route);
        }
    }
    b.build()
}

/// The paper's testbed: four 11 GB 1080Ti GPUs behind one PCIe switch with
/// a 4:1-oversubscribed host uplink (Fig 2b).
pub fn commodity_4x1080ti() -> Topology {
    commodity_server(CommodityParams {
        num_gpus: 4,
        gpus_per_switch: 4,
        pcie_bw: 12.0 * GBPS,
        host_uplink_bw: 12.0 * GBPS,
        gpu_mem: 11 * GIB,
        gpu_flops: 11.3e12,
    })
    .expect("static preset is valid")
}

/// Like [`commodity_4x1080ti`] but with `n` GPUs behind one switch (used by
/// the Fig 2(a) sweep over GPU count: oversubscription grows with `n`).
pub fn commodity_n_1080ti(n: usize) -> Result<Topology, TopologyError> {
    commodity_server(CommodityParams {
        num_gpus: n,
        gpus_per_switch: n.max(1),
        pcie_bw: 12.0 * GBPS,
        host_uplink_bw: 12.0 * GBPS,
        gpu_mem: 11 * GIB,
        gpu_flops: 11.3e12,
    })
}

/// An 8-GPU single-root server (8:1 host oversubscription), as in the
/// ASUS/PNY dense servers the paper cites.
pub fn commodity_8gpu() -> Topology {
    commodity_server(CommodityParams {
        num_gpus: 8,
        gpus_per_switch: 8,
        pcie_bw: 12.0 * GBPS,
        host_uplink_bw: 12.0 * GBPS,
        gpu_mem: 11 * GIB,
        gpu_flops: 11.3e12,
    })
    .expect("static preset is valid")
}

/// A DGX-1-like box: 8 × 32 GB GPUs, PCIe to host, but direct NVLink p2p
/// channels between all GPU pairs (simplified all-to-all at 20 GB/s). Used
/// by ablations contrasting p2p-rich and p2p-poor interconnects.
pub fn dgx1_like() -> Topology {
    let p = CommodityParams {
        num_gpus: 8,
        gpus_per_switch: 4,
        pcie_bw: 12.0 * GBPS,
        host_uplink_bw: 12.0 * GBPS,
        gpu_mem: 32 * GIB,
        gpu_flops: 15.7e12,
    };
    // Same PCIe tree as a commodity box, but every GPU->GPU route gets its
    // own dedicated NVLink channel.
    let mut b = TopologyBuilder::new("dgx1-like (NVLink p2p)");
    for g in 0..p.num_gpus {
        b.gpu(
            GpuSpec {
                mem_bytes: p.gpu_mem,
                flops: p.gpu_flops,
            },
            g / p.gpus_per_switch,
        );
    }
    let mut gpu_up = Vec::new();
    let mut gpu_down = Vec::new();
    for g in 0..p.num_gpus {
        let sw = g / p.gpus_per_switch;
        gpu_up.push(b.channel(format!("gpu{g}->sw{sw}"), p.pcie_bw));
        gpu_down.push(b.channel(format!("sw{sw}->gpu{g}"), p.pcie_bw));
    }
    let num_switches = p.num_gpus.div_ceil(p.gpus_per_switch);
    let mut sw_up = Vec::new();
    let mut sw_down = Vec::new();
    for s in 0..num_switches {
        sw_up.push(b.channel(format!("sw{s}->host"), p.host_uplink_bw));
        sw_down.push(b.channel(format!("host->sw{s}"), p.host_uplink_bw));
    }
    for g in 0..p.num_gpus {
        let s = g / p.gpus_per_switch;
        b.route(Endpoint::Gpu(g), Endpoint::Host, vec![gpu_up[g], sw_up[s]]);
        b.route(
            Endpoint::Host,
            Endpoint::Gpu(g),
            vec![sw_down[s], gpu_down[g]],
        );
        for h in 0..p.num_gpus {
            if g != h {
                let nv = b.channel(format!("nvlink{g}->{h}"), 20.0 * GBPS);
                b.route(Endpoint::Gpu(g), Endpoint::Gpu(h), vec![nv]);
            }
        }
    }
    b.build().expect("static preset is valid")
}

/// Utility: all GPU ids of a topology.
pub fn all_gpus(t: &Topology) -> Vec<GpuId> {
    (0..t.num_gpus()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_is_4_to_1_oversubscribed() {
        let t = commodity_4x1080ti();
        assert_eq!(t.num_gpus(), 4);
        assert!((t.host_oversubscription() - 4.0).abs() < 1e-9);
        assert_eq!(t.gpu(0).unwrap().mem_bytes, 11 * GIB);
    }

    #[test]
    fn eight_gpu_box_is_8_to_1() {
        let t = commodity_8gpu();
        assert!((t.host_oversubscription() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn p2p_same_switch_avoids_uplink() {
        let t = commodity_4x1080ti();
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(t.p2p_avoids_host_uplink(a, b).unwrap(), "{a}->{b}");
                }
            }
        }
    }

    #[test]
    fn cross_switch_p2p_crosses_uplinks() {
        let t = commodity_server(CommodityParams {
            num_gpus: 4,
            gpus_per_switch: 2,
            pcie_bw: 12.0 * GBPS,
            host_uplink_bw: 12.0 * GBPS,
            gpu_mem: GIB,
            gpu_flops: 1e12,
        })
        .unwrap();
        assert!(t.p2p_avoids_host_uplink(0, 1).unwrap()); // same switch
        assert!(!t.p2p_avoids_host_uplink(0, 2).unwrap()); // cross switch
    }

    #[test]
    fn dgx_p2p_is_direct_nvlink() {
        let t = dgx1_like();
        let route = t
            .route(Endpoint::Gpu(0), Endpoint::Gpu(7))
            .unwrap()
            .to_vec();
        assert_eq!(route.len(), 1);
        assert!(t.channels()[route[0]].name.starts_with("nvlink"));
    }

    #[test]
    fn sweep_preset_scales_oversubscription() {
        for n in 1..=4 {
            let t = commodity_n_1080ti(n).unwrap();
            assert_eq!(t.num_gpus(), n);
            assert!((t.host_oversubscription() - n as f64).abs() < 1e-9);
        }
        assert!(commodity_n_1080ti(0).is_err());
    }

    #[test]
    fn ideal_transfer_times_scale_with_route() {
        let t = commodity_4x1080ti();
        let one_gb = 1_000_000_000u64;
        // Host swap at 12 GB/s → ~83 ms/GB.
        let host = t
            .ideal_transfer_secs(Endpoint::Gpu(0), Endpoint::Host, one_gb)
            .unwrap();
        assert!((host - 1.0 / 12.0).abs() < 1e-3);
        // p2p same speed per hop here (PCIe both ways).
        let p2p = t
            .ideal_transfer_secs(Endpoint::Gpu(0), Endpoint::Gpu(1), one_gb)
            .unwrap();
        assert!((p2p - 1.0 / 12.0).abs() < 1e-3);
    }
}

/// Parameters for a two-server deployment (the paper's §4 "multi-machine
/// training" discussion): each server is a switched PCIe box; the servers
/// are joined by a NIC-to-NIC link (Ethernet/InfiniBand class) that is
/// much slower than intra-server PCIe.
#[derive(Debug, Clone, Copy)]
pub struct TwoServerParams {
    /// GPUs per server.
    pub gpus_per_server: usize,
    /// Per-GPU PCIe bandwidth, bytes/s per direction.
    pub pcie_bw: f64,
    /// Switch→host uplink bandwidth, bytes/s per direction.
    pub host_uplink_bw: f64,
    /// Inter-server link bandwidth, bytes/s per direction.
    pub nic_bw: f64,
    /// Per-GPU memory bytes.
    pub gpu_mem: u64,
    /// Per-GPU compute, FLOP/s.
    pub gpu_flops: f64,
}

/// Builds a two-server cluster. GPU ids `0..g` live on server 0 and
/// `g..2g` on server 1. Host swaps stay within each server (every server
/// has its own host RAM and uplink); GPU↔GPU routes between servers cross
/// the shared NIC channels — the "heterogeneous and hierarchical
/// interconnects" the paper says multi-machine Harmony must account for.
pub fn two_server(p: TwoServerParams) -> Result<Topology, TopologyError> {
    if p.gpus_per_server == 0 {
        return Err(TopologyError::Invalid("need GPUs per server".to_string()));
    }
    let g = p.gpus_per_server;
    let mut b = TopologyBuilder::new(format!(
        "2 servers × {g} GPUs (NIC {:.0} Gb/s)",
        p.nic_bw * 8.0 / 1e9
    ));
    let spec = GpuSpec {
        mem_bytes: p.gpu_mem,
        flops: p.gpu_flops,
    };
    let mut gpu_up = Vec::new();
    let mut gpu_down = Vec::new();
    for i in 0..2 * g {
        let server = i / g;
        b.gpu(spec, server);
        gpu_up.push(b.channel(format!("gpu{i}->sw{server}"), p.pcie_bw));
        gpu_down.push(b.channel(format!("sw{server}->gpu{i}"), p.pcie_bw));
    }
    let mut sw_up = Vec::new();
    let mut sw_down = Vec::new();
    let mut nic_out = Vec::new();
    let mut nic_in = Vec::new();
    for s in 0..2 {
        sw_up.push(b.channel(format!("sw{s}->host{s}"), p.host_uplink_bw));
        sw_down.push(b.channel(format!("host{s}->sw{s}"), p.host_uplink_bw));
        nic_out.push(b.channel(format!("nic{s}->wire"), p.nic_bw));
        nic_in.push(b.channel(format!("wire->nic{s}"), p.nic_bw));
    }
    for i in 0..2 * g {
        let s = i / g;
        b.route(Endpoint::Gpu(i), Endpoint::Host, vec![gpu_up[i], sw_up[s]]);
        b.route(
            Endpoint::Host,
            Endpoint::Gpu(i),
            vec![sw_down[s], gpu_down[i]],
        );
        for (j, &down) in gpu_down.iter().enumerate() {
            if i == j {
                continue;
            }
            let t = j / g;
            let route = if s == t {
                vec![gpu_up[i], down]
            } else {
                vec![gpu_up[i], nic_out[s], nic_in[t], down]
            };
            b.route(Endpoint::Gpu(i), Endpoint::Gpu(j), route);
        }
    }
    b.build()
}

/// A ready-made two-server box: 2 × 4 × 11 GB GPUs, 12 GB/s PCIe,
/// 3 GB/s (≈25 GbE bonded) inter-server link.
pub fn two_server_4x1080ti() -> Topology {
    two_server(TwoServerParams {
        gpus_per_server: 4,
        pcie_bw: 12.0 * GBPS,
        host_uplink_bw: 12.0 * GBPS,
        nic_bw: 3.0 * GBPS,
        gpu_mem: 11 * GIB,
        gpu_flops: 11.3e12,
    })
    .expect("static preset is valid")
}

#[cfg(test)]
mod two_server_tests {
    use super::*;

    #[test]
    fn cross_server_routes_use_the_nic() {
        let t = two_server_4x1080ti();
        assert_eq!(t.num_gpus(), 8);
        // Same server: two hops through the switch.
        assert_eq!(
            t.route(Endpoint::Gpu(0), Endpoint::Gpu(3)).unwrap().len(),
            2
        );
        // Cross server: four hops including the wire.
        let route = t.route(Endpoint::Gpu(0), Endpoint::Gpu(5)).unwrap();
        assert_eq!(route.len(), 4);
        let names: Vec<&str> = route
            .iter()
            .map(|&c| t.channels()[c].name.as_str())
            .collect();
        assert!(names.iter().any(|n| n.contains("nic")), "{names:?}");
    }

    #[test]
    fn cross_server_transfers_are_nic_bound() {
        let t = two_server_4x1080ti();
        let local = t
            .ideal_transfer_secs(Endpoint::Gpu(0), Endpoint::Gpu(1), 1_000_000_000)
            .unwrap();
        let remote = t
            .ideal_transfer_secs(Endpoint::Gpu(0), Endpoint::Gpu(4), 1_000_000_000)
            .unwrap();
        assert!(remote > 3.0 * local, "remote {remote} vs local {local}");
    }

    #[test]
    fn host_swaps_stay_on_server_and_do_not_share_across_servers() {
        let t = two_server_4x1080ti();
        let r0 = t.route(Endpoint::Gpu(0), Endpoint::Host).unwrap();
        let r4 = t.route(Endpoint::Gpu(4), Endpoint::Host).unwrap();
        // Different uplinks: swaps on server 0 never contend with server 1.
        assert_ne!(r0.last(), r4.last());
    }

    #[test]
    fn oversubscription_is_per_server() {
        let t = two_server_4x1080ti();
        assert!((t.host_oversubscription() - 4.0).abs() < 1e-9);
    }
}
