//! Property-based tests on tensor-engine invariants.

use harmony_tensor::nn::{Activation, ActivationKind, LayerNorm, Linear};
use harmony_tensor::ops;
use harmony_tensor::optim::Optimizer;
use harmony_tensor::rng::SplitMix64;
use harmony_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim, any::<u64>())
        .prop_map(|(r, c, seed)| Tensor::randn([r, c], 1.0, &mut SplitMix64::new(seed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in tensor_strategy(8), seed in any::<u64>()) {
        let b = Tensor::randn(a.shape().clone(), 1.0, &mut SplitMix64::new(seed));
        prop_assert_eq!(ops::add(&a, &b).unwrap(), ops::add(&b, &a).unwrap());
    }

    #[test]
    fn scale_distributes_over_add(a in tensor_strategy(8), seed in any::<u64>(), k in -4.0f32..4.0) {
        let b = Tensor::randn(a.shape().clone(), 1.0, &mut SplitMix64::new(seed));
        let lhs = ops::scale(&ops::add(&a, &b).unwrap(), k);
        let rhs = ops::add(&ops::scale(&a, k), &ops::scale(&b, k)).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_identity_is_noop(a in tensor_strategy(8)) {
        let n = a.shape().dims()[1];
        let mut eye = Tensor::zeros([n, n]);
        for i in 0..n {
            eye.data_mut()[i * n + i] = 1.0;
        }
        let out = ops::matmul(&a, &eye).unwrap();
        prop_assert!(out.max_abs_diff(&a).unwrap() < 1e-5);
    }

    #[test]
    fn transpose_is_involutive(a in tensor_strategy(10)) {
        let tt = ops::transpose2d(&ops::transpose2d(&a).unwrap()).unwrap();
        prop_assert_eq!(tt, a);
    }

    #[test]
    fn gemm_variants_consistent(
        (m, k, n, s1, s2) in (1usize..6, 1usize..6, 1usize..6, any::<u64>(), any::<u64>())
    ) {
        let a = Tensor::randn([m, k], 1.0, &mut SplitMix64::new(s1));
        let b = Tensor::randn([k, n], 1.0, &mut SplitMix64::new(s2));
        // (AᵀB computed by matmul_at_b over Aᵀ input) == plain matmul.
        let at = ops::transpose2d(&a).unwrap(); // [k, m]
        let via_at_b = ops::matmul_at_b(&at, &b).unwrap(); // (Aᵀ)ᵀ·B = A·B
        let plain = ops::matmul(&a, &b).unwrap();
        prop_assert!(via_at_b.max_abs_diff(&plain).unwrap() < 1e-4);
        // A·Bᵀ with B stored [n, k] equals matmul against transpose.
        let bt_stored = ops::transpose2d(&b).unwrap(); // [n, k]
        let via_a_bt = ops::matmul_a_bt(&a, &bt_stored).unwrap();
        prop_assert!(via_a_bt.max_abs_diff(&plain).unwrap() < 1e-4);
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_strategy(8)) {
        let y = ops::row_softmax(&a).unwrap();
        let (rows, n) = y.shape().as_matrix();
        for r in 0..rows {
            let row = &y.data()[r * n..(r + 1) * n];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn chunk_cat_roundtrip(
        (parts, rows_per, cols, seed) in (1usize..5, 1usize..4, 1usize..6, any::<u64>())
    ) {
        let t = Tensor::randn([parts * rows_per, cols], 1.0, &mut SplitMix64::new(seed));
        let chunks = ops::chunk_dim0(&t, parts).unwrap();
        prop_assert_eq!(chunks.len(), parts);
        prop_assert_eq!(ops::cat_dim0(&chunks).unwrap(), t);
    }

    #[test]
    fn linear_backward_shapes_always_align(
        (inp, out, rows, seed) in (1usize..8, 1usize..8, 1usize..6, any::<u64>())
    ) {
        let layer = Linear::new(inp, out, true);
        let mut rng = SplitMix64::new(seed);
        let params = layer.init_params(&mut rng);
        let x = Tensor::randn([rows, inp], 1.0, &mut rng);
        let dy = Tensor::randn([rows, out], 1.0, &mut rng);
        let (y, stash) = layer.forward(&params, &x).unwrap();
        prop_assert_eq!(y.shape().dims(), &[rows, out]);
        let (dx, grads) = layer.backward(&params, &stash, &dy).unwrap();
        prop_assert_eq!(dx.shape(), x.shape());
        for (g, p) in grads.tensors.iter().zip(&params) {
            prop_assert_eq!(g.shape(), p.shape());
        }
    }

    #[test]
    fn layernorm_output_is_normalised_for_any_input(
        (rows, dim, seed) in (1usize..5, 2usize..10, any::<u64>())
    ) {
        let layer = LayerNorm::new(dim);
        let params = layer.init_params();
        let x = Tensor::randn([rows, dim], 3.0, &mut SplitMix64::new(seed));
        let (y, _) = layer.forward(&params, &x).unwrap();
        for r in 0..rows {
            let row = &y.data()[r * dim..(r + 1) * dim];
            let mean: f32 = row.iter().sum::<f32>() / dim as f32;
            prop_assert!(mean.abs() < 1e-3, "row {} mean {}", r, mean);
        }
    }

    #[test]
    fn relu_output_nonnegative_and_sparsifying(a in tensor_strategy(8)) {
        let layer = Activation::new(ActivationKind::Relu);
        let (y, _) = layer.forward(&a).unwrap();
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
        // ReLU never increases magnitude.
        for (&yo, &xi) in y.data().iter().zip(a.data()) {
            prop_assert!(yo.abs() <= xi.abs() + f32::EPSILON);
        }
    }

    #[test]
    fn sgd_step_descends_quadratic(x0 in -10.0f32..10.0, lr in 0.001f32..0.4) {
        // f(x) = x², one SGD step must not increase f.
        let opt = Optimizer::Sgd { lr };
        let mut p = Tensor::scalar(x0);
        let g = Tensor::scalar(2.0 * x0);
        opt.step(&mut p, &g, &mut [], 1).unwrap();
        let new = p.item().unwrap();
        prop_assert!(new * new <= x0 * x0 + 1e-6);
    }

    #[test]
    fn gradient_accumulation_is_linear(
        (shape_r, shape_c, s1, s2) in (1usize..6, 1usize..6, any::<u64>(), any::<u64>())
    ) {
        // axpy(axpy(z, a), b) == a + b elementwise when z = 0.
        let a = Tensor::randn([shape_r, shape_c], 1.0, &mut SplitMix64::new(s1));
        let b = Tensor::randn([shape_r, shape_c], 1.0, &mut SplitMix64::new(s2));
        let mut acc = Tensor::zeros(a.shape().clone());
        ops::axpy(&mut acc, 1.0, &a).unwrap();
        ops::axpy(&mut acc, 1.0, &b).unwrap();
        let direct = ops::add(&a, &b).unwrap();
        prop_assert!(acc.max_abs_diff(&direct).unwrap() < 1e-5);
    }
}
