//! Numeric kernels: elementwise arithmetic, GEMM variants, reductions,
//! row-wise softmax.
//!
//! Kernels are free functions over [`Tensor`] so that Harmony's executor can
//! invoke them by name from decomposed tasks. The three GEMM variants
//! (`matmul`, `matmul_at_b`, `matmul_a_bt`) are exactly the products needed
//! by the forward and backward phases of a linear layer, which dominate
//! transformer compute.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

fn check_same_shape(op: &'static str, a: &Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    Ok(())
}

/// Elementwise `a + b`.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape("add", a, b)?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// Elementwise `a - b`.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape("sub", a, b)?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x - y).collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// Elementwise `a * b` (Hadamard product).
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape("mul", a, b)?;
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// `a * s` for scalar `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    let data = a.data().iter().map(|x| x * s).collect();
    Tensor::from_vec(a.shape().clone(), data).expect("same shape")
}

/// In-place `a += alpha * b` (axpy). Used for gradient accumulation across
/// microbatches — the `Accumulated dW` output of the backward phase in
/// Fig 5(a).
pub fn axpy(a: &mut Tensor, alpha: f32, b: &Tensor) -> Result<()> {
    check_same_shape("axpy", a, b)?;
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += alpha * y;
    }
    Ok(())
}

/// Sum of all elements.
pub fn sum(a: &Tensor) -> f32 {
    a.data().iter().sum()
}

/// Mean of all elements (0 for empty tensors).
pub fn mean(a: &Tensor) -> f32 {
    if a.numel() == 0 {
        0.0
    } else {
        sum(a) / a.numel() as f32
    }
}

/// Matrix views: folds all leading dims into rows (see [`Shape::as_matrix`]).
fn mat_dims(op: &'static str, t: &Tensor, min_rank: usize) -> Result<(usize, usize)> {
    if t.shape().rank() < min_rank {
        return Err(TensorError::RankMismatch {
            op,
            expected: min_rank,
            actual: t.shape().rank(),
        });
    }
    Ok(t.shape().as_matrix())
}

/// `C[m,n] = A[m,k] · B[k,n]`. Leading dimensions of `A` are folded into `m`,
/// so a `[batch, seq, k]` activation times a `[k, n]` weight yields
/// `[batch*seq, n]` rows; the caller reshapes back.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = mat_dims("matmul", a, 1)?;
    let (k2, n) = mat_dims("matmul", b, 2)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // i-k-j loop order: streams through B rows, friendly to the row-major
    // layout and autovectorisation.
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `[m,k]`.
///
/// This is the weight-gradient product of a linear layer
/// (`dW = Xᵀ · dY`).
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = mat_dims("matmul_at_b", a, 1)?;
    let (m2, n) = mat_dims("matmul_at_b", b, 1)?;
    if m != m2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; k * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let brow = &bd[i * n..(i + 1) * n];
        for (kk, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let orow = &mut out[kk * n..(kk + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    Tensor::from_vec([k, n], out)
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `[k,n]`.
///
/// This is the input-gradient product of a linear layer
/// (`dX = dY · Wᵀ`).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, n) = mat_dims("matmul_a_bt", a, 1)?;
    let (k, n2) = mat_dims("matmul_a_bt", b, 2)?;
    if n != n2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * k];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * n..(i + 1) * n];
        let orow = &mut out[i * k..(i + 1) * k];
        for (kk, o) in orow.iter_mut().enumerate() {
            let brow = &bd[kk * n..(kk + 1) * n];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    Tensor::from_vec([m, k], out)
}

/// Adds a bias row-vector `[n]` to every row of `a` (any shape whose last
/// dim is `n`).
pub fn add_bias(a: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let (rows, n) = mat_dims("add_bias", a, 1)?;
    if bias.shape().as_matrix() != (1, n) {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias",
            lhs: a.shape().clone(),
            rhs: bias.shape().clone(),
        });
    }
    let mut out = a.data().to_vec();
    let bd = bias.data();
    for r in 0..rows {
        for (o, &b) in out[r * n..(r + 1) * n].iter_mut().zip(bd) {
            *o += b;
        }
    }
    Tensor::from_vec(a.shape().clone(), out)
}

/// Column sum over folded rows: the bias gradient `db[n] = Σ_rows dY[r, n]`.
pub fn col_sum(a: &Tensor) -> Result<Tensor> {
    let (rows, n) = mat_dims("col_sum", a, 1)?;
    let mut out = vec![0.0f32; n];
    for r in 0..rows {
        for (o, &x) in out.iter_mut().zip(&a.data()[r * n..(r + 1) * n]) {
            *o += x;
        }
    }
    Tensor::from_vec([n], out)
}

/// Row-wise numerically stable softmax over the last dimension.
pub fn row_softmax(a: &Tensor) -> Result<Tensor> {
    let (rows, n) = mat_dims("row_softmax", a, 1)?;
    if n == 0 {
        return Err(TensorError::InvalidArgument {
            op: "row_softmax",
            msg: "last dimension must be non-zero".to_string(),
        });
    }
    let mut out = a.data().to_vec();
    for r in 0..rows {
        let row = &mut out[r * n..(r + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            denom += *x;
        }
        for x in row.iter_mut() {
            *x /= denom;
        }
    }
    Tensor::from_vec(a.shape().clone(), out)
}

/// Backward of row-wise softmax: given `y = softmax(x)` and upstream `dy`,
/// returns `dx = y ⊙ (dy − (y·dy))` per row.
pub fn row_softmax_backward(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    check_same_shape("row_softmax_backward", y, dy)?;
    let (rows, n) = mat_dims("row_softmax_backward", y, 1)?;
    let mut out = vec![0.0f32; rows * n];
    for r in 0..rows {
        let yrow = &y.data()[r * n..(r + 1) * n];
        let dyrow = &dy.data()[r * n..(r + 1) * n];
        let dot: f32 = yrow.iter().zip(dyrow).map(|(a, b)| a * b).sum();
        for ((o, &yv), &dyv) in out[r * n..(r + 1) * n].iter_mut().zip(yrow).zip(dyrow) {
            *o = yv * (dyv - dot);
        }
    }
    Tensor::from_vec(y.shape().clone(), out)
}

/// Transposes a 2-D tensor.
pub fn transpose2d(a: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "transpose2d",
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    let (m, n) = a.shape().as_matrix();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a.data()[i * n + j];
        }
    }
    Tensor::from_vec([n, m], out)
}

/// Splits a tensor into `parts` equal chunks along dimension 0 — Harmony's
/// task decomposer uses this to cut a minibatch into microbatches.
pub fn chunk_dim0(a: &Tensor, parts: usize) -> Result<Vec<Tensor>> {
    if parts == 0 {
        return Err(TensorError::InvalidArgument {
            op: "chunk_dim0",
            msg: "parts must be positive".to_string(),
        });
    }
    let d0 = a.shape().dim(0).ok_or(TensorError::RankMismatch {
        op: "chunk_dim0",
        expected: 1,
        actual: 0,
    })?;
    if d0 % parts != 0 {
        return Err(TensorError::InvalidArgument {
            op: "chunk_dim0",
            msg: format!("dim0 {d0} not divisible by {parts} parts"),
        });
    }
    let stride = a.numel() / parts;
    let mut dims = a.shape().dims().to_vec();
    dims[0] = d0 / parts;
    let mut out = Vec::with_capacity(parts);
    for p in 0..parts {
        let slice = a.data()[p * stride..(p + 1) * stride].to_vec();
        out.push(Tensor::from_vec(Shape::new(dims.clone()), slice)?);
    }
    Ok(out)
}

/// Concatenates tensors along dimension 0 (inverse of [`chunk_dim0`]).
pub fn cat_dim0(parts: &[Tensor]) -> Result<Tensor> {
    let first = parts.first().ok_or(TensorError::InvalidArgument {
        op: "cat_dim0",
        msg: "empty input".to_string(),
    })?;
    let mut dims = first.shape().dims().to_vec();
    if dims.is_empty() {
        return Err(TensorError::RankMismatch {
            op: "cat_dim0",
            expected: 1,
            actual: 0,
        });
    }
    let tail: &[usize] = &dims[1..];
    let mut data = Vec::new();
    let mut d0 = 0usize;
    for p in parts {
        if p.shape().dims().len() != dims.len() || &p.shape().dims()[1..] != tail {
            return Err(TensorError::ShapeMismatch {
                op: "cat_dim0",
                lhs: first.shape().clone(),
                rhs: p.shape().clone(),
            });
        }
        d0 += p.shape().dims()[0];
        data.extend_from_slice(p.data());
    }
    dims[0] = d0;
    Tensor::from_vec(Shape::new(dims), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(dims, data.to_vec()).unwrap()
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[4.0, 3.0, 2.0, 1.0]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(sub(&a, &b).unwrap().data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(scale(&a, 2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_errors() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        assert!(add(&a, &b).is_err());
        assert!(mul(&a, &b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[3], &[1.0, 1.0, 1.0]);
        let b = t(&[3], &[1.0, 2.0, 3.0]);
        axpy(&mut a, 0.5, &b).unwrap();
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn matmul_known_product() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(matmul(&a, &b).unwrap().data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_folds_leading_dims() {
        let a = Tensor::ones([2, 3, 4]);
        let b = Tensor::ones([4, 5]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[6, 5]);
        assert!(c.data().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[2, 4], &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 2.0]);
        // Aᵀ·B via kernel vs via explicit transpose.
        let direct = matmul_at_b(&a, &b).unwrap();
        let explicit = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        assert_eq!(direct, explicit);
        // A·Bᵀ with B [k, n]: a [2,3] · (w [5,3])ᵀ = [2,5]
        let w = Tensor::rand_uniform([5, 3], -1.0, 1.0, &mut crate::rng::SplitMix64::new(1));
        let direct = matmul_a_bt(&a, &w).unwrap();
        let explicit = matmul(&a, &transpose2d(&w).unwrap()).unwrap();
        let diff = direct.max_abs_diff(&explicit).unwrap();
        assert!(diff < 1e-6, "diff {diff}");
    }

    #[test]
    fn add_bias_broadcasts_rows() {
        let a = Tensor::zeros([2, 3]);
        let bias = t(&[3], &[1.0, 2.0, 3.0]);
        let y = add_bias(&a, &bias).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(add_bias(&a, &Tensor::zeros([4])).is_err());
    }

    #[test]
    fn col_sum_matches_manual() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(col_sum(&a).unwrap().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_shift_invariant() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 1000.0, 1001.0, 1002.0]);
        let y = row_softmax(&a).unwrap();
        for r in 0..2 {
            let s: f32 = y.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Shifted rows produce identical distributions.
        for j in 0..3 {
            assert!((y.data()[j] - y.data()[3 + j]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = t(&[1, 4], &[0.3, -0.2, 0.8, 0.1]);
        let dy = t(&[1, 4], &[1.0, -0.5, 0.25, 2.0]);
        let y = row_softmax(&x).unwrap();
        let dx = row_softmax_backward(&y, &dy).unwrap();
        let eps = 1e-3;
        for j in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[j] += eps;
            let mut xm = x.clone();
            xm.data_mut()[j] -= eps;
            let yp = row_softmax(&xp).unwrap();
            let ym = row_softmax(&xm).unwrap();
            let mut fd = 0.0f32;
            for k in 0..4 {
                fd += dy.data()[k] * (yp.data()[k] - ym.data()[k]) / (2.0 * eps);
            }
            assert!(
                (fd - dx.data()[j]).abs() < 1e-3,
                "j={j} fd={fd} dx={}",
                dx.data()[j]
            );
        }
    }

    #[test]
    fn chunk_and_cat_roundtrip() {
        let a = Tensor::rand_uniform([4, 3], -1.0, 1.0, &mut crate::rng::SplitMix64::new(2));
        let parts = chunk_dim0(&a, 2).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].shape().dims(), &[2, 3]);
        let back = cat_dim0(&parts).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn chunk_rejects_indivisible() {
        let a = Tensor::zeros([5, 2]);
        assert!(chunk_dim0(&a, 2).is_err());
        assert!(chunk_dim0(&a, 0).is_err());
    }

    #[test]
    fn cat_rejects_ragged_tails() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        assert!(cat_dim0(&[a, b]).is_err());
        assert!(cat_dim0(&[]).is_err());
    }

    #[test]
    fn sum_and_mean() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sum(&a), 10.0);
        assert_eq!(mean(&a), 2.5);
    }
}
