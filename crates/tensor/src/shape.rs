//! Tensor shapes (row-major, contiguous).

use std::fmt;

/// A tensor shape: an ordered list of dimension extents.
///
/// Shapes are row-major; the last dimension is contiguous in memory.
/// A rank-0 shape (empty dims) denotes a scalar with one element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of dimension `i`, or `None` if out of range.
    pub fn dim(&self, i: usize) -> Option<usize> {
        self.dims.get(i).copied()
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.dims.len()];
        let mut acc = 1usize;
        for (stride, &dim) in strides.iter_mut().zip(self.dims.iter()).rev() {
            *stride = acc;
            acc *= dim;
        }
        strides
    }

    /// Interprets the shape as a matrix: all leading dimensions folded into
    /// rows, the last dimension as columns. A rank-0/rank-1 shape folds to a
    /// single row.
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.dims.split_last() {
            Some((&cols, rows)) => (rows.iter().product::<usize>().max(1), cols),
            None => (1, 1),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn numel_multiplies_dims() {
        assert_eq!(Shape::from([2, 3, 4]).numel(), 24);
    }

    #[test]
    fn zero_extent_dim_gives_zero_elements() {
        assert_eq!(Shape::from([2, 0, 4]).numel(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn as_matrix_folds_leading_dims() {
        assert_eq!(Shape::from([2, 3, 4]).as_matrix(), (6, 4));
        assert_eq!(Shape::from([7]).as_matrix(), (1, 7));
        assert_eq!(Shape::scalar().as_matrix(), (1, 1));
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
