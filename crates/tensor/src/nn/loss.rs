//! Loss functions: fused forward + gradient, since Harmony schedules the
//! loss as the final forward task whose backward seed is produced in place.

use crate::error::TensorError;
use crate::ops;
use crate::tensor::Tensor;
use crate::Result;

/// Softmax cross-entropy over the last dim of `logits` against integer
/// `targets` (one per folded row). Returns `(mean_loss, dlogits)` where
/// `dlogits` is already the gradient of the mean loss.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<(f32, Tensor)> {
    let (rows, classes) = logits.shape().as_matrix();
    if classes == 0 {
        return Err(TensorError::InvalidArgument {
            op: "cross_entropy",
            msg: "class dimension must be non-zero".to_string(),
        });
    }
    if targets.len() != rows {
        return Err(TensorError::InvalidArgument {
            op: "cross_entropy",
            msg: format!("{} targets for {} rows", targets.len(), rows),
        });
    }
    let probs = ops::row_softmax(logits)?;
    let mut loss = 0.0f64;
    let mut dlogits = probs.data().to_vec();
    for (r, &t) in targets.iter().enumerate() {
        if t >= classes {
            return Err(TensorError::IndexOutOfRange {
                op: "cross_entropy",
                index: t,
                bound: classes,
            });
        }
        let p = probs.data()[r * classes + t].max(f32::MIN_POSITIVE);
        loss -= (p as f64).ln();
        dlogits[r * classes + t] -= 1.0;
    }
    let inv = 1.0 / rows as f32;
    for d in dlogits.iter_mut() {
        *d *= inv;
    }
    Ok((
        (loss / rows as f64) as f32,
        Tensor::from_vec(logits.shape().clone(), dlogits)?,
    ))
}

/// Mean squared error `mean((pred - target)^2)`; returns `(loss, dpred)`.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    if pred.shape() != target.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "mse_loss",
            lhs: pred.shape().clone(),
            rhs: target.shape().clone(),
        });
    }
    let n = pred.numel().max(1) as f32;
    let mut loss = 0.0f64;
    let mut grad = Vec::with_capacity(pred.numel());
    for (&p, &t) in pred.data().iter().zip(target.data()) {
        let d = p - t;
        loss += (d * d) as f64;
        grad.push(2.0 * d / n);
    }
    Ok((
        (loss / n as f64) as f32,
        Tensor::from_vec(pred.shape().clone(), grad)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits over C classes → loss = ln(C).
        let logits = Tensor::zeros([2, 4]);
        let (loss, dl) = cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for r in 0..2 {
            let s: f32 = dl.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_confident_correct_is_near_zero() {
        let mut logits = Tensor::zeros([1, 3]);
        logits.data_mut()[1] = 20.0;
        let (loss, _) = cross_entropy(&logits, &[1]).unwrap();
        assert!(loss < 1e-4);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -0.3, 0.1, 1.0, 0.2, -0.7]).unwrap();
        let targets = [2usize, 0];
        let (_, dl) = cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3f32;
        for j in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[j] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[j] -= eps;
            let (loss_p, _) = cross_entropy(&lp, &targets).unwrap();
            let (loss_m, _) = cross_entropy(&lm, &targets).unwrap();
            let fd = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (fd - dl.data()[j]).abs() < 1e-3,
                "coord {j}: fd {fd} vs {}",
                dl.data()[j]
            );
        }
    }

    #[test]
    fn cross_entropy_validates_targets() {
        let logits = Tensor::zeros([2, 3]);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn mse_known_value_and_grad() {
        let pred = Tensor::from_vec([2], vec![1.0, 3.0]).unwrap();
        let target = Tensor::from_vec([2], vec![0.0, 1.0]).unwrap();
        let (loss, grad) = mse_loss(&pred, &target).unwrap();
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(grad.data(), &[1.0, 2.0]); // 2*d/n
        assert!(mse_loss(&pred, &Tensor::zeros([3])).is_err());
    }
}
