//! Layer normalisation over the last dimension.

use crate::error::TensorError;
use crate::nn::{Grads, Stash};
use crate::tensor::Tensor;
use crate::Result;

/// LayerNorm: per-row normalisation over the last dim, with learned scale
/// `gamma` and shift `beta`.
///
/// Parameters: `[gamma [d], beta [d]]`. Stash: `[x]` (mean/var are
/// recomputed in backward; cheaper than stashing them and matches the
/// paper's observation that running-state tensors are second-order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerNorm {
    /// Normalised (last) dimension size.
    pub dim: usize,
    /// Numerical-stability epsilon.
    pub eps_bits: u32,
}

impl LayerNorm {
    /// Creates a LayerNorm over `dim` features with the default epsilon.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            dim,
            eps_bits: 1e-5f32.to_bits(),
        }
    }

    fn eps(&self) -> f32 {
        f32::from_bits(self.eps_bits)
    }

    /// Initialises `gamma = 1`, `beta = 0`.
    pub fn init_params(&self) -> Vec<Tensor> {
        vec![Tensor::ones([self.dim]), Tensor::zeros([self.dim])]
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        2 * self.dim
    }

    fn check(&self, params: &[Tensor], x: &Tensor) -> Result<(usize, usize)> {
        if params.len() != 2 {
            return Err(TensorError::InvalidArgument {
                op: "layernorm",
                msg: format!("expected 2 params, got {}", params.len()),
            });
        }
        let (rows, d) = x.shape().as_matrix();
        if d != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "layernorm",
                lhs: x.shape().clone(),
                rhs: params[0].shape().clone(),
            });
        }
        Ok((rows, d))
    }

    /// Forward pass.
    pub fn forward(&self, params: &[Tensor], x: &Tensor) -> Result<(Tensor, Stash)> {
        let (rows, d) = self.check(params, x)?;
        let gamma = params[0].data();
        let beta = params[1].data();
        let mut out = vec![0.0f32; rows * d];
        for r in 0..rows {
            let row = &x.data()[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps()).sqrt();
            for (j, (&v, o)) in row.iter().zip(&mut out[r * d..(r + 1) * d]).enumerate() {
                *o = gamma[j] * (v - mean) * inv_std + beta[j];
            }
        }
        let y = Tensor::from_vec(x.shape().clone(), out)?;
        Ok((
            y,
            Stash {
                tensors: vec![x.clone()],
            },
        ))
    }

    /// Backward pass: returns `(dx, [dgamma, dbeta])`.
    pub fn backward(
        &self,
        params: &[Tensor],
        stash: &Stash,
        dy: &Tensor,
    ) -> Result<(Tensor, Grads)> {
        let x = stash.tensors.first().ok_or(TensorError::InvalidArgument {
            op: "layernorm backward",
            msg: "missing stashed input".to_string(),
        })?;
        let (rows, d) = self.check(params, x)?;
        if dy.shape() != x.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "layernorm backward",
                lhs: x.shape().clone(),
                rhs: dy.shape().clone(),
            });
        }
        let gamma = params[0].data();
        let mut dx = vec![0.0f32; rows * d];
        let mut dgamma = vec![0.0f32; d];
        let mut dbeta = vec![0.0f32; d];
        for r in 0..rows {
            let xrow = &x.data()[r * d..(r + 1) * d];
            let dyrow = &dy.data()[r * d..(r + 1) * d];
            let mean = xrow.iter().sum::<f32>() / d as f32;
            let var = xrow.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps()).sqrt();
            // xhat_j = (x_j - mean) * inv_std
            // dx = (gamma*dy - mean(gamma*dy) - xhat * mean(gamma*dy*xhat)) * inv_std
            let mut sum_gdy = 0.0f32;
            let mut sum_gdy_xhat = 0.0f32;
            for j in 0..d {
                let xhat = (xrow[j] - mean) * inv_std;
                let gdy = gamma[j] * dyrow[j];
                sum_gdy += gdy;
                sum_gdy_xhat += gdy * xhat;
                dgamma[j] += dyrow[j] * xhat;
                dbeta[j] += dyrow[j];
            }
            let m = d as f32;
            for j in 0..d {
                let xhat = (xrow[j] - mean) * inv_std;
                let gdy = gamma[j] * dyrow[j];
                dx[r * d + j] = (gdy - sum_gdy / m - xhat * sum_gdy_xhat / m) * inv_std;
            }
        }
        Ok((
            Tensor::from_vec(x.shape().clone(), dx)?,
            Grads {
                tensors: vec![
                    Tensor::from_vec([d], dgamma)?,
                    Tensor::from_vec([d], dbeta)?,
                ],
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck::check_input_grad;
    use crate::rng::SplitMix64;

    #[test]
    fn forward_normalises_rows() {
        let layer = LayerNorm::new(4);
        let params = layer.init_params();
        let x = Tensor::from_vec([2, 4], vec![1.0, 2.0, 3.0, 4.0, -2.0, 0.0, 2.0, 4.0]).unwrap();
        let (y, _) = layer.forward(&params, &x).unwrap();
        for r in 0..2 {
            let row = &y.data()[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let layer = LayerNorm::new(2);
        let mut params = layer.init_params();
        params[0] = Tensor::from_vec([2], vec![2.0, 2.0]).unwrap();
        params[1] = Tensor::from_vec([2], vec![1.0, 1.0]).unwrap();
        let x = Tensor::from_vec([1, 2], vec![-1.0, 1.0]).unwrap();
        let (y, _) = layer.forward(&params, &x).unwrap();
        // xhat = [-1, 1] (up to eps), so y ≈ [-1, 3].
        assert!((y.data()[0] + 1.0).abs() < 1e-2);
        assert!((y.data()[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let layer = LayerNorm::new(6);
        let mut rng = SplitMix64::new(21);
        let mut params = layer.init_params();
        params[0] = Tensor::randn([6], 1.0, &mut rng);
        params[1] = Tensor::randn([6], 0.5, &mut rng);
        let x = Tensor::randn([3, 6], 2.0, &mut rng);
        let dy = Tensor::randn([3, 6], 1.0, &mut rng);
        let (_, stash) = layer.forward(&params, &x).unwrap();
        let (dx, grads) = layer.backward(&params, &stash, &dy).unwrap();
        check_input_grad(
            &x,
            &dy,
            &dx,
            |x| layer.forward(&params, x).map(|(y, _)| y),
            3e-2,
        );
        // dgamma / dbeta finite difference.
        let eps = 1e-2f32;
        for (pi, g) in grads.tensors.iter().enumerate() {
            for j in 0..6 {
                let mut pp = params.clone();
                pp[pi].data_mut()[j] += eps;
                let mut pm = params.clone();
                pm[pi].data_mut()[j] -= eps;
                let (yp, _) = layer.forward(&pp, &x).unwrap();
                let (ym, _) = layer.forward(&pm, &x).unwrap();
                let mut fd = 0.0f32;
                for k in 0..yp.numel() {
                    fd += dy.data()[k] * (yp.data()[k] - ym.data()[k]) / (2.0 * eps);
                }
                assert!(
                    (fd - g.data()[j]).abs() < 3e-2,
                    "param {pi} coord {j}: fd {fd} vs {}",
                    g.data()[j]
                );
            }
        }
    }

    #[test]
    fn rejects_wrong_feature_dim() {
        let layer = LayerNorm::new(4);
        let params = layer.init_params();
        assert!(layer.forward(&params, &Tensor::zeros([2, 5])).is_err());
    }
}
