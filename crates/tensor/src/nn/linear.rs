//! Fully-connected (affine) layer.

use crate::error::TensorError;
use crate::nn::{Grads, Stash};
use crate::ops;
use crate::rng::SplitMix64;
use crate::tensor::Tensor;
use crate::Result;

/// `y = x · W + b` with `W: [in, out]`, `b: [out]`.
///
/// Parameters (in order): `[W]` or `[W, b]`.
/// Stash: `[x]` (needed for `dW = xᵀ · dy`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Linear {
    /// Input feature dimension.
    pub in_features: usize,
    /// Output feature dimension.
    pub out_features: usize,
    /// Whether a bias vector is learned.
    pub bias: bool,
}

impl Linear {
    /// Creates a linear layer description.
    pub fn new(in_features: usize, out_features: usize, bias: bool) -> Self {
        Linear {
            in_features,
            out_features,
            bias,
        }
    }

    /// Initialises parameters with Kaiming-style scaling.
    pub fn init_params(&self, rng: &mut SplitMix64) -> Vec<Tensor> {
        let std = (2.0 / self.in_features.max(1) as f32).sqrt();
        let w = Tensor::randn([self.in_features, self.out_features], std, rng);
        if self.bias {
            vec![w, Tensor::zeros([self.out_features])]
        } else {
            vec![w]
        }
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.in_features * self.out_features + if self.bias { self.out_features } else { 0 }
    }

    fn check_params(&self, params: &[Tensor]) -> Result<()> {
        let expected = if self.bias { 2 } else { 1 };
        if params.len() != expected {
            return Err(TensorError::InvalidArgument {
                op: "linear",
                msg: format!("expected {expected} params, got {}", params.len()),
            });
        }
        Ok(())
    }

    /// Forward pass. Accepts any input whose last dim is `in_features`;
    /// the output keeps leading dims with the last dim replaced by
    /// `out_features`.
    pub fn forward(&self, params: &[Tensor], x: &Tensor) -> Result<(Tensor, Stash)> {
        self.check_params(params)?;
        let mut y = ops::matmul(x, &params[0])?;
        if self.bias {
            y = ops::add_bias(&y, &params[1])?;
        }
        // Restore leading dims.
        let mut dims = x.shape().dims().to_vec();
        if let Some(last) = dims.last_mut() {
            *last = self.out_features;
        }
        let y = y.reshape(dims)?;
        Ok((
            y,
            Stash {
                tensors: vec![x.clone()],
            },
        ))
    }

    /// Backward pass: returns `(dx, grads)` with `grads = [dW]` or
    /// `[dW, db]`.
    pub fn backward(
        &self,
        params: &[Tensor],
        stash: &Stash,
        dy: &Tensor,
    ) -> Result<(Tensor, Grads)> {
        self.check_params(params)?;
        let x = stash.tensors.first().ok_or(TensorError::InvalidArgument {
            op: "linear backward",
            msg: "missing stashed input".to_string(),
        })?;
        let dw = ops::matmul_at_b(x, dy)?;
        // dx = dy · Wᵀ; matmul_a_bt takes W as stored ([in, out]).
        let dx = ops::matmul_a_bt(dy, &params[0])?.reshape(x.shape().dims().to_vec())?;
        let mut grads = vec![dw];
        if self.bias {
            grads.push(ops::col_sum(dy)?);
        }
        Ok((dx, Grads { tensors: grads }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck::check_input_grad;

    #[test]
    fn forward_shape_and_bias() {
        let layer = Linear::new(3, 2, true);
        let mut rng = SplitMix64::new(1);
        let params = layer.init_params(&mut rng);
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].shape().dims(), &[3, 2]);
        let x = Tensor::ones([4, 3]);
        let (y, stash) = layer.forward(&params, &x).unwrap();
        assert_eq!(y.shape().dims(), &[4, 2]);
        assert_eq!(stash.tensors[0], x);
    }

    #[test]
    fn forward_preserves_leading_dims() {
        let layer = Linear::new(3, 5, false);
        let mut rng = SplitMix64::new(2);
        let params = layer.init_params(&mut rng);
        let x = Tensor::ones([2, 4, 3]);
        let (y, _) = layer.forward(&params, &x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 4, 5]);
    }

    #[test]
    fn param_count_matches_init() {
        let layer = Linear::new(7, 3, true);
        let mut rng = SplitMix64::new(3);
        let params = layer.init_params(&mut rng);
        let total: usize = params.iter().map(Tensor::numel).sum();
        assert_eq!(total, layer.param_count());
    }

    #[test]
    fn backward_matches_finite_difference() {
        let layer = Linear::new(4, 3, true);
        let mut rng = SplitMix64::new(4);
        let params = layer.init_params(&mut rng);
        let x = Tensor::randn([2, 4], 1.0, &mut rng);
        let dy = Tensor::randn([2, 3], 1.0, &mut rng);
        let (_, stash) = layer.forward(&params, &x).unwrap();
        let (dx, grads) = layer.backward(&params, &stash, &dy).unwrap();
        assert_eq!(grads.tensors[0].shape().dims(), &[4, 3]);
        assert_eq!(grads.tensors[1].shape().dims(), &[3]);
        check_input_grad(
            &x,
            &dy,
            &dx,
            |x| layer.forward(&params, x).map(|(y, _)| y),
            1e-2,
        );
    }

    #[test]
    fn weight_grad_matches_finite_difference() {
        let layer = Linear::new(3, 2, false);
        let mut rng = SplitMix64::new(5);
        let params = layer.init_params(&mut rng);
        let x = Tensor::randn([4, 3], 1.0, &mut rng);
        let dy = Tensor::randn([4, 2], 1.0, &mut rng);
        let (_, stash) = layer.forward(&params, &x).unwrap();
        let (_, grads) = layer.backward(&params, &stash, &dy).unwrap();
        let eps = 1e-2f32;
        for j in 0..params[0].numel() {
            let mut pp = params.clone();
            pp[0].data_mut()[j] += eps;
            let mut pm = params.clone();
            pm[0].data_mut()[j] -= eps;
            let (yp, _) = layer.forward(&pp, &x).unwrap();
            let (ym, _) = layer.forward(&pm, &x).unwrap();
            let mut fd = 0.0f32;
            for k in 0..yp.numel() {
                fd += dy.data()[k] * (yp.data()[k] - ym.data()[k]) / (2.0 * eps);
            }
            assert!(
                (fd - grads.tensors[0].data()[j]).abs() < 1e-2,
                "coord {j}: fd {fd} vs analytic {}",
                grads.tensors[0].data()[j]
            );
        }
    }

    #[test]
    fn wrong_param_count_is_error() {
        let layer = Linear::new(3, 2, true);
        let x = Tensor::zeros([1, 3]);
        assert!(layer.forward(&[Tensor::zeros([3, 2])], &x).is_err());
    }
}
