//! Neural-network layers with *explicit* forward/backward kernels.
//!
//! Harmony decomposes a training step into per-layer forward, backward, and
//! update tasks (paper §3, Fig 5a). To make that decomposition executable,
//! every layer here is a pure function of named tensors:
//!
//! * **params** — the layer's weight tensors `W` (owned by the caller so the
//!   runtime can place/swap them);
//! * **stash** — tensors produced by forward that backward needs (the
//!   "stashed activations" of the paper);
//! * **grads** — per-parameter gradients `dW`, shape-aligned with params.
//!
//! The [`Layer`] enum dispatches over the concrete layer kinds; the Harmony
//! executor stores layers by value in the model description and owns all
//! tensor state externally.

mod activation;
mod attention;
mod conv;
mod embedding;
mod layer;
mod layernorm;
mod linear;
mod loss;

pub use activation::{Activation, ActivationKind};
pub use attention::MultiHeadAttention;
pub use conv::{Conv2d, Flatten, MaxPool2d};
pub use embedding::Embedding;
pub use layer::{Layer, LayerOutput};
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use loss::{cross_entropy, mse_loss};

use crate::tensor::Tensor;

/// Tensors a layer's forward pass stashes for its backward pass.
///
/// In the paper's swap model these are the `Stashed X` entries that the head
/// of a pipeline accumulates (the source of Fig 2(c)'s imbalance).
#[derive(Debug, Clone, Default)]
pub struct Stash {
    /// Stashed tensors, in layer-defined order.
    pub tensors: Vec<Tensor>,
}

impl Stash {
    /// Total byte footprint of the stash.
    pub fn size_bytes(&self) -> u64 {
        self.tensors.iter().map(Tensor::size_bytes).sum()
    }
}

/// Gradients for a layer's parameters, shape-aligned with the param list.
#[derive(Debug, Clone, Default)]
pub struct Grads {
    /// One gradient tensor per parameter tensor.
    pub tensors: Vec<Tensor>,
}

impl Grads {
    /// Accumulates `other` into `self` (`self += other`), element-wise per
    /// tensor. Used when summing gradients across microbatches.
    pub fn accumulate(&mut self, other: &Grads) -> crate::Result<()> {
        if self.tensors.is_empty() {
            self.tensors = other.tensors.clone();
            return Ok(());
        }
        for (a, b) in self.tensors.iter_mut().zip(&other.tensors) {
            crate::ops::axpy(a, 1.0, b)?;
        }
        Ok(())
    }

    /// Total byte footprint of the gradients.
    pub fn size_bytes(&self) -> u64 {
        self.tensors.iter().map(Tensor::size_bytes).sum()
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by the layer tests.

    use super::*;
    use crate::Result;

    /// Checks `d/dx [sum(dy ⊙ f(x))]` against the analytic `dx` returned by
    /// the layer backward, perturbing a sample of input coordinates.
    pub fn check_input_grad<F>(x: &Tensor, dy: &Tensor, dx: &Tensor, mut f: F, tol: f32)
    where
        F: FnMut(&Tensor) -> Result<Tensor>,
    {
        let eps = 1e-2f32;
        let n = x.numel();
        let step = (n / 16).max(1);
        for j in (0..n).step_by(step) {
            let mut xp = x.clone();
            xp.data_mut()[j] += eps;
            let mut xm = x.clone();
            xm.data_mut()[j] -= eps;
            let yp = f(&xp).unwrap();
            let ym = f(&xm).unwrap();
            let mut fd = 0.0f64;
            for k in 0..yp.numel() {
                fd +=
                    dy.data()[k] as f64 * (yp.data()[k] - ym.data()[k]) as f64 / (2.0 * eps as f64);
            }
            let analytic = dx.data()[j] as f64;
            let denom = fd.abs().max(analytic.abs()).max(1.0);
            assert!(
                (fd - analytic).abs() / denom < tol as f64,
                "coord {j}: finite-diff {fd} vs analytic {analytic}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stash_size_sums_tensors() {
        let stash = Stash {
            tensors: vec![Tensor::zeros([2, 2]), Tensor::zeros([3])],
        };
        assert_eq!(stash.size_bytes(), (4 + 3) * 4);
    }

    #[test]
    fn grads_accumulate_adds_elementwise() {
        let mut g = Grads {
            tensors: vec![Tensor::full([2], 1.0)],
        };
        let h = Grads {
            tensors: vec![Tensor::full([2], 2.0)],
        };
        g.accumulate(&h).unwrap();
        assert_eq!(g.tensors[0].data(), &[3.0, 3.0]);
    }

    #[test]
    fn grads_accumulate_into_empty_clones() {
        let mut g = Grads::default();
        let h = Grads {
            tensors: vec![Tensor::full([2], 2.0)],
        };
        g.accumulate(&h).unwrap();
        assert_eq!(g.tensors[0].data(), &[2.0, 2.0]);
    }
}
