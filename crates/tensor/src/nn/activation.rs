//! Pointwise activation layers.

use crate::error::TensorError;
use crate::nn::{Grads, Stash};
use crate::tensor::Tensor;
use crate::Result;

/// Supported pointwise nonlinearities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// Gaussian error linear unit, tanh approximation (as in BERT/GPT).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
}

/// A parameter-free pointwise activation.
///
/// Parameters: none. Stash: `[x]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    /// Which nonlinearity.
    pub kind: ActivationKind,
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    let inner = GELU_C * (x + GELU_A * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
}

impl Activation {
    /// Creates an activation layer.
    pub fn new(kind: ActivationKind) -> Self {
        Activation { kind }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, Stash)> {
        let f = match self.kind {
            ActivationKind::Relu => |v: f32| v.max(0.0),
            ActivationKind::Gelu => gelu,
            ActivationKind::Tanh => f32::tanh,
        };
        let data = x.data().iter().map(|&v| f(v)).collect();
        let y = Tensor::from_vec(x.shape().clone(), data)?;
        Ok((
            y,
            Stash {
                tensors: vec![x.clone()],
            },
        ))
    }

    /// Backward pass: `dx = dy ⊙ f'(x)`.
    pub fn backward(&self, stash: &Stash, dy: &Tensor) -> Result<(Tensor, Grads)> {
        let x = stash.tensors.first().ok_or(TensorError::InvalidArgument {
            op: "activation backward",
            msg: "missing stashed input".to_string(),
        })?;
        if x.shape() != dy.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "activation backward",
                lhs: x.shape().clone(),
                rhs: dy.shape().clone(),
            });
        }
        let g = match self.kind {
            ActivationKind::Relu => |v: f32| if v > 0.0 { 1.0 } else { 0.0 },
            ActivationKind::Gelu => gelu_grad,
            ActivationKind::Tanh => |v: f32| {
                let t = v.tanh();
                1.0 - t * t
            },
        };
        let data = x
            .data()
            .iter()
            .zip(dy.data())
            .map(|(&xv, &dv)| dv * g(xv))
            .collect();
        let dx = Tensor::from_vec(x.shape().clone(), data)?;
        Ok((dx, Grads::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck::check_input_grad;
    use crate::rng::SplitMix64;

    #[test]
    fn relu_clamps_negatives() {
        let layer = Activation::new(ActivationKind::Relu);
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let (y, _) = layer.forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0; GELU(x) ≈ x for large x; GELU(-large) ≈ 0.
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
        // Reference value GELU(1.0) ≈ 0.8412 (tanh approximation).
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn backward_matches_finite_difference_all_kinds() {
        let mut rng = SplitMix64::new(11);
        for kind in [
            ActivationKind::Relu,
            ActivationKind::Gelu,
            ActivationKind::Tanh,
        ] {
            let layer = Activation::new(kind);
            // Keep values away from ReLU's kink at 0.
            let x = Tensor::from_vec(
                [8],
                (0..8)
                    .map(|_| {
                        let v = rng.uniform(-2.0, 2.0);
                        if v.abs() < 0.1 {
                            0.5
                        } else {
                            v
                        }
                    })
                    .collect(),
            )
            .unwrap();
            let dy = Tensor::randn([8], 1.0, &mut rng);
            let (_, stash) = layer.forward(&x).unwrap();
            let (dx, grads) = layer.backward(&stash, &dy).unwrap();
            assert!(grads.tensors.is_empty());
            check_input_grad(&x, &dy, &dx, |x| layer.forward(x).map(|(y, _)| y), 2e-2);
        }
    }

    #[test]
    fn backward_rejects_mismatched_dy() {
        let layer = Activation::new(ActivationKind::Relu);
        let x = Tensor::zeros([3]);
        let (_, stash) = layer.forward(&x).unwrap();
        assert!(layer.backward(&stash, &Tensor::zeros([4])).is_err());
    }
}
