//! Token embedding lookup table.

use crate::error::TensorError;
use crate::nn::{Grads, Stash};
use crate::rng::SplitMix64;
use crate::tensor::Tensor;
use crate::Result;

/// Embedding table: maps integer token ids to `dim`-dimensional rows of a
/// `[vocab, dim]` weight matrix.
///
/// Token ids arrive as an f32 tensor (any shape) whose entries must be
/// non-negative integers below `vocab` — this keeps the executor's tensor
/// universe homogeneous, matching how Harmony treats all tensors uniformly
/// in its swap model.
///
/// Parameters: `[W [vocab, dim]]`. Stash: `[ids]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Embedding {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl Embedding {
    /// Creates an embedding description.
    pub fn new(vocab: usize, dim: usize) -> Self {
        Embedding { vocab, dim }
    }

    /// Initialises the table with small normal entries.
    pub fn init_params(&self, rng: &mut SplitMix64) -> Vec<Tensor> {
        vec![Tensor::randn([self.vocab, self.dim], 0.02, rng)]
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.vocab * self.dim
    }

    fn id_at(&self, ids: &Tensor, i: usize) -> Result<usize> {
        let raw = ids.data()[i];
        let id = raw as usize;
        if raw < 0.0 || raw.fract() != 0.0 || id >= self.vocab {
            return Err(TensorError::IndexOutOfRange {
                op: "embedding",
                index: id,
                bound: self.vocab,
            });
        }
        Ok(id)
    }

    /// Forward: output shape is `ids.shape() + [dim]`.
    pub fn forward(&self, params: &[Tensor], ids: &Tensor) -> Result<(Tensor, Stash)> {
        let w = params.first().ok_or(TensorError::InvalidArgument {
            op: "embedding",
            msg: "missing weight".to_string(),
        })?;
        let mut out = Vec::with_capacity(ids.numel() * self.dim);
        for i in 0..ids.numel() {
            let id = self.id_at(ids, i)?;
            out.extend_from_slice(&w.data()[id * self.dim..(id + 1) * self.dim]);
        }
        let mut dims = ids.shape().dims().to_vec();
        dims.push(self.dim);
        let y = Tensor::from_vec(dims, out)?;
        Ok((
            y,
            Stash {
                tensors: vec![ids.clone()],
            },
        ))
    }

    /// Backward: scatters `dy` rows into `dW`; `dx` is a zero tensor shaped
    /// like the ids (ids are not differentiable, but a placeholder keeps the
    /// task-graph dataflow uniform).
    pub fn backward(
        &self,
        _params: &[Tensor],
        stash: &Stash,
        dy: &Tensor,
    ) -> Result<(Tensor, Grads)> {
        let ids = stash.tensors.first().ok_or(TensorError::InvalidArgument {
            op: "embedding backward",
            msg: "missing stashed ids".to_string(),
        })?;
        if dy.numel() != ids.numel() * self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "embedding backward",
                lhs: ids.shape().clone(),
                rhs: dy.shape().clone(),
            });
        }
        let mut dw = vec![0.0f32; self.vocab * self.dim];
        for i in 0..ids.numel() {
            let id = self.id_at(ids, i)?;
            for j in 0..self.dim {
                dw[id * self.dim + j] += dy.data()[i * self.dim + j];
            }
        }
        Ok((
            Tensor::zeros(ids.shape().clone()),
            Grads {
                tensors: vec![Tensor::from_vec([self.vocab, self.dim], dw)?],
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_looks_up_rows() {
        let layer = Embedding::new(3, 2);
        let w = Tensor::from_vec([3, 2], vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1]).unwrap();
        let ids = Tensor::from_vec([2, 2], vec![2.0, 0.0, 1.0, 2.0]).unwrap();
        let (y, _) = layer.forward(&[w], &ids).unwrap();
        assert_eq!(y.shape().dims(), &[2, 2, 2]);
        assert_eq!(y.data(), &[2.0, 2.1, 0.0, 0.1, 1.0, 1.1, 2.0, 2.1]);
    }

    #[test]
    fn forward_rejects_bad_ids() {
        let layer = Embedding::new(3, 2);
        let w = Tensor::zeros([3, 2]);
        for bad in [3.0f32, -1.0, 0.5] {
            let ids = Tensor::from_vec([1], vec![bad]).unwrap();
            assert!(
                layer.forward(std::slice::from_ref(&w), &ids).is_err(),
                "id {bad}"
            );
        }
    }

    #[test]
    fn backward_scatters_and_accumulates_duplicates() {
        let layer = Embedding::new(3, 2);
        let w = Tensor::zeros([3, 2]);
        let ids = Tensor::from_vec([3], vec![1.0, 1.0, 0.0]).unwrap();
        let (_, stash) = layer.forward(std::slice::from_ref(&w), &ids).unwrap();
        let dy = Tensor::from_vec([3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let (dx, grads) = layer.backward(&[w], &stash, &dy).unwrap();
        assert_eq!(dx.shape().dims(), &[3]);
        // Row 1 gets both microgradients: [1+3, 2+4] = [4, 6].
        assert_eq!(grads.tensors[0].data(), &[5.0, 6.0, 4.0, 6.0, 0.0, 0.0]);
    }

    #[test]
    fn param_count() {
        assert_eq!(Embedding::new(100, 16).param_count(), 1600);
    }
}
