//! Convolutional layers: Conv2d, MaxPool2d, Flatten.
//!
//! Inputs are rank-4 `[batch, channels, height, width]`. Kernels are
//! deliberately naive loops — auditable and fast enough for the
//! functional-mode tests that train LeNet on synthetic digits.

use crate::error::TensorError;
use crate::nn::{Grads, Stash};
use crate::rng::SplitMix64;
use crate::tensor::Tensor;
use crate::Result;

fn dims4(op: &'static str, x: &Tensor) -> Result<(usize, usize, usize, usize)> {
    match x.shape().dims() {
        &[b, c, h, w] => Ok((b, c, h, w)),
        _ => Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: x.shape().rank(),
        }),
    }
}

/// 2-D convolution, valid padding.
///
/// Parameters: `[W [cout, cin·k·k], b [cout]]`. Stash: `[x]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2d {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Square kernel size.
    pub k: usize,
    /// Stride (both dims).
    pub stride: usize,
}

impl Conv2d {
    /// Creates a convolution description; errors on zero-size parameters.
    pub fn new(cin: usize, cout: usize, k: usize, stride: usize) -> Result<Self> {
        if cin == 0 || cout == 0 || k == 0 || stride == 0 {
            return Err(TensorError::InvalidArgument {
                op: "conv2d",
                msg: format!("cin={cin}, cout={cout}, k={k}, stride={stride} must be positive"),
            });
        }
        Ok(Conv2d {
            cin,
            cout,
            k,
            stride,
        })
    }

    /// Kaiming-style initialisation.
    pub fn init_params(&self, rng: &mut SplitMix64) -> Vec<Tensor> {
        let fan_in = (self.cin * self.k * self.k).max(1);
        let std = (2.0 / fan_in as f32).sqrt();
        vec![
            Tensor::randn([self.cout, self.cin * self.k * self.k], std, rng),
            Tensor::zeros([self.cout]),
        ]
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.cout * self.cin * self.k * self.k + self.cout
    }

    fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if h < self.k || w < self.k {
            return Err(TensorError::InvalidArgument {
                op: "conv2d",
                msg: format!("input {h}×{w} smaller than kernel {0}×{0}", self.k),
            });
        }
        Ok((
            (h - self.k) / self.stride + 1,
            (w - self.k) / self.stride + 1,
        ))
    }

    /// Forward pass.
    pub fn forward(&self, params: &[Tensor], x: &Tensor) -> Result<(Tensor, Stash)> {
        if params.len() != 2 {
            return Err(TensorError::InvalidArgument {
                op: "conv2d",
                msg: format!("expected 2 params, got {}", params.len()),
            });
        }
        let (b, c, h, w) = dims4("conv2d", x)?;
        if c != self.cin {
            return Err(TensorError::InvalidArgument {
                op: "conv2d",
                msg: format!("expected {} input channels, got {c}", self.cin),
            });
        }
        let (oh, ow) = self.out_hw(h, w)?;
        let wd = params[0].data();
        let bd = params[1].data();
        let xd = x.data();
        let mut out = vec![0.0f32; b * self.cout * oh * ow];
        let ksq = self.k * self.k;
        for bi in 0..b {
            for co in 0..self.cout {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bd[co];
                        let iy0 = oy * self.stride;
                        let ix0 = ox * self.stride;
                        for ci in 0..self.cin {
                            let wbase = co * self.cin * ksq + ci * ksq;
                            let xbase = ((bi * c + ci) * h + iy0) * w + ix0;
                            for ky in 0..self.k {
                                for kx in 0..self.k {
                                    acc += wd[wbase + ky * self.k + kx] * xd[xbase + ky * w + kx];
                                }
                            }
                        }
                        out[((bi * self.cout + co) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        Ok((
            Tensor::from_vec([b, self.cout, oh, ow], out)?,
            Stash {
                tensors: vec![x.clone()],
            },
        ))
    }

    /// Backward pass: `(dx, [dW, db])`.
    pub fn backward(
        &self,
        params: &[Tensor],
        stash: &Stash,
        dy: &Tensor,
    ) -> Result<(Tensor, Grads)> {
        let x = stash.tensors.first().ok_or(TensorError::InvalidArgument {
            op: "conv2d backward",
            msg: "missing stashed input".to_string(),
        })?;
        let (b, c, h, w) = dims4("conv2d backward", x)?;
        let (oh, ow) = self.out_hw(h, w)?;
        let (db_, dc, dh, dw_dim) = dims4("conv2d backward", dy)?;
        if (db_, dc, dh, dw_dim) != (b, self.cout, oh, ow) {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d backward",
                lhs: x.shape().clone(),
                rhs: dy.shape().clone(),
            });
        }
        let wd = params[0].data();
        let xd = x.data();
        let dyd = dy.data();
        let ksq = self.k * self.k;
        let mut dx = vec![0.0f32; xd.len()];
        let mut dwt = vec![0.0f32; wd.len()];
        let mut dbias = vec![0.0f32; self.cout];
        for bi in 0..b {
            for co in 0..self.cout {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = dyd[((bi * self.cout + co) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        dbias[co] += g;
                        let iy0 = oy * self.stride;
                        let ix0 = ox * self.stride;
                        for ci in 0..self.cin {
                            let wbase = co * self.cin * ksq + ci * ksq;
                            let xbase = ((bi * c + ci) * h + iy0) * w + ix0;
                            for ky in 0..self.k {
                                for kx in 0..self.k {
                                    dwt[wbase + ky * self.k + kx] += g * xd[xbase + ky * w + kx];
                                    dx[xbase + ky * w + kx] += g * wd[wbase + ky * self.k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok((
            Tensor::from_vec(x.shape().clone(), dx)?,
            Grads {
                tensors: vec![
                    Tensor::from_vec(params[0].shape().clone(), dwt)?,
                    Tensor::from_vec([self.cout], dbias)?,
                ],
            },
        ))
    }
}

/// Max pooling with square window `k` and stride `k` (non-overlapping).
///
/// Parameters: none. Stash: `[x, argmax]` where argmax holds the flat
/// input index (as f32) each output element was taken from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPool2d {
    /// Window/stride size.
    pub k: usize,
}

impl MaxPool2d {
    /// Creates a pooling description.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(TensorError::InvalidArgument {
                op: "maxpool2d",
                msg: "window must be positive".to_string(),
            });
        }
        Ok(MaxPool2d { k })
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, Stash)> {
        let (b, c, h, w) = dims4("maxpool2d", x)?;
        let (oh, ow) = (h / self.k, w / self.k);
        if oh == 0 || ow == 0 {
            return Err(TensorError::InvalidArgument {
                op: "maxpool2d",
                msg: format!("input {h}×{w} smaller than window {}", self.k),
            });
        }
        let xd = x.data();
        let mut out = vec![0.0f32; b * c * oh * ow];
        let mut arg = vec![0.0f32; b * c * oh * ow];
        for bi in 0..b {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let idx =
                                    ((bi * c + ci) * h + oy * self.k + ky) * w + ox * self.k + kx;
                                if xd[idx] > best {
                                    best = xd[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((bi * c + ci) * oh + oy) * ow + ox;
                        out[o] = best;
                        arg[o] = best_idx as f32;
                    }
                }
            }
        }
        Ok((
            Tensor::from_vec([b, c, oh, ow], out)?,
            Stash {
                tensors: vec![x.clone(), Tensor::from_vec([b, c, oh, ow], arg)?],
            },
        ))
    }

    /// Backward pass: routes each upstream gradient to its argmax source.
    pub fn backward(&self, stash: &Stash, dy: &Tensor) -> Result<(Tensor, Grads)> {
        let [x, arg] = match stash.tensors.as_slice() {
            [a, b] => [a, b],
            _ => {
                return Err(TensorError::InvalidArgument {
                    op: "maxpool2d backward",
                    msg: "expected stash [x, argmax]".to_string(),
                })
            }
        };
        if dy.shape() != arg.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "maxpool2d backward",
                lhs: arg.shape().clone(),
                rhs: dy.shape().clone(),
            });
        }
        let mut dx = vec![0.0f32; x.numel()];
        for (i, &g) in dy.data().iter().enumerate() {
            let src = arg.data()[i] as usize;
            if src >= dx.len() {
                return Err(TensorError::IndexOutOfRange {
                    op: "maxpool2d backward",
                    index: src,
                    bound: dx.len(),
                });
            }
            dx[src] += g;
        }
        Ok((Tensor::from_vec(x.shape().clone(), dx)?, Grads::default()))
    }
}

/// Flattens `[b, ...]` to `[b, prod(...)]` (and reshapes gradients back).
///
/// Parameters: none. Stash: `[shape witness]` (a zero-sized record of the
/// original shape, kept as a 1-element tensor per trailing dim count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flatten;

impl Flatten {
    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, Stash)> {
        let dims = x.shape().dims();
        let b = *dims.first().ok_or(TensorError::RankMismatch {
            op: "flatten",
            expected: 2,
            actual: 0,
        })?;
        let rest: usize = dims[1..].iter().product();
        let shape_witness =
            Tensor::from_vec([dims.len()], dims.iter().map(|&d| d as f32).collect())?;
        Ok((
            x.clone().reshape([b, rest])?,
            Stash {
                tensors: vec![shape_witness],
            },
        ))
    }

    /// Backward pass: reshape `dy` to the stashed original shape.
    pub fn backward(&self, stash: &Stash, dy: &Tensor) -> Result<(Tensor, Grads)> {
        let witness = stash.tensors.first().ok_or(TensorError::InvalidArgument {
            op: "flatten backward",
            msg: "missing shape witness".to_string(),
        })?;
        let dims: Vec<usize> = witness.data().iter().map(|&d| d as usize).collect();
        Ok((dy.clone().reshape(dims)?, Grads::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck::check_input_grad;

    #[test]
    fn conv_known_values() {
        // 1×1×3×3 input, 1 output channel, 2×2 kernel of ones, stride 1:
        // each output = sum of the 2×2 window.
        let conv = Conv2d::new(1, 1, 2, 1).unwrap();
        let params = vec![Tensor::ones([1, 4]), Tensor::zeros([1])];
        let x = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let (y, _) = conv.forward(&params, &x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_stride_and_bias() {
        let conv = Conv2d::new(1, 2, 2, 2).unwrap();
        let mut rng = SplitMix64::new(1);
        let mut params = conv.init_params(&mut rng);
        params[1] = Tensor::from_vec([2], vec![1.0, -1.0]).unwrap();
        let x = Tensor::ones([1, 1, 4, 4]);
        let (y, _) = conv.forward(&params, &x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 2, 2]);
        let wsum0: f32 = params[0].data()[0..4].iter().sum();
        assert!((y.data()[0] - (wsum0 + 1.0)).abs() < 1e-5);
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        let conv = Conv2d::new(2, 3, 2, 1).unwrap();
        let mut rng = SplitMix64::new(2);
        let params = conv.init_params(&mut rng);
        let x = Tensor::randn([2, 2, 4, 4], 1.0, &mut rng);
        let (y, stash) = conv.forward(&params, &x).unwrap();
        let dy = Tensor::randn(y.shape().clone(), 1.0, &mut rng);
        let (dx, grads) = conv.backward(&params, &stash, &dy).unwrap();
        check_input_grad(
            &x,
            &dy,
            &dx,
            |x| conv.forward(&params, x).map(|(y, _)| y),
            3e-2,
        );
        // Weight gradient on a few coordinates.
        let eps = 1e-2f32;
        for j in [0usize, 7, 15] {
            let mut pp = params.clone();
            pp[0].data_mut()[j] += eps;
            let mut pm = params.clone();
            pm[0].data_mut()[j] -= eps;
            let (yp, _) = conv.forward(&pp, &x).unwrap();
            let (ym, _) = conv.forward(&pm, &x).unwrap();
            let mut fd = 0.0f32;
            for k in 0..yp.numel() {
                fd += dy.data()[k] * (yp.data()[k] - ym.data()[k]) / (2.0 * eps);
            }
            let analytic = grads.tensors[0].data()[j];
            assert!((fd - analytic).abs() < 3e-2, "w[{j}]: {fd} vs {analytic}");
        }
    }

    #[test]
    fn conv_rejects_bad_shapes() {
        let conv = Conv2d::new(2, 1, 3, 1).unwrap();
        let mut rng = SplitMix64::new(3);
        let params = conv.init_params(&mut rng);
        assert!(conv.forward(&params, &Tensor::zeros([1, 3, 5, 5])).is_err()); // wrong cin
        assert!(conv.forward(&params, &Tensor::zeros([1, 2, 2, 2])).is_err()); // too small
        assert!(conv.forward(&params, &Tensor::zeros([4, 4])).is_err()); // wrong rank
        assert!(Conv2d::new(0, 1, 1, 1).is_err());
    }

    #[test]
    fn maxpool_takes_window_maxima() {
        let pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let (y, _) = pool.forward(&x).unwrap();
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let (_, stash) = pool.forward(&x).unwrap();
        let dy = Tensor::from_vec([1, 1, 1, 1], vec![5.0]).unwrap();
        let (dx, _) = pool.backward(&stash, &dy).unwrap();
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_gradcheck_away_from_ties() {
        let pool = MaxPool2d::new(2).unwrap();
        let mut rng = SplitMix64::new(5);
        let x = Tensor::randn([1, 2, 4, 4], 1.0, &mut rng);
        let (y, stash) = pool.forward(&x).unwrap();
        let dy = Tensor::randn(y.shape().clone(), 1.0, &mut rng);
        let (dx, _) = pool.backward(&stash, &dy).unwrap();
        check_input_grad(&x, &dy, &dx, |x| pool.forward(x).map(|(y, _)| y), 3e-2);
    }

    #[test]
    fn flatten_roundtrips_gradients() {
        let flat = Flatten;
        let mut rng = SplitMix64::new(6);
        let x = Tensor::randn([2, 3, 4, 5], 1.0, &mut rng);
        let (y, stash) = flat.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 60]);
        let dy = Tensor::randn([2, 60], 1.0, &mut rng);
        let (dx, _) = flat.backward(&stash, &dy).unwrap();
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dx.data(), dy.data());
    }
}
