//! Multi-head self-attention with full analytic backward.

use crate::error::TensorError;
use crate::nn::{Grads, Stash};
use crate::ops;
use crate::rng::SplitMix64;
use crate::tensor::Tensor;
use crate::Result;

/// Multi-head self-attention over inputs of shape `[batch, seq, dim]`.
///
/// A single fused QKV projection followed by per-head scaled-dot-product
/// attention and an output projection, optionally causally masked (GPT-style
/// decoders set `causal = true`, BERT-style encoders `false`).
///
/// Parameters (in order): `[Wqkv [dim, 3·dim], bqkv [3·dim], Wo [dim, dim],
/// bo [dim]]`.
/// Stash: `[x, probs [batch, heads, seq, seq], ctx [batch, seq, dim]]` — the
/// attention-probability stash is what makes attention layers
/// memory-hungry, and is part of why the paper's pipeline head stage
/// (which stashes the most forward state) becomes the swap bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiHeadAttention {
    /// Model (feature) dimension.
    pub dim: usize,
    /// Number of attention heads (`dim % heads == 0`).
    pub heads: usize,
    /// Whether to apply a causal (lower-triangular) mask.
    pub causal: bool,
}

impl MultiHeadAttention {
    /// Creates an attention layer description; errors if `dim` is not a
    /// multiple of `heads`.
    pub fn new(dim: usize, heads: usize, causal: bool) -> Result<Self> {
        if heads == 0 || !dim.is_multiple_of(heads) {
            return Err(TensorError::InvalidArgument {
                op: "attention",
                msg: format!("dim {dim} must be a positive multiple of heads {heads}"),
            });
        }
        Ok(MultiHeadAttention { dim, heads, causal })
    }

    /// Initialises the four parameter tensors.
    pub fn init_params(&self, rng: &mut SplitMix64) -> Vec<Tensor> {
        let std = (1.0 / self.dim as f32).sqrt();
        vec![
            Tensor::randn([self.dim, 3 * self.dim], std, rng),
            Tensor::zeros([3 * self.dim]),
            Tensor::randn([self.dim, self.dim], std, rng),
            Tensor::zeros([self.dim]),
        ]
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.dim * 3 * self.dim + 3 * self.dim + self.dim * self.dim + self.dim
    }

    fn dims_of(&self, x: &Tensor) -> Result<(usize, usize)> {
        let dims = x.shape().dims();
        if dims.len() != 3 || dims[2] != self.dim {
            return Err(TensorError::InvalidArgument {
                op: "attention",
                msg: format!(
                    "input must be [batch, seq, {}], got {}",
                    self.dim,
                    x.shape()
                ),
            });
        }
        Ok((dims[0], dims[1]))
    }

    fn check_params(&self, params: &[Tensor]) -> Result<()> {
        if params.len() != 4 {
            return Err(TensorError::InvalidArgument {
                op: "attention",
                msg: format!("expected 4 params, got {}", params.len()),
            });
        }
        Ok(())
    }

    /// Head-size.
    fn hd(&self) -> usize {
        self.dim / self.heads
    }

    /// Copies head `h` of token `s` from a `[., 3·dim]` QKV row into `dst`.
    /// `which`: 0 = Q, 1 = K, 2 = V.
    fn head_slice<'a>(&self, qkv_row: &'a [f32], which: usize, h: usize) -> &'a [f32] {
        let hd = self.hd();
        let base = which * self.dim + h * hd;
        &qkv_row[base..base + hd]
    }

    /// Forward pass.
    pub fn forward(&self, params: &[Tensor], x: &Tensor) -> Result<(Tensor, Stash)> {
        self.check_params(params)?;
        let (b, s) = self.dims_of(x)?;
        let (h, hd) = (self.heads, self.hd());
        let scale = 1.0 / (hd as f32).sqrt();

        let qkv = ops::add_bias(&ops::matmul(x, &params[0])?, &params[1])?; // [b*s, 3d]
        let qkvd = qkv.data();

        let mut probs = vec![0.0f32; b * h * s * s];
        let mut ctx = vec![0.0f32; b * s * self.dim];
        for bi in 0..b {
            for hi in 0..h {
                // scores[s, s] then softmax row-wise into `probs`.
                for si in 0..s {
                    let qrow = self.head_slice(&qkvd[(bi * s + si) * 3 * self.dim..], 0, hi);
                    let prow_base = ((bi * h + hi) * s + si) * s;
                    let limit = if self.causal { si + 1 } else { s };
                    let mut max = f32::NEG_INFINITY;
                    for sj in 0..limit {
                        let krow = self.head_slice(&qkvd[(bi * s + sj) * 3 * self.dim..], 1, hi);
                        let dot: f32 = qrow.iter().zip(krow).map(|(a, c)| a * c).sum();
                        let v = dot * scale;
                        probs[prow_base + sj] = v;
                        max = max.max(v);
                    }
                    let mut denom = 0.0f32;
                    for sj in 0..limit {
                        let e = (probs[prow_base + sj] - max).exp();
                        probs[prow_base + sj] = e;
                        denom += e;
                    }
                    for sj in 0..limit {
                        probs[prow_base + sj] /= denom;
                    }
                    // masked tail stays exactly 0 for causal attention
                    for p in probs[prow_base + limit..prow_base + s].iter_mut() {
                        *p = 0.0;
                    }
                    // ctx[si, head hi] = Σ_sj P[si, sj] · V[sj]
                    let ctx_base = (bi * s + si) * self.dim + hi * hd;
                    for sj in 0..limit {
                        let p = probs[prow_base + sj];
                        if p == 0.0 {
                            continue;
                        }
                        let vrow = self.head_slice(&qkvd[(bi * s + sj) * 3 * self.dim..], 2, hi);
                        for (o, &vv) in ctx[ctx_base..ctx_base + hd].iter_mut().zip(vrow) {
                            *o += p * vv;
                        }
                    }
                }
            }
        }
        let ctx_t = Tensor::from_vec([b, s, self.dim], ctx)?;
        let y = ops::add_bias(&ops::matmul(&ctx_t, &params[2])?, &params[3])?
            .reshape([b, s, self.dim])?;
        let probs_t = Tensor::from_vec([b, h, s, s], probs)?;
        Ok((
            y,
            Stash {
                tensors: vec![x.clone(), probs_t, ctx_t],
            },
        ))
    }

    /// Backward pass: returns `(dx, [dWqkv, dbqkv, dWo, dbo])`.
    pub fn backward(
        &self,
        params: &[Tensor],
        stash: &Stash,
        dy: &Tensor,
    ) -> Result<(Tensor, Grads)> {
        self.check_params(params)?;
        let [x, probs, ctx] = match stash.tensors.as_slice() {
            [a, b, c] => [a, b, c],
            _ => {
                return Err(TensorError::InvalidArgument {
                    op: "attention backward",
                    msg: "expected stash [x, probs, ctx]".to_string(),
                })
            }
        };
        let (b, s) = self.dims_of(x)?;
        let (h, hd) = (self.heads, self.hd());
        let scale = 1.0 / (hd as f32).sqrt();

        // Output projection backward.
        let dwo = ops::matmul_at_b(ctx, dy)?;
        let dbo = ops::col_sum(dy)?;
        let dctx = ops::matmul_a_bt(dy, &params[2])?; // dy · Woᵀ → [b*s, d]
        let dctxd = dctx.data();

        // Recompute QKV (cheaper to recompute than to stash: the paper's
        // recompute-vs-stash trade-off, §4).
        let qkv = ops::add_bias(&ops::matmul(x, &params[0])?, &params[1])?;
        let qkvd = qkv.data();
        let probsd = probs.data();

        let mut dqkv = vec![0.0f32; b * s * 3 * self.dim];
        for bi in 0..b {
            for hi in 0..h {
                for si in 0..s {
                    let prow_base = ((bi * h + hi) * s + si) * s;
                    let limit = if self.causal { si + 1 } else { s };
                    let dctx_row = &dctxd[(bi * s + si) * self.dim + hi * hd..][..hd];
                    // dP[si, sj] = dctx_row · V[sj]
                    let mut dp = vec![0.0f32; s];
                    for (sj, dpv) in dp.iter_mut().enumerate().take(limit) {
                        let vrow = self.head_slice(&qkvd[(bi * s + sj) * 3 * self.dim..], 2, hi);
                        *dpv = dctx_row.iter().zip(vrow).map(|(a, c)| a * c).sum();
                        // dV[sj] += P[si, sj] * dctx_row
                        let p = probsd[prow_base + sj];
                        if p != 0.0 {
                            let dv_base = (bi * s + sj) * 3 * self.dim + 2 * self.dim + hi * hd;
                            for (o, &dc) in dqkv[dv_base..dv_base + hd].iter_mut().zip(dctx_row) {
                                *o += p * dc;
                            }
                        }
                    }
                    // Softmax backward on the row: ds = P ⊙ (dP − Σ P·dP).
                    let prow = &probsd[prow_base..prow_base + s];
                    let dot: f32 = prow.iter().zip(&dp).map(|(p, d)| p * d).sum();
                    for sj in 0..limit {
                        let ds = prow[sj] * (dp[sj] - dot) * scale;
                        if ds == 0.0 {
                            continue;
                        }
                        // dQ[si] += ds · K[sj]; dK[sj] += ds · Q[si]
                        let krow = self.head_slice(&qkvd[(bi * s + sj) * 3 * self.dim..], 1, hi);
                        let qrow = self.head_slice(&qkvd[(bi * s + si) * 3 * self.dim..], 0, hi);
                        let dq_base = (bi * s + si) * 3 * self.dim + hi * hd;
                        let dk_base = (bi * s + sj) * 3 * self.dim + self.dim + hi * hd;
                        for j in 0..hd {
                            dqkv[dq_base + j] += ds * krow[j];
                            dqkv[dk_base + j] += ds * qrow[j];
                        }
                    }
                }
            }
        }
        let dqkv_t = Tensor::from_vec([b * s, 3 * self.dim], dqkv)?;
        let dwqkv = ops::matmul_at_b(x, &dqkv_t)?;
        let dbqkv = ops::col_sum(&dqkv_t)?;
        let dx = ops::matmul_a_bt(&dqkv_t, &params[0])?.reshape([b, s, self.dim])?;
        Ok((
            dx,
            Grads {
                tensors: vec![dwqkv, dbqkv, dwo, dbo],
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck::check_input_grad;

    #[test]
    fn new_validates_head_divisibility() {
        assert!(MultiHeadAttention::new(8, 2, false).is_ok());
        assert!(MultiHeadAttention::new(8, 3, false).is_err());
        assert!(MultiHeadAttention::new(8, 0, false).is_err());
    }

    #[test]
    fn forward_shapes() {
        let layer = MultiHeadAttention::new(8, 2, false).unwrap();
        let mut rng = SplitMix64::new(31);
        let params = layer.init_params(&mut rng);
        let x = Tensor::randn([2, 5, 8], 1.0, &mut rng);
        let (y, stash) = layer.forward(&params, &x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 5, 8]);
        assert_eq!(stash.tensors[1].shape().dims(), &[2, 2, 5, 5]);
        assert_eq!(stash.tensors[2].shape().dims(), &[2, 5, 8]);
    }

    #[test]
    fn attention_probs_are_distributions() {
        let layer = MultiHeadAttention::new(4, 2, false).unwrap();
        let mut rng = SplitMix64::new(32);
        let params = layer.init_params(&mut rng);
        let x = Tensor::randn([1, 4, 4], 1.0, &mut rng);
        let (_, stash) = layer.forward(&params, &x).unwrap();
        let probs = &stash.tensors[1];
        for row in probs.data().chunks(4) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row sum {s}");
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn causal_mask_zeroes_future_positions() {
        let layer = MultiHeadAttention::new(4, 1, true).unwrap();
        let mut rng = SplitMix64::new(33);
        let params = layer.init_params(&mut rng);
        let x = Tensor::randn([1, 3, 4], 1.0, &mut rng);
        let (_, stash) = layer.forward(&params, &x).unwrap();
        let probs = stash.tensors[1].data();
        // probs is [1, 1, 3, 3]; strict upper triangle must be zero.
        assert_eq!(probs[1], 0.0);
        assert_eq!(probs[2], 0.0);
        assert_eq!(probs[5], 0.0);
        // row sums still 1
        for si in 0..3 {
            let s: f32 = probs[si * 3..(si + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_output_ignores_future_tokens() {
        // Changing a later token must not change earlier outputs.
        let layer = MultiHeadAttention::new(4, 2, true).unwrap();
        let mut rng = SplitMix64::new(34);
        let params = layer.init_params(&mut rng);
        let x1 = Tensor::randn([1, 3, 4], 1.0, &mut rng);
        let mut x2 = x1.clone();
        for j in 0..4 {
            x2.data_mut()[2 * 4 + j] += 1.0; // perturb token 2
        }
        let (y1, _) = layer.forward(&params, &x1).unwrap();
        let (y2, _) = layer.forward(&params, &x2).unwrap();
        for j in 0..8 {
            // tokens 0 and 1 unchanged
            assert!((y1.data()[j] - y2.data()[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        for causal in [false, true] {
            let layer = MultiHeadAttention::new(6, 2, causal).unwrap();
            let mut rng = SplitMix64::new(35);
            let params = layer.init_params(&mut rng);
            let x = Tensor::randn([1, 3, 6], 0.7, &mut rng);
            let dy = Tensor::randn([1, 3, 6], 1.0, &mut rng);
            let (_, stash) = layer.forward(&params, &x).unwrap();
            let (dx, _) = layer.backward(&params, &stash, &dy).unwrap();
            check_input_grad(
                &x,
                &dy,
                &dx,
                |x| layer.forward(&params, x).map(|(y, _)| y),
                3e-2,
            );
        }
    }

    #[test]
    fn backward_param_grads_match_finite_difference() {
        let layer = MultiHeadAttention::new(4, 2, false).unwrap();
        let mut rng = SplitMix64::new(36);
        let params = layer.init_params(&mut rng);
        let x = Tensor::randn([1, 2, 4], 0.7, &mut rng);
        let dy = Tensor::randn([1, 2, 4], 1.0, &mut rng);
        let (_, stash) = layer.forward(&params, &x).unwrap();
        let (_, grads) = layer.backward(&params, &stash, &dy).unwrap();
        let eps = 1e-2f32;
        for pi in 0..4 {
            let g = &grads.tensors[pi];
            let step = (g.numel() / 8).max(1);
            for j in (0..g.numel()).step_by(step) {
                let mut pp = params.clone();
                pp[pi].data_mut()[j] += eps;
                let mut pm = params.clone();
                pm[pi].data_mut()[j] -= eps;
                let (yp, _) = layer.forward(&pp, &x).unwrap();
                let (ym, _) = layer.forward(&pm, &x).unwrap();
                let mut fd = 0.0f32;
                for k in 0..yp.numel() {
                    fd += dy.data()[k] * (yp.data()[k] - ym.data()[k]) / (2.0 * eps);
                }
                let denom = fd.abs().max(g.data()[j].abs()).max(1.0);
                assert!(
                    (fd - g.data()[j]).abs() / denom < 3e-2,
                    "param {pi} coord {j}: fd {fd} vs {}",
                    g.data()[j]
                );
            }
        }
    }

    use crate::rng::SplitMix64;
}
