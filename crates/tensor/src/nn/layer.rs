//! Uniform dispatch over concrete layer kinds.

use crate::nn::{
    Activation, Conv2d, Embedding, Flatten, Grads, LayerNorm, Linear, MaxPool2d,
    MultiHeadAttention, Stash,
};
use crate::rng::SplitMix64;
use crate::tensor::Tensor;
use crate::Result;

/// Result of a layer's forward pass.
#[derive(Debug, Clone)]
pub struct LayerOutput {
    /// Output activation.
    pub output: Tensor,
    /// Tensors stashed for backward.
    pub stash: Stash,
}

/// A layer description (no owned tensor state — parameters live with the
/// runtime's memory manager so they can be placed and swapped).
#[derive(Debug, Clone)]
pub enum Layer {
    /// Affine projection.
    Linear(Linear),
    /// Pointwise nonlinearity.
    Activation(Activation),
    /// Layer normalisation.
    LayerNorm(LayerNorm),
    /// Token embedding lookup.
    Embedding(Embedding),
    /// Multi-head self-attention.
    Attention(MultiHeadAttention),
    /// 2-D convolution (valid padding).
    Conv2d(Conv2d),
    /// Non-overlapping max pooling.
    MaxPool2d(MaxPool2d),
    /// Flatten `[b, ...]` to `[b, n]`.
    Flatten(Flatten),
    /// Residual add: `y = x + stashed_branch_input`. The skip input is the
    /// second tensor passed via [`Layer::forward_with_skip`].
    ResidualAdd,
}

impl Layer {
    /// A short kind name for traces and error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Linear(_) => "linear",
            Layer::Activation(_) => "activation",
            Layer::LayerNorm(_) => "layernorm",
            Layer::Embedding(_) => "embedding",
            Layer::Attention(_) => "attention",
            Layer::Conv2d(_) => "conv2d",
            Layer::MaxPool2d(_) => "maxpool2d",
            Layer::Flatten(_) => "flatten",
            Layer::ResidualAdd => "residual_add",
        }
    }

    /// Initialises this layer's parameter tensors (empty for parameter-free
    /// layers).
    pub fn init_params(&self, rng: &mut SplitMix64) -> Vec<Tensor> {
        match self {
            Layer::Linear(l) => l.init_params(rng),
            Layer::Activation(_) | Layer::ResidualAdd => Vec::new(),
            Layer::LayerNorm(l) => l.init_params(),
            Layer::Embedding(l) => l.init_params(rng),
            Layer::Attention(l) => l.init_params(rng),
            Layer::Conv2d(l) => l.init_params(rng),
            Layer::MaxPool2d(_) | Layer::Flatten(_) => Vec::new(),
        }
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Linear(l) => l.param_count(),
            Layer::Activation(_) | Layer::ResidualAdd => 0,
            Layer::LayerNorm(l) => l.param_count(),
            Layer::Embedding(l) => l.param_count(),
            Layer::Attention(l) => l.param_count(),
            Layer::Conv2d(l) => l.param_count(),
            Layer::MaxPool2d(_) | Layer::Flatten(_) => 0,
        }
    }

    /// Forward pass for single-input layers. `ResidualAdd` requires
    /// [`Layer::forward_with_skip`].
    pub fn forward(&self, params: &[Tensor], x: &Tensor) -> Result<LayerOutput> {
        let (output, stash) = match self {
            Layer::Linear(l) => l.forward(params, x)?,
            Layer::Activation(l) => l.forward(x)?,
            Layer::LayerNorm(l) => l.forward(params, x)?,
            Layer::Embedding(l) => l.forward(params, x)?,
            Layer::Attention(l) => l.forward(params, x)?,
            Layer::Conv2d(l) => l.forward(params, x)?,
            Layer::MaxPool2d(l) => l.forward(x)?,
            Layer::Flatten(l) => l.forward(x)?,
            Layer::ResidualAdd => {
                return Err(crate::TensorError::InvalidArgument {
                    op: "forward",
                    msg: "residual_add requires forward_with_skip".to_string(),
                })
            }
        };
        Ok(LayerOutput { output, stash })
    }

    /// Forward for layers taking a skip input (`ResidualAdd`); other layers
    /// ignore `skip`.
    pub fn forward_with_skip(
        &self,
        params: &[Tensor],
        x: &Tensor,
        skip: &Tensor,
    ) -> Result<LayerOutput> {
        match self {
            Layer::ResidualAdd => {
                let output = crate::ops::add(x, skip)?;
                Ok(LayerOutput {
                    output,
                    stash: Stash::default(),
                })
            }
            _ => self.forward(params, x),
        }
    }

    /// Backward pass: `(dx, grads)`. For `ResidualAdd`, `dx` is the gradient
    /// for *both* inputs (identical, since addition duplicates the
    /// upstream gradient).
    pub fn backward(
        &self,
        params: &[Tensor],
        stash: &Stash,
        dy: &Tensor,
    ) -> Result<(Tensor, Grads)> {
        match self {
            Layer::Linear(l) => l.backward(params, stash, dy),
            Layer::Activation(l) => l.backward(stash, dy),
            Layer::LayerNorm(l) => l.backward(params, stash, dy),
            Layer::Embedding(l) => l.backward(params, stash, dy),
            Layer::Attention(l) => l.backward(params, stash, dy),
            Layer::Conv2d(l) => l.backward(params, stash, dy),
            Layer::MaxPool2d(l) => l.backward(stash, dy),
            Layer::Flatten(l) => l.backward(stash, dy),
            Layer::ResidualAdd => Ok((dy.clone(), Grads::default())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::ActivationKind;

    #[test]
    fn dispatch_forward_backward_roundtrip() {
        let mut rng = SplitMix64::new(41);
        let layers = vec![
            Layer::Linear(Linear::new(4, 4, true)),
            Layer::Activation(Activation::new(ActivationKind::Gelu)),
            Layer::LayerNorm(LayerNorm::new(4)),
        ];
        let mut x = Tensor::randn([2, 4], 1.0, &mut rng);
        let mut stack = Vec::new();
        for layer in &layers {
            let params = layer.init_params(&mut rng);
            let out = layer.forward(&params, &x).unwrap();
            stack.push((params, out.stash));
            x = out.output;
        }
        let mut dy = Tensor::ones([2, 4]);
        for (layer, (params, stash)) in layers.iter().zip(&stack).rev() {
            let (dx, _) = layer.backward(params, stash, &dy).unwrap();
            dy = dx;
        }
        assert_eq!(dy.shape().dims(), &[2, 4]);
        assert!(dy.all_finite());
    }

    #[test]
    fn residual_add_needs_skip() {
        let layer = Layer::ResidualAdd;
        let x = Tensor::ones([2]);
        assert!(layer.forward(&[], &x).is_err());
        let out = layer
            .forward_with_skip(&[], &x, &Tensor::full([2], 2.0))
            .unwrap();
        assert_eq!(out.output.data(), &[3.0, 3.0]);
        let (dx, grads) = layer.backward(&[], &Stash::default(), &x).unwrap();
        assert_eq!(dx, x);
        assert!(grads.tensors.is_empty());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Layer::ResidualAdd.kind_name(), "residual_add");
        assert_eq!(
            Layer::Linear(Linear::new(1, 1, false)).kind_name(),
            "linear"
        );
    }

    #[test]
    fn param_counts_match_init_sizes() {
        let mut rng = SplitMix64::new(42);
        let layers = vec![
            Layer::Linear(Linear::new(8, 3, true)),
            Layer::LayerNorm(LayerNorm::new(8)),
            Layer::Embedding(Embedding::new(10, 4)),
            Layer::Attention(MultiHeadAttention::new(8, 2, false).unwrap()),
            Layer::ResidualAdd,
        ];
        for layer in layers {
            let params = layer.init_params(&mut rng);
            let total: usize = params.iter().map(Tensor::numel).sum();
            assert_eq!(total, layer.param_count(), "layer {}", layer.kind_name());
        }
    }
}
