//! # harmony-tensor
//!
//! A small, dependency-free dense tensor library backing Harmony's
//! *functional execution* mode.
//!
//! The Harmony paper (HotOS '21) assumes PyTorch as the numeric substrate.
//! This crate substitutes a self-contained f32 tensor engine with explicit
//! per-layer forward/backward/update kernels, which is exactly the
//! granularity at which Harmony's task decomposer splits work: instead of a
//! taped autograd, every layer exposes
//!
//! * `forward(inputs, params) -> (outputs, stash)`
//! * `backward(grad_outputs, stash, params) -> (grad_inputs, grad_params)`
//! * optimizer `step(params, grads, state)`
//!
//! so that a scheduler can bind each phase to a different (virtual) device
//! and move the named tensors between memories — the swap model of Fig 5(a).
//!
//! Design constraints (see repo DESIGN.md):
//! * deterministic: hand-rolled [`rng::SplitMix64`] seeds all initialisation;
//! * no `unsafe`, no panicking paths in library APIs (fallible ops return
//!   [`TensorError`]);
//! * row-major contiguous storage only — sufficient for the transformer/MLP
//!   workloads the paper evaluates, and keeps kernels simple and auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
