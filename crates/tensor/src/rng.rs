//! Deterministic random number generation for reproducible initialisation.
//!
//! Harmony's functional tests assert bit-identical results between the
//! sequential reference executor and the scheduled multi-device executor, so
//! all randomness must be derived from explicit seeds. `SplitMix64` is small,
//! fast, and has well-understood statistical quality for this purpose; using
//! it (rather than an external RNG crate) pins the byte-level sequence
//! independent of dependency versions.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA'14).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f32 in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly spaced mantissa.
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection-free bound
    /// mapping (bias is negligible for the bounds used here).
    pub fn next_bounded(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (((self.next_u64() >> 32) * bound as u64) >> 32) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_stays_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1_000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = SplitMix64::new(1234);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bounded_stays_below_bound() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..10_000 {
            assert!(rng.next_bounded(17) < 17);
        }
        assert_eq!(rng.next_bounded(0), 0);
    }
}
