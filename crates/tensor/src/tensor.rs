//! The dense f32 tensor type.

use crate::error::TensorError;
use crate::rng::SplitMix64;
use crate::shape::Shape;
use crate::Result;

/// A dense, row-major, contiguous f32 tensor.
///
/// This is deliberately minimal: contiguous storage only, no views, no
/// broadcasting beyond what the named kernels in [`crate::ops`] implement.
/// That keeps every kernel auditable and the memory accounting exact, which
/// matters because Harmony's memory manager tracks tensors by their byte
/// footprint ([`Tensor::size_bytes`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data, validating the element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::DataLenMismatch {
                shape,
                data_len: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor with i.i.d. standard-normal entries scaled by `std`.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut SplitMix64) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.normal() * std).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with entries uniform in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut SplitMix64) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its raw data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Byte footprint of the payload (`numel * 4`); this is the quantity the
    /// Harmony memory manager charges against device capacity.
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Reshapes in place to a shape with the same element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape,
                to: shape,
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// The single value of a scalar or one-element tensor.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() != 1 {
            return Err(TensorError::RankMismatch {
                op: "item",
                expected: 0,
                actual: self.shape.rank(),
            });
        }
        Ok(self.data[0])
    }

    /// Element at a row-major flat index.
    pub fn at(&self, flat: usize) -> Result<f32> {
        self.data
            .get(flat)
            .copied()
            .ok_or(TensorError::IndexOutOfRange {
                op: "at",
                index: flat,
                bound: self.data.len(),
            })
    }

    /// Fills the tensor with zeros (gradient-buffer reset between
    /// iterations — the `Reset dW'` output of the update phase in Fig 5(a)).
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// True if all entries are finite (no NaN/Inf) — used by failure-injection
    /// tests and the runtime's sanity checks.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_len() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec([2, 2], vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::DataLenMismatch { .. }));
    }

    #[test]
    fn zeros_and_ones() {
        let z = Tensor::zeros([3, 2]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones([3]);
        assert!(o.data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn size_bytes_is_four_per_element() {
        assert_eq!(Tensor::zeros([10, 10]).size_bytes(), 400);
        assert_eq!(Tensor::scalar(1.0).size_bytes(), 4);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.clone().reshape([3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn item_requires_single_element() {
        assert_eq!(Tensor::scalar(2.5).item().unwrap(), 2.5);
        assert!(Tensor::zeros([2]).item().is_err());
    }

    #[test]
    fn randn_is_seed_deterministic() {
        let mut r1 = SplitMix64::new(3);
        let mut r2 = SplitMix64::new(3);
        let a = Tensor::randn([4, 4], 0.5, &mut r1);
        let b = Tensor::randn([4, 4], 0.5, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_inplace_clears() {
        let mut t = Tensor::full([5], 3.0);
        t.zero_();
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn max_abs_diff_checks_shape() {
        let a = Tensor::full([2], 1.0);
        let b = Tensor::full([2], 1.5);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.max_abs_diff(&Tensor::zeros([3])).is_err());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros([2]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }
}
