//! Typed errors for tensor operations.

use std::fmt;

use crate::shape::Shape;

/// Errors produced by tensor construction and kernels.
///
/// All fallible operations in this crate return `Result<_, TensorError>`
/// rather than panicking, so callers (the Harmony runtime in particular) can
/// surface shape bugs as scheduling errors instead of aborting a simulated
/// training run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by a shape does not match the data length.
    DataLenMismatch {
        /// Shape the caller asked for.
        shape: Shape,
        /// Number of elements actually supplied.
        data_len: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Left-hand operand shape.
        lhs: Shape,
        /// Right-hand operand shape.
        rhs: Shape,
    },
    /// The operation requires a tensor of a different rank.
    RankMismatch {
        /// Operation name.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An index (e.g. an embedding token id or class label) is out of range.
    IndexOutOfRange {
        /// Operation name.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// Exclusive bound the index must stay below.
        bound: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Original shape.
        from: Shape,
        /// Requested shape.
        to: Shape,
    },
    /// A scalar parameter was invalid (e.g. zero feature dimension).
    InvalidArgument {
        /// Operation name.
        op: &'static str,
        /// Human-readable description of what was wrong.
        msg: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLenMismatch { shape, data_len } => write!(
                f,
                "data length {data_len} does not match shape {shape} ({} elements)",
                shape.numel()
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs} and {rhs}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected rank {expected}, got rank {actual}"),
            TensorError::IndexOutOfRange { op, index, bound } => {
                write!(f, "{op}: index {index} out of range (bound {bound})")
            }
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape {from} ({} elements) to {to} ({} elements)",
                from.numel(),
                to.numel()
            ),
            TensorError::InvalidArgument { op, msg } => write!(f, "{op}: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: Shape::new(vec![2, 3]),
            rhs: Shape::new(vec![4, 5]),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4, 5]"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        let err = TensorError::RankMismatch {
            op: "softmax",
            expected: 2,
            actual: 1,
        };
        assert_err(&err);
    }
}
