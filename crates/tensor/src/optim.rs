//! Optimizers operating on externally-owned parameter/gradient/state
//! tensors.
//!
//! The weight-update phase of Fig 5(a) swaps in `dW`, `W`, and optimizer
//! state `K`, and swaps out updated `W'`, `K'`, and a reset gradient buffer.
//! To make those tensors schedulable, optimizers here do not own state:
//! callers allocate state via [`Optimizer::state_shapes`] and pass it to
//! every [`Optimizer::step`]. Adam's per-parameter first/second moments are
//! exactly the 2× state blow-up the paper counts in the training footprint.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Optimizer algorithm and hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with classical momentum.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
    },
    /// Adam (Kingma & Ba, 2014).
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Denominator epsilon.
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with the customary defaults.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Number of state tensors per parameter tensor (each shaped like the
    /// parameter): 0 for SGD, 1 for momentum, 2 for Adam.
    pub fn state_slots(&self) -> usize {
        match self {
            Optimizer::Sgd { .. } => 0,
            Optimizer::Momentum { .. } => 1,
            Optimizer::Adam { .. } => 2,
        }
    }

    /// Allocates zeroed state tensors for a parameter tensor.
    pub fn init_state(&self, param: &Tensor) -> Vec<Tensor> {
        (0..self.state_slots())
            .map(|_| Tensor::zeros(param.shape().clone()))
            .collect()
    }

    /// Shapes of state tensors for a parameter of the given shape.
    pub fn state_shapes(&self, param: &Tensor) -> Vec<crate::Shape> {
        (0..self.state_slots())
            .map(|_| param.shape().clone())
            .collect()
    }

    /// Applies one update step in place. `t` is the 1-based step count
    /// (used by Adam's bias correction).
    pub fn step(
        &self,
        param: &mut Tensor,
        grad: &Tensor,
        state: &mut [Tensor],
        t: u64,
    ) -> Result<()> {
        if param.shape() != grad.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "optimizer step",
                lhs: param.shape().clone(),
                rhs: grad.shape().clone(),
            });
        }
        if state.len() != self.state_slots() {
            return Err(TensorError::InvalidArgument {
                op: "optimizer step",
                msg: format!(
                    "expected {} state tensors, got {}",
                    self.state_slots(),
                    state.len()
                ),
            });
        }
        match *self {
            Optimizer::Sgd { lr } => {
                for (p, &g) in param.data_mut().iter_mut().zip(grad.data()) {
                    *p -= lr * g;
                }
            }
            Optimizer::Momentum { lr, momentum } => {
                let v = &mut state[0];
                if v.shape() != grad.shape() {
                    return Err(TensorError::ShapeMismatch {
                        op: "optimizer step",
                        lhs: v.shape().clone(),
                        rhs: grad.shape().clone(),
                    });
                }
                for ((p, v), &g) in param
                    .data_mut()
                    .iter_mut()
                    .zip(v.data_mut())
                    .zip(grad.data())
                {
                    *v = momentum * *v + g;
                    *p -= lr * *v;
                }
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let t = t.max(1) as i32;
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                let (m, v) = match state {
                    [m, v] => (m, v),
                    _ => unreachable!("state_slots checked above"),
                };
                for (i, &g) in grad.data().iter().enumerate() {
                    let mi = &mut m.data_mut()[i];
                    *mi = beta1 * *mi + (1.0 - beta1) * g;
                    let mi = *mi;
                    let vi = &mut v.data_mut()[i];
                    *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                    let vi = *vi;
                    let mhat = mi / bc1;
                    let vhat = vi / bc2;
                    param.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    /// Minimises f(x) = (x - 3)^2 and checks convergence.
    fn converges(opt: Optimizer, steps: u64, tol: f32) {
        let mut x = Tensor::scalar(0.0);
        let mut state = opt.init_state(&x);
        for t in 1..=steps {
            let g = Tensor::scalar(2.0 * (x.item().unwrap() - 3.0));
            opt.step(&mut x, &g, &mut state, t).unwrap();
        }
        let v = x.item().unwrap();
        assert!((v - 3.0).abs() < tol, "converged to {v}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        converges(Optimizer::Sgd { lr: 0.1 }, 100, 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        converges(
            Optimizer::Momentum {
                lr: 0.05,
                momentum: 0.9,
            },
            200,
            1e-2,
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        converges(Optimizer::adam(0.1), 500, 1e-2);
    }

    #[test]
    fn sgd_exact_single_step() {
        let opt = Optimizer::Sgd { lr: 0.5 };
        let mut p = Tensor::from_vec([2], vec![1.0, -2.0]).unwrap();
        let g = Tensor::from_vec([2], vec![2.0, 4.0]).unwrap();
        opt.step(&mut p, &g, &mut [], 1).unwrap();
        assert_eq!(p.data(), &[0.0, -4.0]);
    }

    #[test]
    fn state_slot_counts() {
        assert_eq!(Optimizer::Sgd { lr: 0.1 }.state_slots(), 0);
        assert_eq!(
            Optimizer::Momentum {
                lr: 0.1,
                momentum: 0.9
            }
            .state_slots(),
            1
        );
        assert_eq!(Optimizer::adam(0.1).state_slots(), 2);
    }

    #[test]
    fn step_validates_shapes_and_state() {
        let opt = Optimizer::adam(0.1);
        let mut p = Tensor::zeros([2]);
        let g = Tensor::zeros([3]);
        let mut state = opt.init_state(&p);
        assert!(opt.step(&mut p, &g, &mut state, 1).is_err());
        let g = Tensor::zeros([2]);
        assert!(opt.step(&mut p, &g, &mut [], 1).is_err());
    }

    #[test]
    fn adam_first_step_moves_by_lr() {
        // With bias correction, Adam's first step is ≈ lr * sign(g).
        let opt = Optimizer::adam(0.01);
        let mut p = Tensor::scalar(1.0);
        let g = Tensor::scalar(5.0);
        let mut state = opt.init_state(&p);
        opt.step(&mut p, &g, &mut state, 1).unwrap();
        assert!((p.item().unwrap() - (1.0 - 0.01)).abs() < 1e-4);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let opt = Optimizer::Momentum {
            lr: 1.0,
            momentum: 0.5,
        };
        let mut p = Tensor::scalar(0.0);
        let g = Tensor::scalar(1.0);
        let mut state = opt.init_state(&p);
        opt.step(&mut p, &g, &mut state, 1).unwrap(); // v=1, p=-1
        opt.step(&mut p, &g, &mut state, 2).unwrap(); // v=1.5, p=-2.5
        assert!((p.item().unwrap() + 2.5).abs() < 1e-6);
        assert!(ops::sum(&state[0]) - 1.5 < 1e-6);
    }
}
