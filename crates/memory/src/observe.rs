//! Observer hooks for the memory manager.
//!
//! A [`MemObserver`] receives a [`MemEvent`] after every state-changing
//! operation on a [`MemoryManager`](crate::MemoryManager), together with
//! a read-only view of the manager *after* the transition. The manager
//! emits events only when at least one observer is attached, so
//! production runs pay a single `is_empty` branch per operation.
//!
//! Observers are the hook point for the conformance harness's invariant
//! oracles (`harmony-harness`): an oracle that detects a violation is
//! expected to panic with a descriptive message, which surfaces in tests
//! as a failure at the exact operation that broke the invariant.

use crate::manager::MemoryManager;
use crate::{DeviceId, TensorClass, TensorId};

/// A state transition of the memory manager.
#[derive(Debug, Clone, PartialEq)]
pub enum MemEvent {
    /// A tensor was registered in host memory.
    RegisterHost {
        /// New tensor.
        id: TensorId,
        /// Payload size.
        bytes: u64,
        /// Swap-model class.
        class: TensorClass,
    },
    /// A tensor was allocated directly on a device.
    Alloc {
        /// New tensor.
        id: TensorId,
        /// Device charged.
        dev: DeviceId,
        /// Payload size.
        bytes: u64,
        /// Swap-model class.
        class: TensorClass,
    },
    /// A tensor was accessed (`touch`) by the runtime.
    Use {
        /// Tensor touched.
        id: TensorId,
    },
    /// A pin was taken.
    Pin {
        /// Tensor pinned.
        id: TensorId,
    },
    /// A pin was released.
    Unpin {
        /// Tensor unpinned.
        id: TensorId,
    },
    /// A tensor was freed (no writeback).
    Free {
        /// Tensor freed.
        id: TensorId,
    },
    /// A device→host swap-out started (capacity still charged).
    BeginSwapOut {
        /// Tensor in flight.
        id: TensorId,
        /// Source device.
        src: DeviceId,
        /// Payload size.
        bytes: u64,
    },
    /// A swap-out finished (capacity released).
    FinishSwapOut {
        /// Tensor now on host.
        id: TensorId,
        /// Source device.
        src: DeviceId,
        /// Payload size.
        bytes: u64,
    },
    /// A host→device swap-in started (destination reserved).
    BeginSwapIn {
        /// Tensor in flight.
        id: TensorId,
        /// Destination device.
        dst: DeviceId,
        /// Payload size.
        bytes: u64,
    },
    /// A device→device move started (both copies charged in flight).
    BeginP2p {
        /// Tensor in flight.
        id: TensorId,
        /// Source device.
        src: DeviceId,
        /// Destination device.
        dst: DeviceId,
        /// Payload size.
        bytes: u64,
    },
    /// An in-flight move toward a device was cancelled (resilience-layer
    /// reroute): destination reservation released, tensor back at its
    /// source residency.
    CancelMove {
        /// Tensor whose move was cancelled.
        id: TensorId,
        /// Destination whose reservation was released.
        dst: DeviceId,
        /// True for a p2p move (tensor back on its source device);
        /// false for a swap-in (tensor back on host).
        p2p: bool,
    },
    /// A swap-in or p2p move finished (tensor device-resident).
    FinishMove {
        /// Tensor now resident.
        id: TensorId,
        /// Destination device.
        dst: DeviceId,
        /// True for a p2p move (source copy just released).
        p2p: bool,
    },
    /// A tensor was marked device-dirty (host copy invalidated).
    MarkDirty {
        /// Tensor written.
        id: TensorId,
    },
    /// A clean tensor was demoted to host for free (no transfer). The
    /// recorded flags are the tensor's state *at the moment of the drop* —
    /// the dirty-drop oracle asserts `!was_dirty && had_host_copy`.
    DropToHost {
        /// Tensor dropped.
        id: TensorId,
        /// Device it left.
        dev: DeviceId,
        /// Whether the device copy was dirty when dropped.
        was_dirty: bool,
        /// Whether a valid host copy existed when dropped.
        had_host_copy: bool,
    },
    /// A device's capacity was changed at runtime (fault injection).
    CapacityChanged {
        /// Device affected.
        dev: DeviceId,
        /// New capacity in bytes (post-clamping).
        capacity: u64,
    },
}

/// Receives memory-manager state transitions. See module docs.
pub trait MemObserver: std::fmt::Debug {
    /// Called after every state-changing operation; `mm` reflects the
    /// state *after* the transition described by `event`.
    fn on_event(&mut self, mm: &MemoryManager, event: &MemEvent);
}
