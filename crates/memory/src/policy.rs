//! Eviction policies.
//!
//! The baseline per-GPU virtualization systems the paper critiques evict by
//! recency ([`Lru`]), blind to the training schedule. Harmony's scheduler
//! knows each tensor's next use (the task graph is ahead of it), so
//! [`NextUseAware`] approximates Belady's OPT: evict the resident tensor
//! whose next use is farthest in the future (never-used-again first).

use crate::manager::TensorInfo;
use crate::TensorId;

/// The ordered-victim-index key a policy's comparison corresponds to.
///
/// A policy that declares its kind promises that for any candidate set its
/// [`EvictionPolicy::choose`] returns exactly the minimum of the matching
/// index key — which lets [`crate::MemoryManager`] pop victims off an
/// incrementally maintained `BTreeSet` in O(log n) instead of re-offering
/// a freshly materialized candidate slice per victim (DESIGN §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyIndexKind {
    /// `choose` == min over `(last_use, id)` (see [`Lru`]).
    Lru,
    /// `choose` == min over `(u64::MAX - hint_or_max, last_use, id)` where
    /// `hint_or_max = next_use_hint.map_or(u64::MAX, |h| h)` — the
    /// componentwise order-reversal of [`NextUseAware`]'s `max_by_key`.
    NextUse,
}

/// Chooses which resident tensor to evict from a device.
pub trait EvictionPolicy {
    /// Picks a victim among `candidates` (all unpinned, resident on the
    /// pressured device). Returns `None` only if `candidates` is empty.
    fn choose(&self, candidates: &[&TensorInfo]) -> Option<TensorId>;

    /// Policy name for traces.
    fn name(&self) -> &'static str;

    /// The ordered-index key this policy's choice is the minimum of, if
    /// any. Defaults to `None`: foreign policies keep today's semantics
    /// (the manager materializes the candidate set and calls `choose`
    /// per victim); only return `Some` if `choose` is *exactly*
    /// equivalent to the declared key order — the manager then never
    /// calls `choose` on the hot path.
    fn index_kind(&self) -> Option<PolicyIndexKind> {
        None
    }
}

/// Least-recently-used eviction (what LMS-style per-GPU virtualization
/// effectively does).
#[derive(Debug, Clone, Copy, Default)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn choose(&self, candidates: &[&TensorInfo]) -> Option<TensorId> {
        candidates
            .iter()
            .min_by_key(|t| (t.last_use, t.id))
            .map(|t| t.id)
    }

    fn name(&self) -> &'static str {
        "lru"
    }

    fn index_kind(&self) -> Option<PolicyIndexKind> {
        Some(PolicyIndexKind::Lru)
    }
}

/// Next-use-aware (Belady-approximate) eviction driven by scheduler hints.
///
/// Tensors with no recorded next use are evicted first (farthest possible
/// future), then those with the latest `next_use_hint`; ties break by LRU
/// then id for determinism.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextUseAware;

impl EvictionPolicy for NextUseAware {
    fn choose(&self, candidates: &[&TensorInfo]) -> Option<TensorId> {
        candidates
            .iter()
            .max_by_key(|t| {
                (
                    t.next_use_hint.map_or(u64::MAX, |h| h),
                    u64::MAX - t.last_use, // older first among ties
                    u64::MAX - t.id,       // lower id wins final tie
                )
            })
            .map(|t| t.id)
    }

    fn name(&self) -> &'static str {
        "next_use_aware"
    }

    fn index_kind(&self) -> Option<PolicyIndexKind> {
        Some(PolicyIndexKind::NextUse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Residency;
    use crate::TensorClass;

    fn info(id: TensorId, last_use: u64, next: Option<u64>) -> TensorInfo {
        TensorInfo {
            id,
            name: format!("t{id}"),
            bytes: 100,
            class: TensorClass::Weight,
            residency: Residency::OnDevice(0),
            pinned: 0,
            last_use,
            next_use_hint: next,
            dirty: false,
            host_copy_valid: true,
        }
    }

    #[test]
    fn lru_picks_oldest() {
        let a = info(1, 5, None);
        let b = info(2, 3, None);
        let c = info(3, 9, None);
        assert_eq!(Lru.choose(&[&a, &b, &c]), Some(2));
        assert_eq!(Lru.choose(&[]), None);
    }

    #[test]
    fn lru_ties_break_by_id() {
        let a = info(7, 3, None);
        let b = info(2, 3, None);
        assert_eq!(Lru.choose(&[&a, &b]), Some(2));
    }

    #[test]
    fn next_use_prefers_never_used_again() {
        let soon = info(1, 0, Some(10));
        let later = info(2, 0, Some(100));
        let never = info(3, 0, None);
        assert_eq!(NextUseAware.choose(&[&soon, &later, &never]), Some(3));
        assert_eq!(NextUseAware.choose(&[&soon, &later]), Some(2));
    }

    #[test]
    fn next_use_ties_fall_back_to_lru() {
        let a = info(1, 9, Some(50));
        let b = info(2, 1, Some(50));
        assert_eq!(NextUseAware.choose(&[&a, &b]), Some(2), "older wins");
    }
}
