//! # harmony-memory
//!
//! GPU memory virtualization: the coherent virtual memory across all CPU
//! and GPU memory that the paper's Harmony builds by generalising per-GPU
//! swapping systems (vDNN, IBM-LMS, SwapAdvisor, Capuchin — §1, §2).
//!
//! The [`MemoryManager`] maintains the paper's "state machine tracking the
//! lifetime of all tensors used" (§3): every tensor has a byte size, a
//! [`TensorClass`] (the Fig 5(a) taxonomy: weights, gradients, optimizer
//! state, activations, stashed activations), and a [`Residency`] state.
//! Capacity is charged per device; bringing a tensor onto a full device
//! produces an eviction-and-transfer [`FetchPlan`] that the runtime
//! executes on the simulator (or on real buffers in functional mode).
//!
//! Two properties matter for reproducing the paper:
//!
//! * **Swap accounting** — every swap-in/swap-out is tallied per device,
//!   direction, and tensor class ([`SwapStats`]); these tallies are the
//!   y-axes of Fig 2(a)/(c) and the quantities of the §3 analytical model.
//! * **Policy pluggability** — the baseline per-GPU virtualization uses
//!   LRU eviction in isolation; Harmony's scheduler passes *next-use
//!   hints* so eviction approximates Belady's OPT and cooperates with task
//!   placement ("the scheduler and swapping algorithms inform each other's
//!   decisions", §1).

//! ```
//! use harmony_memory::{Lru, MemoryManager, TensorClass};
//! let mut mm = MemoryManager::new(vec![1000]);
//! let w = mm.register_on_host("w", 600, TensorClass::Weight);
//! mm.begin_swap_in(w, 0).unwrap();
//! mm.finish_move_to_device(w).unwrap();
//! // Fetching something bigger than the remaining space plans an eviction.
//! let k = mm.register_on_host("k", 500, TensorClass::OptState);
//! let plan = mm.plan_fetch(k, 0, &Lru).unwrap();
//! assert_eq!(plan.evictions, vec![w]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "dense_memory")]
mod dense;
pub mod manager;
pub mod observe;
pub mod policy;
pub mod stats;
pub mod store;

pub use manager::{FetchAction, FetchPlan, MemoryManager, Residency, TensorInfo, TensorView};
pub use observe::{MemEvent, MemObserver};
pub use policy::{EvictionPolicy, Lru, NextUseAware, PolicyIndexKind};
pub use stats::{Direction, MemCounters, SwapStats};
pub use store::TensorStore;

use std::fmt;

/// Identifier of a registered tensor.
pub type TensorId = u64;

/// Device index (GPU); host memory is implicit.
pub type DeviceId = usize;

/// The tensor taxonomy of the paper's swap model (Fig 5a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TensorClass {
    /// Model weights `W`.
    Weight,
    /// Weight-gradient buffers `dW`.
    Grad,
    /// Optimizer state `K` (e.g. Adam moments).
    OptState,
    /// Live activations / gradients flowing between layers (`X`, `Y`,
    /// `dX`, `dY`).
    Activation,
    /// Activations stashed by forward for backward (`Stashed X`).
    Stash,
    /// Weight versions stashed by forward for backward under 1F1B weight
    /// stashing (PipeDream): backward must see the weights its forward
    /// used, so each in-flight microbatch pins one stashed copy.
    WeightStash,
    /// Scratch / framework workspace.
    Workspace,
}

impl fmt::Display for TensorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TensorClass::Weight => "weight",
            TensorClass::Grad => "grad",
            TensorClass::OptState => "opt_state",
            TensorClass::Activation => "activation",
            TensorClass::Stash => "stash",
            TensorClass::WeightStash => "weight_stash",
            TensorClass::Workspace => "workspace",
        };
        f.write_str(s)
    }
}

/// Errors from memory management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Unknown tensor id.
    UnknownTensor(TensorId),
    /// Unknown device.
    UnknownDevice(DeviceId),
    /// Even after evicting everything evictable, `needed` bytes cannot fit
    /// on the device (single working set exceeds capacity).
    InsufficientMemory {
        /// Device that ran out.
        device: DeviceId,
        /// Bytes that were requested.
        needed: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// Operation invalid in the tensor's current state.
    InvalidState {
        /// Tensor id.
        id: TensorId,
        /// Operation attempted.
        op: &'static str,
        /// Human-readable state description.
        state: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::UnknownTensor(id) => write!(f, "unknown tensor {id}"),
            MemError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            MemError::InsufficientMemory {
                device,
                needed,
                capacity,
            } => write!(
                f,
                "device {device}: need {needed} B but capacity is {capacity} B even after eviction"
            ),
            MemError::InvalidState { id, op, state } => {
                write!(f, "tensor {id}: cannot {op} while {state}")
            }
        }
    }
}

impl std::error::Error for MemError {}
