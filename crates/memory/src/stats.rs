//! Swap-volume accounting.

use std::collections::HashMap;

use crate::{DeviceId, TensorClass};

/// Transfer direction relative to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host → device (or peer → device).
    In,
    /// Device → host (or device → peer).
    Out,
}

/// Structural counters of the memory manager's planning hot path — the
/// complexity contract of the ordered-victim-index rewrite (DESIGN §13),
/// the memory-side analogue of the executor's `ExecCounters`.
///
/// `fresh_allocs` is the no-per-fetch-allocation witness: it counts
/// planning-path buffer/index materialisations (compat-wrapper `Vec`s,
/// foreign-policy candidate snapshots, lazy ordered-index builds), so in
/// a run that plans through the `_into` API with an indexable policy it
/// stays bounded by the device count — never by the fetch count.
/// `repro mem-smoke` gates on exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Planning-path heap materialisations (buffers and index builds).
    /// Plan-bounded on the fast path; grows per fetch on the dense
    /// reference (it snapshots the candidate set every `make_room`).
    pub fresh_allocs: u64,
    /// Candidate records offered to `EvictionPolicy::choose` across all
    /// victim selections — the dense path re-offers the whole remaining
    /// slice per victim, the indexed path never calls `choose` at all.
    pub candidate_scans: u64,
    /// Ordered-victim-index mutations (inserts, removes, re-keys) at
    /// residency/pin/recency transitions.
    pub index_ops: u64,
    /// Victims taken straight off the ordered index in O(log n) pops.
    pub victim_pops: u64,
}

/// Per-device, per-class swap tallies — the raw data behind Fig 2(a)
/// (global swap-out volume), Fig 2(c) (per-GPU swap imbalance), and the §3
/// analytical comparison.
#[derive(Debug, Clone, Default)]
pub struct SwapStats {
    /// (device, direction, class) → bytes.
    by_key: HashMap<(DeviceId, Direction, TensorClass), u64>,
    /// Bytes moved device-to-device (p2p), counted once per transfer.
    pub p2p_bytes: u64,
    /// Planning hot-path counters (see [`MemCounters`]).
    pub counters: MemCounters,
}

impl SwapStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        SwapStats::default()
    }

    /// Records a host↔device swap.
    pub fn record(&mut self, device: DeviceId, dir: Direction, class: TensorClass, bytes: u64) {
        *self.by_key.entry((device, dir, class)).or_insert(0) += bytes;
    }

    /// Records a device↔device (p2p) transfer.
    pub fn record_p2p(&mut self, bytes: u64) {
        self.p2p_bytes += bytes;
    }

    /// Total bytes swapped in a direction for a device (all classes).
    pub fn device_total(&self, device: DeviceId, dir: Direction) -> u64 {
        self.by_key
            .iter()
            .filter(|((d, dd, _), _)| *d == device && *dd == dir)
            .map(|(_, b)| *b)
            .sum()
    }

    /// Global swap volume in a direction across all devices.
    pub fn global_total(&self, dir: Direction) -> u64 {
        self.by_key
            .iter()
            .filter(|((_, dd, _), _)| *dd == dir)
            .map(|(_, b)| *b)
            .sum()
    }

    /// Global swap volume for one tensor class, both directions.
    pub fn class_total(&self, class: TensorClass) -> u64 {
        self.by_key
            .iter()
            .filter(|((_, _, c), _)| *c == class)
            .map(|(_, b)| *b)
            .sum()
    }

    /// Total swap volume (both directions, all devices, all classes).
    pub fn total(&self) -> u64 {
        self.by_key.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_accumulate_by_key() {
        let mut s = SwapStats::new();
        s.record(0, Direction::In, TensorClass::Weight, 100);
        s.record(0, Direction::In, TensorClass::Weight, 50);
        s.record(0, Direction::Out, TensorClass::Weight, 30);
        s.record(1, Direction::In, TensorClass::Grad, 10);
        assert_eq!(s.device_total(0, Direction::In), 150);
        assert_eq!(s.device_total(0, Direction::Out), 30);
        assert_eq!(s.global_total(Direction::In), 160);
        assert_eq!(s.class_total(TensorClass::Weight), 180);
        assert_eq!(s.total(), 190);
    }

    #[test]
    fn p2p_counts_separately() {
        let mut s = SwapStats::new();
        s.record_p2p(42);
        s.record_p2p(8);
        assert_eq!(s.p2p_bytes, 50);
        assert_eq!(s.total(), 0, "p2p is not host swap volume");
    }
}
