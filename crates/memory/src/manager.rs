//! The tensor-residency state machine and per-device capacity accounting.

use std::collections::BTreeSet;

use crate::observe::{MemEvent, MemObserver};
use crate::policy::EvictionPolicy;
use crate::stats::{Direction, SwapStats};
use crate::{DeviceId, MemError, TensorClass, TensorId};

/// Where a tensor's bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// In host (CPU) memory.
    OnHost,
    /// Resident in a device's memory.
    OnDevice(DeviceId),
    /// In flight toward a device (swap-in or p2p); destination capacity is
    /// already reserved. `src` is `Some` for p2p moves (source capacity
    /// stays charged until the move finishes).
    MovingToDevice {
        /// Destination device.
        dst: DeviceId,
        /// Source device for p2p moves; `None` when coming from host.
        src: Option<DeviceId>,
    },
    /// In flight toward host (swap-out); source capacity stays charged
    /// until the bytes have left.
    MovingToHost {
        /// Source device.
        src: DeviceId,
    },
    /// Freed; the id is retained for error reporting only.
    Dead,
}

impl Residency {
    fn describe(&self) -> String {
        match self {
            Residency::OnHost => "on host".to_string(),
            Residency::OnDevice(d) => format!("on device {d}"),
            Residency::MovingToDevice { dst, src } => match src {
                Some(s) => format!("moving p2p {s} -> {dst}"),
                None => format!("swapping in to {dst}"),
            },
            Residency::MovingToHost { src } => format!("swapping out of {src}"),
            Residency::Dead => "dead".to_string(),
        }
    }
}

/// Metadata the manager keeps per tensor (also the view given to eviction
/// policies).
#[derive(Debug, Clone)]
pub struct TensorInfo {
    /// Tensor id.
    pub id: TensorId,
    /// Debug name, e.g. `"L3.W"`.
    pub name: String,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Swap-model class.
    pub class: TensorClass,
    /// Current residency.
    pub residency: Residency,
    /// Pin count; pinned tensors are never eviction candidates.
    pub pinned: u32,
    /// Logical clock of last access (LRU).
    pub last_use: u64,
    /// Scheduler hint: logical time of next use (Belady-style eviction).
    pub next_use_hint: Option<u64>,
    /// True if the device copy has been modified since the last host sync
    /// (evicting a dirty tensor requires writeback).
    pub dirty: bool,
    /// True if a valid copy of the bytes exists in host memory (clean
    /// tensors with a valid host copy can be *dropped* instead of swapped
    /// out — Harmony's cleanliness tracking; baselines write back always).
    pub host_copy_valid: bool,
}

/// What the runtime must do to make a tensor resident on a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchPlan {
    /// The tensor being fetched.
    pub tensor: TensorId,
    /// Tensors to swap out of the destination first (in order).
    pub evictions: Vec<TensorId>,
    /// Whether a transfer is required (false → already resident).
    pub needs_transfer: bool,
    /// If the tensor currently sits on another device, that device
    /// (enables a p2p move instead of a host round-trip).
    pub src_device: Option<DeviceId>,
}

/// Per-device capacity accounting + tensor state machine. See module docs.
#[derive(Debug)]
pub struct MemoryManager {
    capacities: Vec<u64>,
    used: Vec<u64>,
    peak_used: Vec<u64>,
    /// Dense per-tensor records, indexed by `TensorId` (ids are assigned
    /// sequentially and never recycled — freed tensors stay as `Dead`
    /// records), so the per-event metadata lookup is a bounds-checked
    /// array index instead of a hash probe.
    tensors: Vec<TensorInfo>,
    /// Per-device index of evictable tensors: unpinned and device-resident.
    /// Maintained at every residency/pin transition so candidate
    /// enumeration is O(candidates), not a scan over every tensor ever
    /// registered. `BTreeSet` iteration is ascending by id — the same
    /// deterministic order the full filter-and-sort produced.
    evictable: Vec<BTreeSet<TensorId>>,
    next_id: TensorId,
    clock: u64,
    stats: SwapStats,
    observers: Vec<Box<dyn MemObserver>>,
}

impl MemoryManager {
    /// Creates a manager for devices with the given capacities (bytes).
    pub fn new(capacities: Vec<u64>) -> Self {
        let n = capacities.len();
        MemoryManager {
            capacities,
            used: vec![0; n],
            peak_used: vec![0; n],
            tensors: Vec::new(),
            evictable: vec![BTreeSet::new(); n],
            next_id: 0,
            clock: 0,
            stats: SwapStats::new(),
            observers: Vec::new(),
        }
    }

    /// Attaches an observer; every subsequent state transition is reported
    /// to it. With no observers attached, operations pay one branch.
    pub fn attach_observer(&mut self, observer: Box<dyn MemObserver>) {
        self.observers.push(observer);
    }

    /// Detaches and returns all observers (e.g. to read accumulated state
    /// after a run).
    pub fn take_observers(&mut self) -> Vec<Box<dyn MemObserver>> {
        std::mem::take(&mut self.observers)
    }

    fn emit(&mut self, event: MemEvent) {
        if self.observers.is_empty() {
            return;
        }
        // Observers get `&self`; temporarily detach them so the borrow
        // of the manager is clean.
        let mut obs = std::mem::take(&mut self.observers);
        for o in &mut obs {
            o.on_event(self, &event);
        }
        self.observers = obs;
    }

    /// Resizes a device's capacity at runtime (fault injection: a capacity
    /// squeeze). Clamped to at least the currently charged bytes so the
    /// capacity invariant (`used ≤ capacity`) survives the change; returns
    /// the effective capacity.
    pub fn set_capacity(&mut self, dev: DeviceId, bytes: u64) -> Result<u64, MemError> {
        let used = self.used(dev)?;
        let effective = bytes.max(used);
        self.capacities[dev] = effective;
        self.emit(MemEvent::CapacityChanged {
            dev,
            capacity: effective,
        });
        Ok(effective)
    }

    /// All tensor records (any residency), in ascending id order.
    pub fn tensor_infos(&self) -> impl Iterator<Item = &TensorInfo> {
        self.tensors.iter()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of a device.
    pub fn capacity(&self, dev: DeviceId) -> Result<u64, MemError> {
        self.capacities
            .get(dev)
            .copied()
            .ok_or(MemError::UnknownDevice(dev))
    }

    /// Bytes currently charged on a device (resident + reserved in-flight).
    pub fn used(&self, dev: DeviceId) -> Result<u64, MemError> {
        self.used
            .get(dev)
            .copied()
            .ok_or(MemError::UnknownDevice(dev))
    }

    /// Free bytes on a device.
    pub fn free_bytes(&self, dev: DeviceId) -> Result<u64, MemError> {
        Ok(self.capacity(dev)? - self.used(dev)?)
    }

    /// Peak bytes ever charged on a device.
    pub fn peak_used(&self, dev: DeviceId) -> Result<u64, MemError> {
        self.peak_used
            .get(dev)
            .copied()
            .ok_or(MemError::UnknownDevice(dev))
    }

    /// Swap statistics.
    pub fn stats(&self) -> &SwapStats {
        &self.stats
    }

    /// Bytes currently resident in host memory (tensors on host or on
    /// their way there). The paper treats host RAM as ample ("backing GPU
    /// memory with CPU memory"); this is reporting, not a capacity limit.
    pub fn host_used(&self) -> u64 {
        self.tensors
            .iter()
            .filter(|t| {
                matches!(
                    t.residency,
                    Residency::OnHost | Residency::MovingToHost { .. }
                )
            })
            .map(|t| t.bytes)
            .sum()
    }

    /// Tensor metadata.
    pub fn info(&self, id: TensorId) -> Result<&TensorInfo, MemError> {
        self.tensors
            .get(id as usize)
            .ok_or(MemError::UnknownTensor(id))
    }

    fn info_mut(&mut self, id: TensorId) -> Result<&mut TensorInfo, MemError> {
        self.tensors
            .get_mut(id as usize)
            .ok_or(MemError::UnknownTensor(id))
    }

    fn charge(&mut self, dev: DeviceId, bytes: u64) {
        self.used[dev] += bytes;
        if self.used[dev] > self.peak_used[dev] {
            self.peak_used[dev] = self.used[dev];
        }
    }

    fn release(&mut self, dev: DeviceId, bytes: u64) {
        debug_assert!(self.used[dev] >= bytes, "capacity accounting underflow");
        self.used[dev] = self.used[dev].saturating_sub(bytes);
    }

    /// Registers a host-resident tensor (e.g. initial weights, inputs).
    pub fn register_on_host(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        class: TensorClass,
    ) -> TensorId {
        let id = self.next_id;
        self.next_id += 1;
        self.clock += 1;
        debug_assert_eq!(id as usize, self.tensors.len());
        self.tensors.push(TensorInfo {
            id,
            name: name.into(),
            bytes,
            class,
            residency: Residency::OnHost,
            pinned: 0,
            last_use: self.clock,
            next_use_hint: None,
            dirty: false,
            host_copy_valid: true,
        });
        self.emit(MemEvent::RegisterHost { id, bytes, class });
        id
    }

    /// Registers a freshly produced device-resident tensor (a task output).
    /// Fails if the device lacks free capacity — callers must evict first
    /// (see [`MemoryManager::make_room`]).
    pub fn alloc_on_device(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        class: TensorClass,
        dev: DeviceId,
    ) -> Result<TensorId, MemError> {
        if self.free_bytes(dev)? < bytes {
            return Err(MemError::InsufficientMemory {
                device: dev,
                needed: bytes,
                capacity: self.capacity(dev)?,
            });
        }
        self.charge(dev, bytes);
        let id = self.next_id;
        self.next_id += 1;
        self.clock += 1;
        debug_assert_eq!(id as usize, self.tensors.len());
        self.tensors.push(TensorInfo {
            id,
            name: name.into(),
            bytes,
            class,
            residency: Residency::OnDevice(dev),
            pinned: 0,
            last_use: self.clock,
            next_use_hint: None,
            // Fresh device-side outputs have no host copy yet.
            dirty: true,
            host_copy_valid: false,
        });
        self.evictable[dev].insert(id);
        self.emit(MemEvent::Alloc {
            id,
            dev,
            bytes,
            class,
        });
        Ok(id)
    }

    /// Marks a tensor as just-accessed (bumps the LRU clock).
    pub fn touch(&mut self, id: TensorId) -> Result<(), MemError> {
        self.clock += 1;
        let clock = self.clock;
        self.info_mut(id)?.last_use = clock;
        self.emit(MemEvent::Use { id });
        Ok(())
    }

    /// Installs/clears the scheduler's next-use hint.
    pub fn set_next_use(&mut self, id: TensorId, hint: Option<u64>) -> Result<(), MemError> {
        self.info_mut(id)?.next_use_hint = hint;
        Ok(())
    }

    /// Pins a tensor (must be device-resident); pinned tensors cannot be
    /// evicted. Pins nest.
    pub fn pin(&mut self, id: TensorId) -> Result<(), MemError> {
        let info = self.info_mut(id)?;
        match info.residency {
            Residency::OnDevice(d) => {
                info.pinned += 1;
                if info.pinned == 1 {
                    self.evictable[d].remove(&id);
                }
                self.emit(MemEvent::Pin { id });
                Ok(())
            }
            ref other => Err(MemError::InvalidState {
                id,
                op: "pin",
                state: other.describe(),
            }),
        }
    }

    /// Releases one pin.
    pub fn unpin(&mut self, id: TensorId) -> Result<(), MemError> {
        let info = self.info_mut(id)?;
        if info.pinned == 0 {
            return Err(MemError::InvalidState {
                id,
                op: "unpin",
                state: "not pinned".to_string(),
            });
        }
        info.pinned -= 1;
        if info.pinned == 0 {
            if let Residency::OnDevice(d) = info.residency {
                self.evictable[d].insert(id);
            }
        }
        self.emit(MemEvent::Unpin { id });
        Ok(())
    }

    /// Frees a tensor (any non-in-flight, unpinned state). Device capacity
    /// is released immediately; no swap traffic is charged (discarding is
    /// free — this is why dead activations should be freed, not evicted).
    pub fn free(&mut self, id: TensorId) -> Result<(), MemError> {
        let (residency, pinned, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.pinned, t.bytes)
        };
        if pinned > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "free",
                state: "pinned".to_string(),
            });
        }
        match residency {
            Residency::OnDevice(d) => {
                self.release(d, bytes);
                self.evictable[d].remove(&id);
            }
            Residency::OnHost | Residency::Dead => {}
            moving => {
                return Err(MemError::InvalidState {
                    id,
                    op: "free",
                    state: moving.describe(),
                })
            }
        }
        self.info_mut(id)?.residency = Residency::Dead;
        self.emit(MemEvent::Free { id });
        Ok(())
    }

    /// Unpinned tensors resident on `dev`, as eviction candidates.
    ///
    /// Served from the per-device `evictable` index, so the cost is
    /// O(k) in the number of candidates rather than O(total tensors).
    /// `BTreeSet` iteration is ascending by id — exactly the
    /// deterministic order the previous full filter-and-sort produced.
    pub fn eviction_candidates(&self, dev: DeviceId) -> Vec<&TensorInfo> {
        match self.evictable.get(dev) {
            Some(set) => set.iter().map(|&id| &self.tensors[id as usize]).collect(),
            None => Vec::new(),
        }
    }

    /// Plans evictions to free at least `bytes` on `dev` (over and above
    /// current free space). Does not change state.
    pub fn make_room(
        &self,
        dev: DeviceId,
        bytes: u64,
        policy: &dyn EvictionPolicy,
    ) -> Result<Vec<TensorId>, MemError> {
        let mut free = self.free_bytes(dev)?;
        if free >= bytes {
            return Ok(Vec::new());
        }
        let mut candidates = self.eviction_candidates(dev);
        let mut victims = Vec::new();
        while free < bytes {
            let victim = policy.choose(&candidates).ok_or({
                MemError::InsufficientMemory {
                    device: dev,
                    needed: bytes,
                    capacity: self.capacities[dev],
                }
            })?;
            // The policy is an external trait object: a buggy
            // implementation returning an id outside the candidate set is
            // an error to report, not an invariant to die on.
            let idx = candidates
                .iter()
                .position(|t| t.id == victim)
                .ok_or_else(|| MemError::InvalidState {
                    id: victim,
                    op: "evict",
                    state: "not in the eviction-candidate set the policy was offered".to_string(),
                })?;
            free += candidates[idx].bytes;
            victims.push(victim);
            candidates.remove(idx);
        }
        Ok(victims)
    }

    /// Plans how to make tensor `id` resident on `dev`: which tensors to
    /// evict and whether/where a transfer is needed. Does not change state.
    pub fn plan_fetch(
        &self,
        id: TensorId,
        dev: DeviceId,
        policy: &dyn EvictionPolicy,
    ) -> Result<FetchPlan, MemError> {
        let info = self.info(id)?;
        match info.residency {
            Residency::OnDevice(d) if d == dev => Ok(FetchPlan {
                tensor: id,
                evictions: Vec::new(),
                needs_transfer: false,
                src_device: None,
            }),
            Residency::OnDevice(src) => Ok(FetchPlan {
                tensor: id,
                evictions: self.make_room(dev, info.bytes, policy)?,
                needs_transfer: true,
                src_device: Some(src),
            }),
            Residency::OnHost => Ok(FetchPlan {
                tensor: id,
                evictions: self.make_room(dev, info.bytes, policy)?,
                needs_transfer: true,
                src_device: None,
            }),
            ref other => Err(MemError::InvalidState {
                id,
                op: "plan_fetch",
                state: other.describe(),
            }),
        }
    }

    /// Begins evicting a tensor to host. Capacity stays charged until
    /// [`MemoryManager::finish_swap_out`]. Returns `(src_device, bytes)`
    /// for the transfer. Swap-out volume is tallied here.
    pub fn begin_swap_out(&mut self, id: TensorId) -> Result<(DeviceId, u64), MemError> {
        let (residency, pinned, bytes, class) = {
            let t = self.info(id)?;
            (t.residency, t.pinned, t.bytes, t.class)
        };
        let src = match residency {
            Residency::OnDevice(d) => d,
            other => {
                return Err(MemError::InvalidState {
                    id,
                    op: "begin_swap_out",
                    state: other.describe(),
                })
            }
        };
        if pinned > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "begin_swap_out",
                state: "pinned".to_string(),
            });
        }
        self.info_mut(id)?.residency = Residency::MovingToHost { src };
        self.evictable[src].remove(&id);
        self.stats.record(src, Direction::Out, class, bytes);
        self.emit(MemEvent::BeginSwapOut { id, src, bytes });
        Ok((src, bytes))
    }

    /// Completes a swap-out: bytes have left the device; capacity freed.
    pub fn finish_swap_out(&mut self, id: TensorId) -> Result<(), MemError> {
        let (residency, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.bytes)
        };
        match residency {
            Residency::MovingToHost { src } => {
                self.release(src, bytes);
                let t = self.info_mut(id)?;
                t.residency = Residency::OnHost;
                t.dirty = false;
                t.host_copy_valid = true;
                self.emit(MemEvent::FinishSwapOut { id, src, bytes });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "finish_swap_out",
                state: other.describe(),
            }),
        }
    }

    /// Begins a host→device swap-in. Destination capacity is reserved now;
    /// fails if insufficient (evict first). Swap-in volume is tallied here.
    pub fn begin_swap_in(&mut self, id: TensorId, dev: DeviceId) -> Result<u64, MemError> {
        let (residency, bytes, class) = {
            let t = self.info(id)?;
            (t.residency, t.bytes, t.class)
        };
        if residency != Residency::OnHost {
            return Err(MemError::InvalidState {
                id,
                op: "begin_swap_in",
                state: residency.describe(),
            });
        }
        if self.free_bytes(dev)? < bytes {
            return Err(MemError::InsufficientMemory {
                device: dev,
                needed: bytes,
                capacity: self.capacity(dev)?,
            });
        }
        self.charge(dev, bytes);
        self.info_mut(id)?.residency = Residency::MovingToDevice {
            dst: dev,
            src: None,
        };
        self.stats.record(dev, Direction::In, class, bytes);
        self.emit(MemEvent::BeginSwapIn {
            id,
            dst: dev,
            bytes,
        });
        Ok(bytes)
    }

    /// Begins a device→device (p2p) move. Capacity is charged on the
    /// destination while the source stays charged until the move finishes
    /// (both copies exist in flight). Tallied as p2p, **not** swap volume —
    /// the whole point of Harmony's optimization 3.
    pub fn begin_p2p(&mut self, id: TensorId, dst: DeviceId) -> Result<(DeviceId, u64), MemError> {
        let (residency, pinned, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.pinned, t.bytes)
        };
        let src = match residency {
            Residency::OnDevice(d) if d != dst => d,
            other => {
                return Err(MemError::InvalidState {
                    id,
                    op: "begin_p2p",
                    state: other.describe(),
                })
            }
        };
        if pinned > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "begin_p2p",
                state: "pinned".to_string(),
            });
        }
        if self.free_bytes(dst)? < bytes {
            return Err(MemError::InsufficientMemory {
                device: dst,
                needed: bytes,
                capacity: self.capacity(dst)?,
            });
        }
        self.charge(dst, bytes);
        self.info_mut(id)?.residency = Residency::MovingToDevice {
            dst,
            src: Some(src),
        };
        self.evictable[src].remove(&id);
        self.stats.record_p2p(bytes);
        self.emit(MemEvent::BeginP2p {
            id,
            src,
            dst,
            bytes,
        });
        Ok((src, bytes))
    }

    /// Completes a swap-in or p2p move: tensor becomes device-resident;
    /// for p2p the source copy is released.
    pub fn finish_move_to_device(&mut self, id: TensorId) -> Result<DeviceId, MemError> {
        let (residency, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.bytes)
        };
        match residency {
            Residency::MovingToDevice { dst, src } => {
                if let Some(s) = src {
                    self.release(s, bytes);
                }
                self.clock += 1;
                let clock = self.clock;
                let t = self.info_mut(id)?;
                t.residency = Residency::OnDevice(dst);
                t.last_use = clock;
                // A host->device copy leaves the host copy valid; a p2p
                // move does not touch host validity.
                if src.is_none() {
                    t.dirty = false;
                }
                // A moving tensor can never be pinned (pin requires
                // device residency), so it is evictable on arrival.
                self.evictable[dst].insert(id);
                self.emit(MemEvent::FinishMove {
                    id,
                    dst,
                    p2p: src.is_some(),
                });
                Ok(dst)
            }
            other => Err(MemError::InvalidState {
                id,
                op: "finish_move_to_device",
                state: other.describe(),
            }),
        }
    }

    /// Reverts an in-flight move toward a device: the resilience layer's
    /// transfer-cancellation path (a fault degraded the link mid-move and
    /// the runtime will re-issue the payload over another route). The
    /// destination reservation is released and the tensor returns to its
    /// pre-move residency — the source device for a p2p move (re-entering
    /// that device's evictable index), host for a swap-in.
    ///
    /// Traffic recorded at `begin_*` stays tallied: bytes are charged to
    /// the *attempt*, matching the simulator's at-issue channel
    /// accounting, and only faulted runs ever cancel.
    pub fn cancel_move_to_device(&mut self, id: TensorId) -> Result<(), MemError> {
        let (residency, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.bytes)
        };
        match residency {
            Residency::MovingToDevice { dst, src } => {
                self.release(dst, bytes);
                match src {
                    Some(s) => {
                        // A moving tensor can never be pinned (pin
                        // requires device residency), so it is evictable
                        // again the moment it is back on `s`.
                        self.info_mut(id)?.residency = Residency::OnDevice(s);
                        self.evictable[s].insert(id);
                    }
                    None => {
                        self.info_mut(id)?.residency = Residency::OnHost;
                    }
                }
                self.emit(MemEvent::CancelMove {
                    id,
                    dst,
                    p2p: src.is_some(),
                });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "cancel_move_to_device",
                state: other.describe(),
            }),
        }
    }

    /// Marks a tensor as modified on its device (its host copy, if any, is
    /// now stale). Runtimes call this for every tensor a task writes.
    pub fn mark_dirty(&mut self, id: TensorId) -> Result<(), MemError> {
        let t = self.info_mut(id)?;
        t.dirty = true;
        t.host_copy_valid = false;
        self.emit(MemEvent::MarkDirty { id });
        Ok(())
    }

    /// True if evicting this tensor needs no writeback: it is clean and a
    /// valid host copy exists. Harmony exploits this to make post-forward
    /// weight evictions free (the "3 vs 4m+2" asymmetry of §3); baseline
    /// per-GPU virtualization ignores it and always writes back.
    pub fn can_drop(&self, id: TensorId) -> Result<bool, MemError> {
        let t = self.info(id)?;
        Ok(!t.dirty && t.host_copy_valid && matches!(t.residency, Residency::OnDevice(_)))
    }

    /// Instantly demotes a clean, host-backed, unpinned device tensor to
    /// host residency with **no transfer and no swap volume** (the device
    /// copy is simply discarded). Errors unless [`MemoryManager::can_drop`].
    pub fn drop_to_host(&mut self, id: TensorId) -> Result<(), MemError> {
        let (residency, pinned, bytes, dirty, host_copy_valid) = {
            let t = self.info(id)?;
            (t.residency, t.pinned, t.bytes, t.dirty, t.host_copy_valid)
        };
        if pinned > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "drop_to_host",
                state: "pinned".to_string(),
            });
        }
        match residency {
            Residency::OnDevice(d) if !dirty && host_copy_valid => {
                self.release(d, bytes);
                self.evictable[d].remove(&id);
                self.info_mut(id)?.residency = Residency::OnHost;
                self.emit(MemEvent::DropToHost {
                    id,
                    dev: d,
                    was_dirty: dirty,
                    had_host_copy: host_copy_valid,
                });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "drop_to_host",
                state: if dirty {
                    "dirty".to_string()
                } else {
                    other.describe()
                },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, NextUseAware};

    fn mm() -> MemoryManager {
        MemoryManager::new(vec![1000, 1000])
    }

    #[test]
    fn make_room_reports_a_policy_that_picks_a_non_candidate() {
        // A policy returning an id outside the offered candidate set is a
        // bug in external code: the manager must surface a typed error,
        // not panic.
        struct Rogue;
        impl crate::policy::EvictionPolicy for Rogue {
            fn choose(&self, _candidates: &[&TensorInfo]) -> Option<TensorId> {
                Some(TensorId::MAX)
            }
            fn name(&self) -> &'static str {
                "rogue"
            }
        }
        let mut m = mm();
        let a = m.alloc_on_device("a", 800, TensorClass::Stash, 0).unwrap();
        let _ = a;
        let err = m.make_room(0, 500, &Rogue).unwrap_err();
        assert!(
            matches!(err, MemError::InvalidState { id, op: "evict", .. } if id == TensorId::MAX),
            "wrong error: {err}"
        );
    }

    #[test]
    fn register_and_alloc_account_capacity() {
        let mut m = mm();
        let w = m.register_on_host("w", 400, TensorClass::Weight);
        assert_eq!(m.info(w).unwrap().residency, Residency::OnHost);
        assert_eq!(m.used(0).unwrap(), 0);
        let a = m
            .alloc_on_device("a", 600, TensorClass::Activation, 0)
            .unwrap();
        assert_eq!(m.used(0).unwrap(), 600);
        assert_eq!(m.free_bytes(0).unwrap(), 400);
        assert_eq!(m.info(a).unwrap().residency, Residency::OnDevice(0));
        // Over-capacity alloc fails.
        assert!(matches!(
            m.alloc_on_device("b", 500, TensorClass::Activation, 0),
            Err(MemError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn swap_in_lifecycle() {
        let mut m = mm();
        let w = m.register_on_host("w", 400, TensorClass::Weight);
        let bytes = m.begin_swap_in(w, 0).unwrap();
        assert_eq!(bytes, 400);
        assert_eq!(m.used(0).unwrap(), 400, "reserved during flight");
        assert!(m.pin(w).is_err(), "cannot pin in flight");
        assert_eq!(m.finish_move_to_device(w).unwrap(), 0);
        assert_eq!(m.info(w).unwrap().residency, Residency::OnDevice(0));
        assert_eq!(m.stats().device_total(0, Direction::In), 400);
    }

    #[test]
    fn swap_out_lifecycle_frees_capacity_at_finish() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 700, TensorClass::Stash, 0).unwrap();
        let (src, bytes) = m.begin_swap_out(a).unwrap();
        assert_eq!((src, bytes), (0, 700));
        assert_eq!(m.used(0).unwrap(), 700, "still charged in flight");
        m.finish_swap_out(a).unwrap();
        assert_eq!(m.used(0).unwrap(), 0);
        assert_eq!(m.info(a).unwrap().residency, Residency::OnHost);
        assert_eq!(m.stats().device_total(0, Direction::Out), 700);
    }

    #[test]
    fn p2p_counts_separately_from_swaps() {
        let mut m = mm();
        let a = m
            .alloc_on_device("a", 300, TensorClass::Activation, 0)
            .unwrap();
        let (src, bytes) = m.begin_p2p(a, 1).unwrap();
        assert_eq!((src, bytes), (0, 300));
        assert_eq!(m.used(0).unwrap(), 300, "src charged in flight");
        assert_eq!(m.used(1).unwrap(), 300, "dst reserved in flight");
        m.finish_move_to_device(a).unwrap();
        assert_eq!(m.used(0).unwrap(), 0);
        assert_eq!(m.used(1).unwrap(), 300);
        assert_eq!(m.stats().p2p_bytes, 300);
        assert_eq!(m.stats().total(), 0, "no host swap volume");
    }

    #[test]
    fn cancel_move_reverts_p2p_to_source() {
        let mut m = mm();
        let a = m
            .alloc_on_device("a", 300, TensorClass::Activation, 0)
            .unwrap();
        m.begin_p2p(a, 1).unwrap();
        m.cancel_move_to_device(a).unwrap();
        assert_eq!(m.info(a).unwrap().residency, Residency::OnDevice(0));
        assert_eq!(m.used(0).unwrap(), 300, "source copy still charged");
        assert_eq!(m.used(1).unwrap(), 0, "destination reservation released");
        // Back in the source's evictable index.
        assert_eq!(m.eviction_candidates(0).len(), 1);
        assert!(m.eviction_candidates(1).is_empty());
        // Attempted traffic stays tallied (charged to the attempt).
        assert_eq!(m.stats().p2p_bytes, 300);
        // The tensor is fully live again: a fresh move works.
        m.begin_p2p(a, 1).unwrap();
        m.finish_move_to_device(a).unwrap();
        assert_eq!(m.info(a).unwrap().residency, Residency::OnDevice(1));
    }

    #[test]
    fn cancel_move_reverts_swap_in_to_host() {
        let mut m = mm();
        let w = m.register_on_host("w", 400, TensorClass::Weight);
        m.begin_swap_in(w, 0).unwrap();
        m.cancel_move_to_device(w).unwrap();
        assert_eq!(m.info(w).unwrap().residency, Residency::OnHost);
        assert_eq!(m.used(0).unwrap(), 0, "reservation released");
        assert!(m.info(w).unwrap().host_copy_valid);
        // Only in-flight-to-device states are cancellable.
        assert!(m.cancel_move_to_device(w).is_err());
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        assert!(m.cancel_move_to_device(w).is_err(), "already arrived");
    }

    #[test]
    fn pinning_blocks_eviction_and_free() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 300, TensorClass::Weight, 0).unwrap();
        m.pin(a).unwrap();
        assert!(m.begin_swap_out(a).is_err());
        assert!(m.free(a).is_err());
        assert!(m.eviction_candidates(0).is_empty());
        m.unpin(a).unwrap();
        assert!(m.unpin(a).is_err(), "unbalanced unpin");
        assert_eq!(m.eviction_candidates(0).len(), 1);
    }

    #[test]
    fn free_releases_without_swap_traffic() {
        let mut m = mm();
        let a = m
            .alloc_on_device("a", 300, TensorClass::Activation, 0)
            .unwrap();
        m.free(a).unwrap();
        assert_eq!(m.used(0).unwrap(), 0);
        assert_eq!(m.stats().total(), 0);
        assert!(m.touch(a).is_ok(), "dead tensors still known");
        assert!(m.begin_swap_in(a, 0).is_err());
    }

    #[test]
    fn make_room_picks_lru_victims() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 400, TensorClass::Weight, 0).unwrap();
        let b = m.alloc_on_device("b", 400, TensorClass::Weight, 0).unwrap();
        m.touch(a).unwrap(); // b is now least recently used
        let victims = m.make_room(0, 300, &Lru).unwrap();
        assert_eq!(victims, vec![b]);
        // Needs more than one victim.
        let victims = m.make_room(0, 900, &Lru).unwrap();
        assert_eq!(victims.len(), 2);
        // Impossible even with every candidate evicted.
        assert!(m.make_room(0, 1500, &Lru).is_err());
    }

    #[test]
    fn plan_fetch_covers_all_sources() {
        let mut m = mm();
        let w = m.register_on_host("w", 500, TensorClass::Weight);
        let plan = m.plan_fetch(w, 0, &Lru).unwrap();
        assert!(plan.needs_transfer);
        assert!(plan.src_device.is_none());
        assert!(plan.evictions.is_empty());

        m.begin_swap_in(w, 0).unwrap();
        assert!(m.plan_fetch(w, 0, &Lru).is_err(), "in flight");
        m.finish_move_to_device(w).unwrap();
        let plan = m.plan_fetch(w, 0, &Lru).unwrap();
        assert!(!plan.needs_transfer, "already resident");

        // From another device → p2p candidate.
        let plan = m.plan_fetch(w, 1, &Lru).unwrap();
        assert!(plan.needs_transfer);
        assert_eq!(plan.src_device, Some(0));
    }

    #[test]
    fn plan_fetch_evicts_when_full() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 900, TensorClass::Stash, 0).unwrap();
        let w = m.register_on_host("w", 500, TensorClass::Weight);
        let plan = m.plan_fetch(w, 0, &Lru).unwrap();
        assert_eq!(plan.evictions, vec![a]);
    }

    #[test]
    fn next_use_hints_steer_eviction() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 500, TensorClass::Weight, 0).unwrap();
        let b = m.alloc_on_device("b", 500, TensorClass::Weight, 0).unwrap();
        // a used again soon, b never again: NextUseAware must evict b even
        // though LRU would evict a.
        m.set_next_use(a, Some(5)).unwrap();
        m.set_next_use(b, None).unwrap();
        m.touch(b).unwrap(); // make a the LRU victim
        assert_eq!(m.make_room(0, 100, &Lru).unwrap(), vec![a]);
        assert_eq!(m.make_room(0, 100, &NextUseAware).unwrap(), vec![b]);
    }

    #[test]
    fn peak_usage_tracks_high_water_mark() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 800, TensorClass::Stash, 0).unwrap();
        m.free(a).unwrap();
        let _ = m.alloc_on_device("b", 300, TensorClass::Stash, 0).unwrap();
        assert_eq!(m.peak_used(0).unwrap(), 800);
        assert_eq!(m.used(0).unwrap(), 300);
    }

    #[test]
    fn host_used_tracks_residency() {
        let mut m = mm();
        let w = m.register_on_host("w", 400, TensorClass::Weight);
        assert_eq!(m.host_used(), 400);
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        assert_eq!(m.host_used(), 0);
        m.begin_swap_out(w).unwrap();
        assert_eq!(m.host_used(), 400, "in-flight-to-host counts");
        m.finish_swap_out(w).unwrap();
        assert_eq!(m.host_used(), 400);
        m.free(w).unwrap();
        assert_eq!(m.host_used(), 0);
    }

    #[test]
    fn unknown_ids_and_devices_error() {
        let mut m = mm();
        assert!(m.info(99).is_err());
        assert!(m.touch(99).is_err());
        assert!(m.capacity(7).is_err());
        assert!(m.alloc_on_device("x", 10, TensorClass::Weight, 9).is_err());
    }
}

#[cfg(test)]
mod dirty_tests {
    use super::*;
    use crate::TensorClass;

    #[test]
    fn fresh_device_tensors_are_dirty_without_host_copy() {
        let mut m = MemoryManager::new(vec![1000]);
        let a = m.alloc_on_device("a", 100, TensorClass::Stash, 0).unwrap();
        assert!(m.info(a).unwrap().dirty);
        assert!(!m.info(a).unwrap().host_copy_valid);
        assert!(!m.can_drop(a).unwrap());
        assert!(m.drop_to_host(a).is_err());
    }

    #[test]
    fn swapped_in_weights_are_clean_and_droppable() {
        let mut m = MemoryManager::new(vec![1000]);
        let w = m.register_on_host("w", 100, TensorClass::Weight);
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        assert!(m.can_drop(w).unwrap(), "clean + host copy valid");
        let before = m.stats().total();
        m.drop_to_host(w).unwrap();
        assert_eq!(m.stats().total(), before, "dropping is free");
        assert_eq!(m.info(w).unwrap().residency, Residency::OnHost);
        assert_eq!(m.used(0).unwrap(), 0);
    }

    #[test]
    fn marking_dirty_invalidates_host_copy() {
        let mut m = MemoryManager::new(vec![1000]);
        let w = m.register_on_host("w", 100, TensorClass::Weight);
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        m.mark_dirty(w).unwrap();
        assert!(!m.can_drop(w).unwrap());
        // A dirty tensor must be swapped out (writeback) to become clean.
        m.begin_swap_out(w).unwrap();
        m.finish_swap_out(w).unwrap();
        assert!(!m.info(w).unwrap().dirty);
        assert!(m.info(w).unwrap().host_copy_valid);
    }

    #[test]
    fn pinned_tensors_cannot_be_dropped() {
        let mut m = MemoryManager::new(vec![1000]);
        let w = m.register_on_host("w", 100, TensorClass::Weight);
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        m.pin(w).unwrap();
        assert!(m.drop_to_host(w).is_err());
        m.unpin(w).unwrap();
        assert!(m.drop_to_host(w).is_ok());
    }

    /// The dense recomputation the indexed `eviction_candidates` replaced.
    fn dense_candidates(m: &MemoryManager, dev: DeviceId) -> Vec<TensorId> {
        let mut v: Vec<TensorId> = m
            .tensors
            .iter()
            .filter(|t| t.pinned == 0 && t.residency == Residency::OnDevice(dev))
            .map(|t| t.id)
            .collect();
        v.sort_unstable();
        v
    }

    fn assert_index_matches_dense(m: &MemoryManager) {
        for dev in 0..m.num_devices() {
            let indexed: Vec<TensorId> = m.eviction_candidates(dev).iter().map(|t| t.id).collect();
            assert_eq!(
                indexed,
                dense_candidates(m, dev),
                "evictable index diverged from dense filter+sort on dev {dev}"
            );
        }
    }

    #[test]
    fn eviction_candidate_order_matches_dense_recomputation() {
        let mut m = MemoryManager::new(vec![1000, 1000]);
        let a = m.alloc_on_device("a", 100, TensorClass::Weight, 0).unwrap();
        let b = m
            .alloc_on_device("b", 200, TensorClass::Activation, 0)
            .unwrap();
        let c = m.alloc_on_device("c", 300, TensorClass::Grad, 1).unwrap();
        let h = m.register_on_host("h", 150, TensorClass::Weight);
        assert_index_matches_dense(&m);

        m.pin(a).unwrap();
        assert_index_matches_dense(&m);
        m.pin(a).unwrap(); // nested pin: still out of the index exactly once
        assert_index_matches_dense(&m);
        m.unpin(a).unwrap();
        assert_index_matches_dense(&m); // still pinned (count 1)
        m.unpin(a).unwrap();
        assert_index_matches_dense(&m); // back in the index

        m.begin_swap_out(b).unwrap();
        assert_index_matches_dense(&m); // in flight: not a candidate
        m.finish_swap_out(b).unwrap();
        assert_index_matches_dense(&m);

        m.begin_swap_in(h, 0).unwrap();
        assert_index_matches_dense(&m);
        m.finish_move_to_device(h).unwrap();
        assert_index_matches_dense(&m);

        m.begin_p2p(c, 0).unwrap();
        assert_index_matches_dense(&m); // leaves dev 1 immediately
        m.finish_move_to_device(c).unwrap();
        assert_index_matches_dense(&m); // arrives on dev 0

        m.drop_to_host(h).unwrap();
        assert_index_matches_dense(&m);
        m.free(a).unwrap();
        assert_index_matches_dense(&m);

        // Candidates on dev 0 are ascending by id, as policies require.
        let ids: Vec<TensorId> = m.eviction_candidates(0).iter().map(|t| t.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        // Unknown device: empty, no panic (old behavior preserved).
        assert!(m.eviction_candidates(7).is_empty());
    }

    #[test]
    fn p2p_move_preserves_dirty_state() {
        let mut m = MemoryManager::new(vec![1000, 1000]);
        let a = m
            .alloc_on_device("a", 100, TensorClass::Activation, 0)
            .unwrap();
        assert!(m.info(a).unwrap().dirty);
        m.begin_p2p(a, 1).unwrap();
        m.finish_move_to_device(a).unwrap();
        assert!(m.info(a).unwrap().dirty, "p2p does not sync host");
        assert!(!m.info(a).unwrap().host_copy_valid);
    }
}
