//! The tensor-residency state machine and per-device capacity accounting.
//!
//! Internally the manager keeps its per-tensor hot fields in flat
//! struct-of-arrays planes indexed by [`TensorId`] and maintains, per
//! device, an *ordered victim index* keyed by the eviction policy's exact
//! comparison, so `make_room` pops victims in O(log n) each and
//! `plan_fetch` plans without allocating (DESIGN §13). The pre-rewrite
//! manager survives as `crate::dense` behind the `dense_memory` feature
//! and `harness::memdiff` proves the two byte-identical.

use std::collections::BTreeSet;

use crate::observe::{MemEvent, MemObserver};
use crate::policy::{EvictionPolicy, PolicyIndexKind};
use crate::stats::{Direction, SwapStats};
use crate::{DeviceId, MemError, TensorClass, TensorId};

/// Where a tensor's bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// In host (CPU) memory.
    OnHost,
    /// Resident in a device's memory.
    OnDevice(DeviceId),
    /// In flight toward a device (swap-in or p2p); destination capacity is
    /// already reserved. `src` is `Some` for p2p moves (source capacity
    /// stays charged until the move finishes).
    MovingToDevice {
        /// Destination device.
        dst: DeviceId,
        /// Source device for p2p moves; `None` when coming from host.
        src: Option<DeviceId>,
    },
    /// In flight toward host (swap-out); source capacity stays charged
    /// until the bytes have left.
    MovingToHost {
        /// Source device.
        src: DeviceId,
    },
    /// Freed; the id is retained for error reporting only.
    Dead,
}

impl Residency {
    pub(crate) fn describe(&self) -> String {
        match self {
            Residency::OnHost => "on host".to_string(),
            Residency::OnDevice(d) => format!("on device {d}"),
            Residency::MovingToDevice { dst, src } => match src {
                Some(s) => format!("moving p2p {s} -> {dst}"),
                None => format!("swapping in to {dst}"),
            },
            Residency::MovingToHost { src } => format!("swapping out of {src}"),
            Residency::Dead => "dead".to_string(),
        }
    }
}

/// Owned per-tensor metadata record — the view given to eviction policies
/// (and the storage layout of the frozen `dense_memory` reference). The
/// manager's own hot path keeps these fields in flat planes instead; use
/// [`MemoryManager::info`] for an allocation-free borrowed [`TensorView`].
#[derive(Debug, Clone)]
pub struct TensorInfo {
    /// Tensor id.
    pub id: TensorId,
    /// Debug name, e.g. `"L3.W"`.
    pub name: String,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Swap-model class.
    pub class: TensorClass,
    /// Current residency.
    pub residency: Residency,
    /// Pin count; pinned tensors are never eviction candidates.
    pub pinned: u32,
    /// Logical clock of last access (LRU).
    pub last_use: u64,
    /// Scheduler hint: logical time of next use (Belady-style eviction).
    pub next_use_hint: Option<u64>,
    /// True if the device copy has been modified since the last host sync
    /// (evicting a dirty tensor requires writeback).
    pub dirty: bool,
    /// True if a valid copy of the bytes exists in host memory (clean
    /// tensors with a valid host copy can be *dropped* instead of swapped
    /// out — Harmony's cleanliness tracking; baselines write back always).
    pub host_copy_valid: bool,
}

/// Borrowed, allocation-free view of one tensor's metadata. Same fields as
/// [`TensorInfo`] with the name borrowed from the manager.
#[derive(Debug, Clone, Copy)]
pub struct TensorView<'a> {
    /// Tensor id.
    pub id: TensorId,
    /// Debug name, e.g. `"L3.W"`.
    pub name: &'a str,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Swap-model class.
    pub class: TensorClass,
    /// Current residency.
    pub residency: Residency,
    /// Pin count; pinned tensors are never eviction candidates.
    pub pinned: u32,
    /// Logical clock of last access (LRU).
    pub last_use: u64,
    /// Scheduler hint: logical time of next use (Belady-style eviction).
    pub next_use_hint: Option<u64>,
    /// True if the device copy has been modified since the last host sync.
    pub dirty: bool,
    /// True if a valid copy of the bytes exists in host memory.
    pub host_copy_valid: bool,
}

impl<'a> TensorView<'a> {
    // Only the frozen dense core stores owned records to view through.
    #[cfg_attr(not(feature = "dense_memory"), allow(dead_code))]
    pub(crate) fn of(t: &'a TensorInfo) -> Self {
        TensorView {
            id: t.id,
            name: &t.name,
            bytes: t.bytes,
            class: t.class,
            residency: t.residency,
            pinned: t.pinned,
            last_use: t.last_use,
            next_use_hint: t.next_use_hint,
            dirty: t.dirty,
            host_copy_valid: t.host_copy_valid,
        }
    }

    /// Owned copy of this record (e.g. to offer to an [`EvictionPolicy`]).
    pub fn to_owned_info(&self) -> TensorInfo {
        TensorInfo {
            id: self.id,
            name: self.name.to_string(),
            bytes: self.bytes,
            class: self.class,
            residency: self.residency,
            pinned: self.pinned,
            last_use: self.last_use,
            next_use_hint: self.next_use_hint,
            dirty: self.dirty,
            host_copy_valid: self.host_copy_valid,
        }
    }
}

/// What the runtime must do to make a tensor resident on a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchPlan {
    /// The tensor being fetched.
    pub tensor: TensorId,
    /// Tensors to swap out of the destination first (in order).
    pub evictions: Vec<TensorId>,
    /// Whether a transfer is required (false → already resident).
    pub needs_transfer: bool,
    /// If the tensor currently sits on another device, that device
    /// (enables a p2p move instead of a host round-trip).
    pub src_device: Option<DeviceId>,
}

/// The transfer half of a fetch plan, as returned by the allocation-free
/// [`MemoryManager::plan_fetch_into`] (evictions land in the caller's
/// buffer instead of a fresh `Vec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchAction {
    /// Whether a transfer is required (false → already resident).
    pub needs_transfer: bool,
    /// If the tensor currently sits on another device, that device
    /// (enables a p2p move instead of a host round-trip).
    pub src_device: Option<DeviceId>,
}

/// Dispatches `$body` against the active core, binding it to `$c` (shared
/// borrow). With `dense_memory` off this compiles to a direct field access.
macro_rules! with_core {
    ($self:expr, $c:ident => $body:expr) => {{
        #[cfg(feature = "dense_memory")]
        {
            if let Some($c) = $self.dense.as_deref() {
                $body
            } else {
                let $c = &$self.fast;
                $body
            }
        }
        #[cfg(not(feature = "dense_memory"))]
        {
            let $c = &$self.fast;
            $body
        }
    }};
}

/// Mutable-borrow variant of [`with_core!`].
macro_rules! with_core_mut {
    ($self:expr, $c:ident => $body:expr) => {{
        #[cfg(feature = "dense_memory")]
        {
            if let Some($c) = $self.dense.as_deref_mut() {
                $body
            } else {
                let $c = &mut $self.fast;
                $body
            }
        }
        #[cfg(not(feature = "dense_memory"))]
        {
            let $c = &mut $self.fast;
            $body
        }
    }};
}

/// Per-device capacity accounting + tensor state machine. See module docs.
#[derive(Debug)]
pub struct MemoryManager {
    fast: FastCore,
    /// When `Some`, every operation routes to the frozen pre-rewrite core
    /// instead (the `dense_memory` differential reference).
    #[cfg(feature = "dense_memory")]
    dense: Option<Box<crate::dense::DenseCore>>,
    observers: Vec<Box<dyn MemObserver>>,
}

impl MemoryManager {
    /// Creates a manager for devices with the given capacities (bytes).
    pub fn new(capacities: Vec<u64>) -> Self {
        MemoryManager {
            fast: FastCore::new(capacities),
            #[cfg(feature = "dense_memory")]
            dense: None,
            observers: Vec::new(),
        }
    }

    /// Rebinds a recycled manager to a new device set, keeping the SoA
    /// planes' heap capacity while discarding all tensor state, stats,
    /// observers, and (if converted) the dense reference core.
    /// Equivalent to `MemoryManager::new(capacities)` for every
    /// observable output — the pooled-run recycling contract (DESIGN
    /// §14, proven fresh-vs-pooled by the harness's reusediff).
    pub fn reset(&mut self, capacities: Vec<u64>) {
        self.fast.reset(capacities);
        #[cfg(feature = "dense_memory")]
        {
            self.dense = None;
        }
        self.observers.clear();
    }

    /// Attaches an observer; every subsequent state transition is reported
    /// to it. With no observers attached, operations pay one branch.
    pub fn attach_observer(&mut self, observer: Box<dyn MemObserver>) {
        with_core_mut!(self, c => c.record = true);
        self.observers.push(observer);
    }

    /// Detaches and returns all observers (e.g. to read accumulated state
    /// after a run).
    pub fn take_observers(&mut self) -> Vec<Box<dyn MemObserver>> {
        with_core_mut!(self, c => {
            c.record = false;
            c.pending.clear();
        });
        std::mem::take(&mut self.observers)
    }

    /// Delivers events the active core buffered during the last operation.
    /// Observers get `&self`; they are temporarily detached so the borrow
    /// of the manager is clean.
    fn flush_events(&mut self) {
        if self.observers.is_empty() {
            return;
        }
        let mut events = with_core_mut!(self, c => std::mem::take(&mut c.pending));
        if events.is_empty() {
            with_core_mut!(self, c => c.pending = events);
            return;
        }
        let mut obs = std::mem::take(&mut self.observers);
        for e in &events {
            for o in &mut obs {
                o.on_event(self, e);
            }
        }
        self.observers = obs;
        events.clear();
        with_core_mut!(self, c => c.pending = events);
    }

    /// Resizes a device's capacity at runtime (fault injection: a capacity
    /// squeeze). Clamped to at least the currently charged bytes so the
    /// capacity invariant (`used ≤ capacity`) survives the change; returns
    /// the effective capacity.
    pub fn set_capacity(&mut self, dev: DeviceId, bytes: u64) -> Result<u64, MemError> {
        let r = with_core_mut!(self, c => c.set_capacity(dev, bytes));
        self.flush_events();
        r
    }

    /// All tensor records (any residency), in ascending id order.
    pub fn tensor_infos(&self) -> impl Iterator<Item = TensorView<'_>> {
        let n = with_core!(self, c => c.tensor_count()) as TensorId;
        (0..n).map(move |id| self.view_known(id))
    }

    fn view_known(&self, id: TensorId) -> TensorView<'_> {
        with_core!(self, c => c.view(id).expect("id below tensor_count is registered"))
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        with_core!(self, c => c.num_devices())
    }

    /// Capacity of a device.
    pub fn capacity(&self, dev: DeviceId) -> Result<u64, MemError> {
        with_core!(self, c => c.capacity(dev))
    }

    /// Bytes currently charged on a device (resident + reserved in-flight).
    pub fn used(&self, dev: DeviceId) -> Result<u64, MemError> {
        with_core!(self, c => c.used(dev))
    }

    /// Free bytes on a device.
    pub fn free_bytes(&self, dev: DeviceId) -> Result<u64, MemError> {
        with_core!(self, c => c.free_bytes(dev))
    }

    /// Peak bytes ever charged on a device.
    pub fn peak_used(&self, dev: DeviceId) -> Result<u64, MemError> {
        with_core!(self, c => c.peak_used(dev))
    }

    /// Swap statistics.
    pub fn stats(&self) -> &SwapStats {
        with_core!(self, c => c.stats())
    }

    /// Bytes currently resident in host memory (tensors on host or on
    /// their way there). The paper treats host RAM as ample ("backing GPU
    /// memory with CPU memory"); this is reporting, not a capacity limit.
    /// Maintained incrementally at every residency transition — O(1), not
    /// a re-scan (the frozen dense core still re-sums; a regression test
    /// checks the two agree).
    pub fn host_used(&self) -> u64 {
        with_core!(self, c => c.host_used())
    }

    /// Tensor metadata, as a borrowed allocation-free view.
    pub fn info(&self, id: TensorId) -> Result<TensorView<'_>, MemError> {
        with_core!(self, c => c.view(id)).ok_or(MemError::UnknownTensor(id))
    }

    /// Registers a host-resident tensor (e.g. initial weights, inputs).
    pub fn register_on_host(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        class: TensorClass,
    ) -> TensorId {
        let name = name.into();
        let id = with_core_mut!(self, c => c.register_on_host(name, bytes, class));
        self.flush_events();
        id
    }

    /// Registers a freshly produced device-resident tensor (a task output).
    /// Fails if the device lacks free capacity — callers must evict first
    /// (see [`MemoryManager::make_room`]).
    pub fn alloc_on_device(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        class: TensorClass,
        dev: DeviceId,
    ) -> Result<TensorId, MemError> {
        let name = name.into();
        let r = with_core_mut!(self, c => c.alloc_on_device(name, bytes, class, dev));
        self.flush_events();
        r
    }

    /// Marks a tensor as just-accessed (bumps the LRU clock).
    pub fn touch(&mut self, id: TensorId) -> Result<(), MemError> {
        let r = with_core_mut!(self, c => c.touch(id));
        self.flush_events();
        r
    }

    /// Installs/clears the scheduler's next-use hint.
    pub fn set_next_use(&mut self, id: TensorId, hint: Option<u64>) -> Result<(), MemError> {
        with_core_mut!(self, c => c.set_next_use(id, hint))
    }

    /// Pins a tensor (must be device-resident); pinned tensors cannot be
    /// evicted. Pins nest.
    pub fn pin(&mut self, id: TensorId) -> Result<(), MemError> {
        let r = with_core_mut!(self, c => c.pin(id));
        self.flush_events();
        r
    }

    /// Releases one pin.
    pub fn unpin(&mut self, id: TensorId) -> Result<(), MemError> {
        let r = with_core_mut!(self, c => c.unpin(id));
        self.flush_events();
        r
    }

    /// Frees a tensor (any non-in-flight, unpinned state). Device capacity
    /// is released immediately; no swap traffic is charged (discarding is
    /// free — this is why dead activations should be freed, not evicted).
    pub fn free(&mut self, id: TensorId) -> Result<(), MemError> {
        let r = with_core_mut!(self, c => c.free(id));
        self.flush_events();
        r
    }

    /// Unpinned tensors resident on `dev`, as eviction candidates, in
    /// ascending id order — served straight off the per-device residency
    /// index without materializing a `Vec`. The fast core's membership
    /// includes pinned tensors (pin/unpin are pure field writes there),
    /// so the pinned filter lives here; the dense core's set is already
    /// unpinned-only and passes the filter trivially.
    pub fn eviction_candidates(&self, dev: DeviceId) -> impl Iterator<Item = TensorView<'_>> {
        let set = with_core!(self, c => c.evictable_set(dev));
        set.into_iter()
            .flat_map(|s| s.iter())
            .map(move |&id| self.view_known(id))
            .filter(|v| v.pinned == 0)
    }

    /// Plans evictions to free at least `bytes` on `dev` (over and above
    /// current free space), appending victims to `out` in eviction order.
    /// Does not change residency state; on error the contents appended to
    /// `out` are unspecified. This is the allocation-free planning entry:
    /// with an index-declaring policy ([`EvictionPolicy::index_kind`])
    /// victims pop off the ordered victim index in O(log n) each.
    pub fn make_room_into(
        &mut self,
        dev: DeviceId,
        bytes: u64,
        policy: &dyn EvictionPolicy,
        out: &mut Vec<TensorId>,
    ) -> Result<(), MemError> {
        with_core_mut!(self, c => c.make_room_into(dev, bytes, policy, out))
    }

    /// Allocating convenience wrapper over
    /// [`MemoryManager::make_room_into`] (counts one `fresh_alloc`).
    pub fn make_room(
        &mut self,
        dev: DeviceId,
        bytes: u64,
        policy: &dyn EvictionPolicy,
    ) -> Result<Vec<TensorId>, MemError> {
        with_core_mut!(self, c => c.stats_mut().counters.fresh_allocs += 1);
        let mut out = Vec::new();
        self.make_room_into(dev, bytes, policy, &mut out)?;
        Ok(out)
    }

    /// Plans how to make tensor `id` resident on `dev`, appending required
    /// evictions to `out`. Does not change residency state; on error the
    /// contents appended to `out` are unspecified.
    pub fn plan_fetch_into(
        &mut self,
        id: TensorId,
        dev: DeviceId,
        policy: &dyn EvictionPolicy,
        out: &mut Vec<TensorId>,
    ) -> Result<FetchAction, MemError> {
        with_core_mut!(self, c => c.plan_fetch_into(id, dev, policy, out))
    }

    /// Allocating convenience wrapper over
    /// [`MemoryManager::plan_fetch_into`] (counts one `fresh_alloc`).
    pub fn plan_fetch(
        &mut self,
        id: TensorId,
        dev: DeviceId,
        policy: &dyn EvictionPolicy,
    ) -> Result<FetchPlan, MemError> {
        with_core_mut!(self, c => c.stats_mut().counters.fresh_allocs += 1);
        let mut evictions = Vec::new();
        let action = self.plan_fetch_into(id, dev, policy, &mut evictions)?;
        Ok(FetchPlan {
            tensor: id,
            evictions,
            needs_transfer: action.needs_transfer,
            src_device: action.src_device,
        })
    }

    /// Begins evicting a tensor to host. Capacity stays charged until
    /// [`MemoryManager::finish_swap_out`]. Returns `(src_device, bytes)`
    /// for the transfer. Swap-out volume is tallied here.
    pub fn begin_swap_out(&mut self, id: TensorId) -> Result<(DeviceId, u64), MemError> {
        let r = with_core_mut!(self, c => c.begin_swap_out(id));
        self.flush_events();
        r
    }

    /// Completes a swap-out: bytes have left the device; capacity freed.
    pub fn finish_swap_out(&mut self, id: TensorId) -> Result<(), MemError> {
        let r = with_core_mut!(self, c => c.finish_swap_out(id));
        self.flush_events();
        r
    }

    /// Begins a host→device swap-in. Destination capacity is reserved now;
    /// fails if insufficient (evict first). Swap-in volume is tallied here.
    pub fn begin_swap_in(&mut self, id: TensorId, dev: DeviceId) -> Result<u64, MemError> {
        let r = with_core_mut!(self, c => c.begin_swap_in(id, dev));
        self.flush_events();
        r
    }

    /// Begins a device→device (p2p) move. Capacity is charged on the
    /// destination while the source stays charged until the move finishes
    /// (both copies exist in flight). Tallied as p2p, **not** swap volume —
    /// the whole point of Harmony's optimization 3.
    pub fn begin_p2p(&mut self, id: TensorId, dst: DeviceId) -> Result<(DeviceId, u64), MemError> {
        let r = with_core_mut!(self, c => c.begin_p2p(id, dst));
        self.flush_events();
        r
    }

    /// Completes a swap-in or p2p move: tensor becomes device-resident;
    /// for p2p the source copy is released.
    pub fn finish_move_to_device(&mut self, id: TensorId) -> Result<DeviceId, MemError> {
        let r = with_core_mut!(self, c => c.finish_move_to_device(id));
        self.flush_events();
        r
    }

    /// Reverts an in-flight move toward a device: the resilience layer's
    /// transfer-cancellation path (a fault degraded the link mid-move and
    /// the runtime will re-issue the payload over another route). The
    /// destination reservation is released and the tensor returns to its
    /// pre-move residency — the source device for a p2p move (re-entering
    /// that device's evictable index), host for a swap-in.
    ///
    /// Traffic recorded at `begin_*` stays tallied: bytes are charged to
    /// the *attempt*, matching the simulator's at-issue channel
    /// accounting, and only faulted runs ever cancel.
    pub fn cancel_move_to_device(&mut self, id: TensorId) -> Result<(), MemError> {
        let r = with_core_mut!(self, c => c.cancel_move_to_device(id));
        self.flush_events();
        r
    }

    /// Marks a tensor as modified on its device (its host copy, if any, is
    /// now stale). Runtimes call this for every tensor a task writes.
    pub fn mark_dirty(&mut self, id: TensorId) -> Result<(), MemError> {
        let r = with_core_mut!(self, c => c.mark_dirty(id));
        self.flush_events();
        r
    }

    /// True if evicting this tensor needs no writeback: it is clean and a
    /// valid host copy exists. Harmony exploits this to make post-forward
    /// weight evictions free (the "3 vs 4m+2" asymmetry of §3); baseline
    /// per-GPU virtualization ignores it and always writes back.
    pub fn can_drop(&self, id: TensorId) -> Result<bool, MemError> {
        with_core!(self, c => c.can_drop(id))
    }

    /// Instantly demotes a clean, host-backed, unpinned device tensor to
    /// host residency with **no transfer and no swap volume** (the device
    /// copy is simply discarded). Errors unless [`MemoryManager::can_drop`].
    pub fn drop_to_host(&mut self, id: TensorId) -> Result<(), MemError> {
        let r = with_core_mut!(self, c => c.drop_to_host(id));
        self.flush_events();
        r
    }

    /// Transplants the manager's state into the frozen pre-rewrite core;
    /// every subsequent operation runs the seed-era dense logic. Valid at
    /// any point in a run (both cores expose identical logical state).
    /// This is the `dense_memory` differential seam used by
    /// `harness::memdiff` — the memory analogue of `use_dense_advance`.
    #[cfg(feature = "dense_memory")]
    pub fn convert_to_dense(&mut self) {
        if self.dense.is_some() {
            return;
        }
        let f = &self.fast;
        let tensors: Vec<TensorInfo> = (0..f.names.len())
            .map(|i| TensorInfo {
                id: i as TensorId,
                name: f.names[i].clone(),
                bytes: f.bytes[i],
                class: f.classes[i],
                residency: f.residency[i],
                pinned: f.pinned[i],
                last_use: f.last_use[i],
                next_use_hint: f.next_use[i],
                dirty: f.dirty[i],
                host_copy_valid: f.host_copy[i],
            })
            .collect();
        // The dense core maintains an unpinned-only evictable set; the
        // fast core's resident membership includes pinned tensors, so
        // filter here rather than handing it over verbatim.
        let evictable: Vec<BTreeSet<TensorId>> = f
            .resident
            .iter()
            .map(|s| {
                s.iter()
                    .copied()
                    .filter(|&id| f.pinned[id as usize] == 0)
                    .collect()
            })
            .collect();
        let core = crate::dense::DenseCore::from_parts(
            f.capacities.clone(),
            f.used.clone(),
            f.peak_used.clone(),
            tensors,
            evictable,
            f.next_id,
            f.clock,
            f.stats.clone(),
            f.record,
            f.pending.clone(),
        );
        self.dense = Some(Box::new(core));
    }

    /// Sabotage hook for differential mutation-catch tests: silently drops
    /// one tensor from the fast core's evictable/victim indexes without
    /// changing its logical state — the "missed membership update" bug
    /// class the memdiff differential must flag. Returns false if there
    /// was nothing to desync (or the dense core is active).
    #[cfg(feature = "mutation_hooks")]
    pub fn arm_index_desync(&mut self, dev: DeviceId) -> bool {
        #[cfg(feature = "dense_memory")]
        if self.dense.is_some() {
            return false;
        }
        self.fast.arm_index_desync(dev)
    }

    /// Sabotage hook for the pooled-run differential's mutation-catch
    /// test: the next [`MemoryManager::reset`] leaks the `peak_used`
    /// plane across the recycle instead of zeroing it — the "stale state
    /// survives reset" bug class the fresh-vs-pooled reusediff must
    /// flag (leaked peaks surface in `RunSummary::peak_mem_bytes`).
    /// One-shot: the armed reset disarms it.
    #[cfg(feature = "mutation_hooks")]
    pub fn arm_leak_plane_across_reset(&mut self) {
        self.fast.leak_peak_across_reset = true;
    }
}

/// Ordered-victim-index key for LRU: ascending `(last_use, id)`.
/// `last_use` values are globally unique (the logical clock strictly
/// increases and each value is assigned to at most one tensor), so keys
/// never collide across tensors.
type LruKey = (u64, TensorId);

/// Ordered-victim-index key for next-use-aware eviction: ascending
/// `(u64::MAX - hint_or_max, last_use, id)` — the componentwise
/// order-reversal of [`crate::NextUseAware`]'s `max_by_key`, so the set's
/// first element is exactly the policy's choice.
type NextUseKey = (u64, u64, TensorId);

/// Device population above which a next-use victim walk builds the
/// ordered NU index. Below it, planning runs a direct selection scan
/// over the resident set: hints churn on every tensor use, so a built
/// index charges `set_next_use` two tree ops per shrinking key, which
/// only amortizes once per-victim scans cost more than the churn.
const NU_INDEX_BUILD_ABOVE: usize = 96;

/// Device population below which an already-built NU index is dropped
/// again (planning reverts to the scan, `set_next_use` back to a pure
/// field write). Strictly less than [`NU_INDEX_BUILD_ABOVE`] so the
/// boundary has hysteresis instead of thrash.
const NU_INDEX_DROP_BELOW: usize = 32;

/// The rewritten hot-path core: SoA planes + incrementally maintained
/// ordered victim indexes + O(1) aggregate counters.
#[derive(Debug)]
struct FastCore {
    capacities: Vec<u64>,
    used: Vec<u64>,
    peak_used: Vec<u64>,
    /// Incrementally maintained host-resident byte total (tensors on host
    /// or moving there) — replaces the seed's O(tensors) re-scan.
    host_bytes: u64,
    // --- SoA planes, indexed flat by TensorId ---
    names: Vec<String>,
    classes: Vec<TensorClass>,
    bytes: Vec<u64>,
    residency: Vec<Residency>,
    pinned: Vec<u32>,
    last_use: Vec<u64>,
    next_use: Vec<Option<u64>>,
    dirty: Vec<bool>,
    host_copy: Vec<bool>,
    /// Per-device membership index of device-resident tensors (pinned
    /// included — pin/unpin stay pure field writes), ascending by id.
    /// The public candidate order filters `pinned == 0` at read time.
    resident: Vec<BTreeSet<TensorId>>,
    /// Lazily built per-device ordered victim index for [`crate::Lru`]
    /// (first *valid* element = the policy's choice). `None` until the
    /// first `make_room` with an LRU-kind policy on that device.
    ///
    /// Maintained under a *lazy one-entry* discipline so the executor's
    /// hot transitions (`touch`/`pin`/`unpin`) stay pure field writes:
    /// each resident tensor has exactly one entry, recorded in the
    /// `lru_entry` plane, whose key is a lower bound on the tensor's
    /// current key (LRU keys only grow on touch, so touching just leaves
    /// the old entry as that bound). Victim walks detect staleness
    /// (stored key != recomputed key), drop the entry, and re-insert the
    /// exact current key — which sorts after the walk cursor, preserving
    /// the policy's exact order; a run of touches between walks thus
    /// costs one normalization instead of one re-key each. Pinned-but-
    /// valid entries are skipped in place (pin/unpin never touch the
    /// index). Departures (`begin_swap_out`/`begin_p2p`/`free`/
    /// `drop_to_host`) remove their entry exactly via the stored key, so
    /// the index never accumulates garbage.
    lru_index: Vec<Option<BTreeSet<LruKey>>>,
    /// Same, for [`crate::NextUseAware`]-kind policies — with one twist:
    /// a *growing* next-use hint shrinks the order-reversed key, so
    /// `set_next_use` eagerly re-keys (remove stored + insert exact)
    /// whenever the new key drops below the stored one — the only
    /// transition that can violate the lower bound.
    nu_index: Vec<Option<BTreeSet<NextUseKey>>>,
    /// `last_use` value of this tensor's current `lru_index` entry (the
    /// stored key is `(lru_entry[i], id)`); meaningful only while the
    /// tensor is device-resident and the index is built.
    lru_entry: Vec<u64>,
    /// This tensor's current `nu_index` entry; meaningful only while the
    /// tensor is device-resident and the index is built.
    nu_entry: Vec<NextUseKey>,
    next_id: TensorId,
    clock: u64,
    stats: SwapStats,
    /// True while observers are attached on the wrapper: transitions
    /// buffer a [`MemEvent`] for the wrapper to flush.
    record: bool,
    pending: Vec<MemEvent>,
    /// Reused owned-record scratch for the foreign-policy fallback.
    fallback_infos: Vec<TensorInfo>,
    /// Armed sabotage for the reusediff mutation-catch test: the next
    /// [`FastCore::reset`] skips zeroing the `peak_used` plane — the
    /// "one plane leaked across recycling" bug class the fresh-vs-pooled
    /// differential must flag. One-shot; inert unless armed.
    #[cfg(feature = "mutation_hooks")]
    leak_peak_across_reset: bool,
}

impl FastCore {
    fn new(capacities: Vec<u64>) -> Self {
        let n = capacities.len();
        FastCore {
            capacities,
            used: vec![0; n],
            peak_used: vec![0; n],
            host_bytes: 0,
            names: Vec::new(),
            classes: Vec::new(),
            bytes: Vec::new(),
            residency: Vec::new(),
            pinned: Vec::new(),
            last_use: Vec::new(),
            next_use: Vec::new(),
            dirty: Vec::new(),
            host_copy: Vec::new(),
            resident: vec![BTreeSet::new(); n],
            lru_index: vec![None; n],
            nu_index: vec![None; n],
            lru_entry: Vec::new(),
            nu_entry: Vec::new(),
            next_id: 0,
            clock: 0,
            stats: SwapStats::new(),
            record: false,
            pending: Vec::new(),
            fallback_infos: Vec::new(),
            #[cfg(feature = "mutation_hooks")]
            leak_peak_across_reset: false,
        }
    }

    /// Returns the core to `FastCore::new(capacities)` state while
    /// keeping the SoA planes' allocated capacity (the pooled-run
    /// recycling contract, DESIGN §14). Every observable field —
    /// accounting, residency, indexes, clock, stats — restarts from the
    /// constructor's values; only heap capacity survives.
    fn reset(&mut self, capacities: Vec<u64>) {
        let n = capacities.len();
        self.capacities = capacities;
        self.used.clear();
        self.used.resize(n, 0);
        #[cfg(feature = "mutation_hooks")]
        let leak = std::mem::take(&mut self.leak_peak_across_reset);
        #[cfg(not(feature = "mutation_hooks"))]
        let leak = false;
        if !leak {
            self.peak_used.clear();
        }
        self.peak_used.resize(n, 0);
        self.host_bytes = 0;
        self.names.clear();
        self.classes.clear();
        self.bytes.clear();
        self.residency.clear();
        self.pinned.clear();
        self.last_use.clear();
        self.next_use.clear();
        self.dirty.clear();
        self.host_copy.clear();
        for set in &mut self.resident {
            set.clear();
        }
        self.resident.resize_with(n, BTreeSet::new);
        self.lru_index.clear();
        self.lru_index.resize_with(n, || None);
        self.nu_index.clear();
        self.nu_index.resize_with(n, || None);
        self.lru_entry.clear();
        self.nu_entry.clear();
        self.next_id = 0;
        self.clock = 0;
        self.stats = SwapStats::new();
        self.record = false;
        self.pending.clear();
        self.fallback_infos.clear();
    }

    fn note(&mut self, event: MemEvent) {
        if self.record {
            self.pending.push(event);
        }
    }

    fn set_capacity(&mut self, dev: DeviceId, bytes: u64) -> Result<u64, MemError> {
        let used = self.used(dev)?;
        let effective = bytes.max(used);
        self.capacities[dev] = effective;
        self.note(MemEvent::CapacityChanged {
            dev,
            capacity: effective,
        });
        Ok(effective)
    }

    fn tensor_count(&self) -> usize {
        self.names.len()
    }

    fn view(&self, id: TensorId) -> Option<TensorView<'_>> {
        let i = id as usize;
        if i >= self.names.len() {
            return None;
        }
        Some(TensorView {
            id,
            name: &self.names[i],
            bytes: self.bytes[i],
            class: self.classes[i],
            residency: self.residency[i],
            pinned: self.pinned[i],
            last_use: self.last_use[i],
            next_use_hint: self.next_use[i],
            dirty: self.dirty[i],
            host_copy_valid: self.host_copy[i],
        })
    }

    fn evictable_set(&self, dev: DeviceId) -> Option<&BTreeSet<TensorId>> {
        // Resident including pinned; the wrapper filters `pinned == 0`.
        self.resident.get(dev)
    }

    fn num_devices(&self) -> usize {
        self.capacities.len()
    }

    fn capacity(&self, dev: DeviceId) -> Result<u64, MemError> {
        self.capacities
            .get(dev)
            .copied()
            .ok_or(MemError::UnknownDevice(dev))
    }

    fn used(&self, dev: DeviceId) -> Result<u64, MemError> {
        self.used
            .get(dev)
            .copied()
            .ok_or(MemError::UnknownDevice(dev))
    }

    fn free_bytes(&self, dev: DeviceId) -> Result<u64, MemError> {
        Ok(self.capacity(dev)? - self.used(dev)?)
    }

    fn peak_used(&self, dev: DeviceId) -> Result<u64, MemError> {
        self.peak_used
            .get(dev)
            .copied()
            .ok_or(MemError::UnknownDevice(dev))
    }

    fn stats(&self) -> &SwapStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut SwapStats {
        &mut self.stats
    }

    fn host_used(&self) -> u64 {
        self.host_bytes
    }

    /// Plane index for a registered tensor, or `UnknownTensor`.
    fn check(&self, id: TensorId) -> Result<usize, MemError> {
        let i = id as usize;
        if i < self.names.len() {
            Ok(i)
        } else {
            Err(MemError::UnknownTensor(id))
        }
    }

    fn charge(&mut self, dev: DeviceId, bytes: u64) {
        self.used[dev] += bytes;
        if self.used[dev] > self.peak_used[dev] {
            self.peak_used[dev] = self.used[dev];
        }
    }

    fn release(&mut self, dev: DeviceId, bytes: u64) {
        debug_assert!(self.used[dev] >= bytes, "capacity accounting underflow");
        self.used[dev] = self.used[dev].saturating_sub(bytes);
    }

    fn lru_key(&self, i: usize, id: TensorId) -> LruKey {
        (self.last_use[i], id)
    }

    fn nu_key(&self, i: usize, id: TensorId) -> NextUseKey {
        (
            u64::MAX - self.next_use[i].map_or(u64::MAX, |h| h),
            self.last_use[i],
            id,
        )
    }

    /// Enters `id` into `dev`'s resident membership and seeds its exact
    /// key into any built ordered index (keys are computed from the
    /// current planes — call after updating them), recording the stored
    /// keys for exact removal at departure.
    fn arrive(&mut self, dev: DeviceId, id: TensorId) {
        self.resident[dev].insert(id);
        let i = id as usize;
        let lru = self.lru_key(i, id);
        let nu = self.nu_key(i, id);
        let mut ops = 0u64;
        if let Some(idx) = self.lru_index[dev].as_mut() {
            idx.insert(lru);
            self.lru_entry[i] = lru.0;
            ops += 1;
        }
        if let Some(idx) = self.nu_index[dev].as_mut() {
            idx.insert(nu);
            self.nu_entry[i] = nu;
            ops += 1;
        }
        self.stats.counters.index_ops += ops;
    }

    /// Removes `id` from `dev`'s resident membership and drops its one
    /// ordered-index entry per built index, located exactly by the
    /// stored key (the live key may have drifted since — that's the
    /// lazy discipline; the stored key is the ground truth).
    fn depart(&mut self, dev: DeviceId, id: TensorId) {
        self.resident[dev].remove(&id);
        let i = id as usize;
        let mut ops = 0u64;
        if let Some(idx) = self.lru_index[dev].as_mut() {
            idx.remove(&(self.lru_entry[i], id));
            ops += 1;
        }
        if let Some(idx) = self.nu_index[dev].as_mut() {
            idx.remove(&self.nu_entry[i]);
            ops += 1;
        }
        self.stats.counters.index_ops += ops;
    }

    fn register_on_host(&mut self, name: String, bytes: u64, class: TensorClass) -> TensorId {
        let id = self.next_id;
        self.next_id += 1;
        self.clock += 1;
        debug_assert_eq!(id as usize, self.names.len());
        self.names.push(name);
        self.classes.push(class);
        self.bytes.push(bytes);
        self.residency.push(Residency::OnHost);
        self.pinned.push(0);
        self.last_use.push(self.clock);
        self.next_use.push(None);
        self.dirty.push(false);
        self.host_copy.push(true);
        self.lru_entry.push(0);
        self.nu_entry.push((0, 0, 0));
        self.host_bytes += bytes;
        self.note(MemEvent::RegisterHost { id, bytes, class });
        id
    }

    fn alloc_on_device(
        &mut self,
        name: String,
        bytes: u64,
        class: TensorClass,
        dev: DeviceId,
    ) -> Result<TensorId, MemError> {
        if self.free_bytes(dev)? < bytes {
            return Err(MemError::InsufficientMemory {
                device: dev,
                needed: bytes,
                capacity: self.capacity(dev)?,
            });
        }
        self.charge(dev, bytes);
        let id = self.next_id;
        self.next_id += 1;
        self.clock += 1;
        debug_assert_eq!(id as usize, self.names.len());
        self.names.push(name);
        self.classes.push(class);
        self.bytes.push(bytes);
        self.residency.push(Residency::OnDevice(dev));
        self.pinned.push(0);
        self.last_use.push(self.clock);
        self.next_use.push(None);
        // Fresh device-side outputs have no host copy yet.
        self.dirty.push(true);
        self.host_copy.push(false);
        self.lru_entry.push(0);
        self.nu_entry.push((0, 0, 0));
        self.arrive(dev, id);
        self.note(MemEvent::Alloc {
            id,
            dev,
            bytes,
            class,
        });
        Ok(id)
    }

    fn touch(&mut self, id: TensorId) -> Result<(), MemError> {
        // The clock bumps before validation — seed behavior.
        self.clock += 1;
        let clock = self.clock;
        let i = self.check(id)?;
        // Pure field write: the LRU key `(last_use, id)` only grows, so
        // any stale ordered-index entry is a lower bound that the next
        // victim walk normalizes in place.
        self.last_use[i] = clock;
        self.note(MemEvent::Use { id });
        Ok(())
    }

    fn set_next_use(&mut self, id: TensorId, hint: Option<u64>) -> Result<(), MemError> {
        let i = self.check(id)?;
        if let Residency::OnDevice(d) = self.residency[i] {
            if self.nu_index[d].is_some() {
                // A growing hint shrinks the order-reversed NU key; only
                // a key dropping below the *stored* entry must re-key
                // eagerly to keep the lower-bound invariant. Grown keys
                // normalize lazily at the next victim walk.
                self.next_use[i] = hint;
                let new = self.nu_key(i, id);
                if new < self.nu_entry[i] {
                    let idx = self.nu_index[d].as_mut().expect("checked is_some above");
                    idx.remove(&self.nu_entry[i]);
                    idx.insert(new);
                    self.nu_entry[i] = new;
                    self.stats.counters.index_ops += 2;
                }
                return Ok(());
            }
        }
        self.next_use[i] = hint;
        Ok(())
    }

    fn pin(&mut self, id: TensorId) -> Result<(), MemError> {
        let i = self.check(id)?;
        match self.residency[i] {
            Residency::OnDevice(_) => {
                // Pure field write: pinned tensors stay in the resident
                // membership and ordered indexes; candidate reads and
                // victim walks skip them by the `pinned` plane.
                self.pinned[i] += 1;
                self.note(MemEvent::Pin { id });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "pin",
                state: other.describe(),
            }),
        }
    }

    fn unpin(&mut self, id: TensorId) -> Result<(), MemError> {
        let i = self.check(id)?;
        if self.pinned[i] == 0 {
            return Err(MemError::InvalidState {
                id,
                op: "unpin",
                state: "not pinned".to_string(),
            });
        }
        self.pinned[i] -= 1;
        self.note(MemEvent::Unpin { id });
        Ok(())
    }

    fn free(&mut self, id: TensorId) -> Result<(), MemError> {
        let i = self.check(id)?;
        let residency = self.residency[i];
        let bytes = self.bytes[i];
        if self.pinned[i] > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "free",
                state: "pinned".to_string(),
            });
        }
        match residency {
            Residency::OnDevice(d) => {
                self.release(d, bytes);
                self.depart(d, id);
            }
            Residency::OnHost => {
                self.host_bytes -= bytes;
            }
            Residency::Dead => {}
            moving => {
                return Err(MemError::InvalidState {
                    id,
                    op: "free",
                    state: moving.describe(),
                })
            }
        }
        self.residency[i] = Residency::Dead;
        self.note(MemEvent::Free { id });
        Ok(())
    }

    fn make_room_into(
        &mut self,
        dev: DeviceId,
        bytes: u64,
        policy: &dyn EvictionPolicy,
        out: &mut Vec<TensorId>,
    ) -> Result<(), MemError> {
        let free = self.free_bytes(dev)?;
        if free >= bytes {
            return Ok(());
        }
        match policy.index_kind() {
            Some(PolicyIndexKind::Lru) => {
                self.ensure_lru_index(dev);
                let mut freed = free;
                let mut pops = 0u64;
                let mut norm_ops = 0u64;
                let mut cursor: Option<LruKey> = None;
                // Walk ascending, normalizing stale entries as they
                // surface. LRU keys only grow, so a normalized re-insert
                // lands *after* the cursor: the walk visits each live
                // tensor exactly once, in the policy's exact order, and
                // a run of touches between walks costs one
                // normalization here instead of one re-key per touch.
                let result = loop {
                    if freed >= bytes {
                        break Ok(());
                    }
                    let next = {
                        let idx = self.lru_index[dev].as_ref().expect("built just above");
                        match cursor {
                            None => idx.iter().next().copied(),
                            Some(c) => idx
                                .range((std::ops::Bound::Excluded(c), std::ops::Bound::Unbounded))
                                .next()
                                .copied(),
                        }
                    };
                    let Some(entry) = next else {
                        break Err(MemError::InsufficientMemory {
                            device: dev,
                            needed: bytes,
                            capacity: self.capacities[dev],
                        });
                    };
                    cursor = Some(entry);
                    let id = entry.1;
                    let i = id as usize;
                    if self.last_use[i] != entry.0 {
                        // Stale lower bound: re-key to the exact spot
                        // (always ahead of the cursor — keys only grow).
                        let exact = (self.last_use[i], id);
                        let idx = self.lru_index[dev].as_mut().expect("built just above");
                        idx.remove(&entry);
                        idx.insert(exact);
                        self.lru_entry[i] = exact.0;
                        norm_ops += 2;
                        continue;
                    }
                    if self.pinned[i] > 0 {
                        continue; // valid entry, just not currently evictable
                    }
                    freed += self.bytes[i];
                    out.push(id);
                    pops += 1;
                };
                self.stats.counters.victim_pops += pops;
                self.stats.counters.index_ops += norm_ops;
                result
            }
            Some(PolicyIndexKind::NextUse) => {
                // Adaptive: next-use hints churn on every tensor use, so
                // a built NU index charges `set_next_use` an eager
                // re-key (two tree ops) per shrinking key — a net loss
                // on small device populations where a direct selection
                // scan over the resident set is a few cache lines. The
                // index pays for itself only at scale; hysteresis keeps
                // the build/drop boundary from thrashing.
                let n = self.resident[dev].len();
                match &self.nu_index[dev] {
                    None if n <= NU_INDEX_BUILD_ABOVE => {
                        return self.make_room_scan_nu(dev, bytes, free, out);
                    }
                    Some(_) if n < NU_INDEX_DROP_BELOW => {
                        self.nu_index[dev] = None;
                        return self.make_room_scan_nu(dev, bytes, free, out);
                    }
                    _ => {}
                }
                self.ensure_nu_index(dev);
                let mut freed = free;
                let mut pops = 0u64;
                let mut norm_ops = 0u64;
                let mut cursor: Option<NextUseKey> = None;
                // As above; keys that *shrank* were re-keyed eagerly by
                // `set_next_use`, so every stale entry's exact key is
                // ahead of the cursor — never missed.
                let result = loop {
                    if freed >= bytes {
                        break Ok(());
                    }
                    let next = {
                        let idx = self.nu_index[dev].as_ref().expect("built just above");
                        match cursor {
                            None => idx.iter().next().copied(),
                            Some(c) => idx
                                .range((std::ops::Bound::Excluded(c), std::ops::Bound::Unbounded))
                                .next()
                                .copied(),
                        }
                    };
                    let Some(entry) = next else {
                        break Err(MemError::InsufficientMemory {
                            device: dev,
                            needed: bytes,
                            capacity: self.capacities[dev],
                        });
                    };
                    cursor = Some(entry);
                    let id = entry.2;
                    let i = id as usize;
                    let exact = self.nu_key(i, id);
                    if exact != entry {
                        let idx = self.nu_index[dev].as_mut().expect("built just above");
                        idx.remove(&entry);
                        idx.insert(exact);
                        self.nu_entry[i] = exact;
                        norm_ops += 2;
                        continue;
                    }
                    if self.pinned[i] > 0 {
                        continue; // valid entry, just not currently evictable
                    }
                    freed += self.bytes[i];
                    out.push(id);
                    pops += 1;
                };
                self.stats.counters.victim_pops += pops;
                self.stats.counters.index_ops += norm_ops;
                result
            }
            None => self.make_room_fallback(dev, bytes, free, policy, out),
        }
    }

    /// Allocation-free next-use planning for small device populations: a
    /// selection loop straight over the resident membership and the SoA
    /// planes — no index maintenance anywhere on the hot path, no
    /// materialized candidate set. Victim order is the policy's exact
    /// comparison (min ascending NU key == `NextUseAware`'s
    /// `max_by_key`), with already-planned victims of *this* call
    /// excluded exactly like the dense choose-loop's shrinking slice.
    fn make_room_scan_nu(
        &mut self,
        dev: DeviceId,
        bytes: u64,
        free: u64,
        out: &mut Vec<TensorId>,
    ) -> Result<(), MemError> {
        let start = out.len();
        let mut freed = free;
        let mut pops = 0u64;
        let result = loop {
            if freed >= bytes {
                break Ok(());
            }
            let mut best: Option<NextUseKey> = None;
            for &id in &self.resident[dev] {
                let i = id as usize;
                if self.pinned[i] > 0 || out[start..].contains(&id) {
                    continue;
                }
                let key = self.nu_key(i, id);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let Some((_, _, id)) = best else {
                break Err(MemError::InsufficientMemory {
                    device: dev,
                    needed: bytes,
                    capacity: self.capacities[dev],
                });
            };
            freed += self.bytes[id as usize];
            out.push(id);
            pops += 1;
        };
        self.stats.counters.victim_pops += pops;
        result
    }

    /// Foreign-policy path: preserves the seed semantics exactly (owned
    /// candidate snapshot in ascending id order, `choose` re-offered the
    /// shrinking set once per victim, same errors) — just through a
    /// reused scratch buffer.
    fn make_room_fallback(
        &mut self,
        dev: DeviceId,
        bytes: u64,
        mut free: u64,
        policy: &dyn EvictionPolicy,
        out: &mut Vec<TensorId>,
    ) -> Result<(), MemError> {
        let mut infos = std::mem::take(&mut self.fallback_infos);
        infos.clear();
        if let Some(set) = self.resident.get(dev) {
            for &id in set.iter() {
                let i = id as usize;
                if self.pinned[i] > 0 {
                    continue; // resident membership includes pinned; the policy sees only evictables
                }
                infos.push(TensorInfo {
                    id,
                    name: self.names[i].clone(),
                    bytes: self.bytes[i],
                    class: self.classes[i],
                    residency: self.residency[i],
                    pinned: self.pinned[i],
                    last_use: self.last_use[i],
                    next_use_hint: self.next_use[i],
                    dirty: self.dirty[i],
                    host_copy_valid: self.host_copy[i],
                });
            }
        }
        let mut scans = 0u64;
        let result = {
            let mut candidates: Vec<&TensorInfo> = infos.iter().collect();
            loop {
                if free >= bytes {
                    break Ok(());
                }
                scans += candidates.len() as u64;
                let Some(victim) = policy.choose(&candidates) else {
                    break Err(MemError::InsufficientMemory {
                        device: dev,
                        needed: bytes,
                        capacity: self.capacities[dev],
                    });
                };
                // The policy is an external trait object: a buggy
                // implementation returning an id outside the candidate
                // set is an error to report, not an invariant to die on.
                match candidates.iter().position(|t| t.id == victim) {
                    Some(idx) => {
                        free += candidates[idx].bytes;
                        out.push(victim);
                        candidates.remove(idx);
                    }
                    None => {
                        break Err(MemError::InvalidState {
                            id: victim,
                            op: "evict",
                            state: "not in the eviction-candidate set the policy was offered"
                                .to_string(),
                        })
                    }
                }
            }
        };
        self.stats.counters.fresh_allocs += 1;
        self.stats.counters.candidate_scans += scans;
        self.fallback_infos = infos;
        result
    }

    /// Builds `dev`'s LRU victim index from the resident set (pinned
    /// included — they may unpin without another key-changing touch) on
    /// first use; lazy lower-bound maintenance keeps it walkable
    /// afterwards.
    fn ensure_lru_index(&mut self, dev: DeviceId) {
        if self.lru_index[dev].is_some() {
            return;
        }
        let mut set = BTreeSet::new();
        for &id in &self.resident[dev] {
            let i = id as usize;
            self.lru_entry[i] = self.last_use[i];
            set.insert((self.last_use[i], id));
        }
        self.stats.counters.fresh_allocs += 1;
        self.stats.counters.index_ops += set.len() as u64;
        self.lru_index[dev] = Some(set);
    }

    /// Builds `dev`'s next-use victim index from the resident set on
    /// first use; lazy lower-bound maintenance keeps it walkable
    /// afterwards.
    fn ensure_nu_index(&mut self, dev: DeviceId) {
        if self.nu_index[dev].is_some() {
            return;
        }
        let mut set = BTreeSet::new();
        for &id in &self.resident[dev] {
            let i = id as usize;
            let key = (
                u64::MAX - self.next_use[i].map_or(u64::MAX, |h| h),
                self.last_use[i],
                id,
            );
            self.nu_entry[i] = key;
            set.insert(key);
        }
        self.stats.counters.fresh_allocs += 1;
        self.stats.counters.index_ops += set.len() as u64;
        self.nu_index[dev] = Some(set);
    }

    fn plan_fetch_into(
        &mut self,
        id: TensorId,
        dev: DeviceId,
        policy: &dyn EvictionPolicy,
        out: &mut Vec<TensorId>,
    ) -> Result<FetchAction, MemError> {
        let i = self.check(id)?;
        let bytes = self.bytes[i];
        let residency = self.residency[i];
        match residency {
            Residency::OnDevice(d) if d == dev => Ok(FetchAction {
                needs_transfer: false,
                src_device: None,
            }),
            Residency::OnDevice(src) => {
                self.make_room_into(dev, bytes, policy, out)?;
                Ok(FetchAction {
                    needs_transfer: true,
                    src_device: Some(src),
                })
            }
            Residency::OnHost => {
                self.make_room_into(dev, bytes, policy, out)?;
                Ok(FetchAction {
                    needs_transfer: true,
                    src_device: None,
                })
            }
            other => Err(MemError::InvalidState {
                id,
                op: "plan_fetch",
                state: other.describe(),
            }),
        }
    }

    fn begin_swap_out(&mut self, id: TensorId) -> Result<(DeviceId, u64), MemError> {
        let i = self.check(id)?;
        let residency = self.residency[i];
        let bytes = self.bytes[i];
        let class = self.classes[i];
        let src = match residency {
            Residency::OnDevice(d) => d,
            other => {
                return Err(MemError::InvalidState {
                    id,
                    op: "begin_swap_out",
                    state: other.describe(),
                })
            }
        };
        if self.pinned[i] > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "begin_swap_out",
                state: "pinned".to_string(),
            });
        }
        self.residency[i] = Residency::MovingToHost { src };
        self.depart(src, id);
        self.host_bytes += bytes;
        self.stats.record(src, Direction::Out, class, bytes);
        self.note(MemEvent::BeginSwapOut { id, src, bytes });
        Ok((src, bytes))
    }

    fn finish_swap_out(&mut self, id: TensorId) -> Result<(), MemError> {
        let i = self.check(id)?;
        match self.residency[i] {
            Residency::MovingToHost { src } => {
                let bytes = self.bytes[i];
                self.release(src, bytes);
                self.residency[i] = Residency::OnHost;
                self.dirty[i] = false;
                self.host_copy[i] = true;
                self.note(MemEvent::FinishSwapOut { id, src, bytes });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "finish_swap_out",
                state: other.describe(),
            }),
        }
    }

    fn begin_swap_in(&mut self, id: TensorId, dev: DeviceId) -> Result<u64, MemError> {
        let i = self.check(id)?;
        let residency = self.residency[i];
        let bytes = self.bytes[i];
        let class = self.classes[i];
        if residency != Residency::OnHost {
            return Err(MemError::InvalidState {
                id,
                op: "begin_swap_in",
                state: residency.describe(),
            });
        }
        if self.free_bytes(dev)? < bytes {
            return Err(MemError::InsufficientMemory {
                device: dev,
                needed: bytes,
                capacity: self.capacity(dev)?,
            });
        }
        self.charge(dev, bytes);
        self.residency[i] = Residency::MovingToDevice {
            dst: dev,
            src: None,
        };
        self.host_bytes -= bytes;
        self.stats.record(dev, Direction::In, class, bytes);
        self.note(MemEvent::BeginSwapIn {
            id,
            dst: dev,
            bytes,
        });
        Ok(bytes)
    }

    fn begin_p2p(&mut self, id: TensorId, dst: DeviceId) -> Result<(DeviceId, u64), MemError> {
        let i = self.check(id)?;
        let residency = self.residency[i];
        let bytes = self.bytes[i];
        let src = match residency {
            Residency::OnDevice(d) if d != dst => d,
            other => {
                return Err(MemError::InvalidState {
                    id,
                    op: "begin_p2p",
                    state: other.describe(),
                })
            }
        };
        if self.pinned[i] > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "begin_p2p",
                state: "pinned".to_string(),
            });
        }
        if self.free_bytes(dst)? < bytes {
            return Err(MemError::InsufficientMemory {
                device: dst,
                needed: bytes,
                capacity: self.capacity(dst)?,
            });
        }
        self.charge(dst, bytes);
        self.residency[i] = Residency::MovingToDevice {
            dst,
            src: Some(src),
        };
        self.depart(src, id);
        self.stats.record_p2p(bytes);
        self.note(MemEvent::BeginP2p {
            id,
            src,
            dst,
            bytes,
        });
        Ok((src, bytes))
    }

    fn finish_move_to_device(&mut self, id: TensorId) -> Result<DeviceId, MemError> {
        let i = self.check(id)?;
        match self.residency[i] {
            Residency::MovingToDevice { dst, src } => {
                let bytes = self.bytes[i];
                if let Some(s) = src {
                    self.release(s, bytes);
                }
                self.clock += 1;
                self.residency[i] = Residency::OnDevice(dst);
                self.last_use[i] = self.clock;
                // A host->device copy leaves the host copy valid; a p2p
                // move does not touch host validity.
                if src.is_none() {
                    self.dirty[i] = false;
                }
                // A moving tensor can never be pinned (pin requires
                // device residency), so it is evictable on arrival.
                self.arrive(dst, id);
                self.note(MemEvent::FinishMove {
                    id,
                    dst,
                    p2p: src.is_some(),
                });
                Ok(dst)
            }
            other => Err(MemError::InvalidState {
                id,
                op: "finish_move_to_device",
                state: other.describe(),
            }),
        }
    }

    fn cancel_move_to_device(&mut self, id: TensorId) -> Result<(), MemError> {
        let i = self.check(id)?;
        match self.residency[i] {
            Residency::MovingToDevice { dst, src } => {
                let bytes = self.bytes[i];
                self.release(dst, bytes);
                match src {
                    Some(s) => {
                        // A moving tensor can never be pinned (pin
                        // requires device residency), so it is evictable
                        // again the moment it is back on `s`.
                        self.residency[i] = Residency::OnDevice(s);
                        self.arrive(s, id);
                    }
                    None => {
                        self.residency[i] = Residency::OnHost;
                        self.host_bytes += bytes;
                    }
                }
                self.note(MemEvent::CancelMove {
                    id,
                    dst,
                    p2p: src.is_some(),
                });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "cancel_move_to_device",
                state: other.describe(),
            }),
        }
    }

    fn mark_dirty(&mut self, id: TensorId) -> Result<(), MemError> {
        let i = self.check(id)?;
        self.dirty[i] = true;
        self.host_copy[i] = false;
        self.note(MemEvent::MarkDirty { id });
        Ok(())
    }

    fn can_drop(&self, id: TensorId) -> Result<bool, MemError> {
        let i = self.check(id)?;
        Ok(!self.dirty[i]
            && self.host_copy[i]
            && matches!(self.residency[i], Residency::OnDevice(_)))
    }

    fn drop_to_host(&mut self, id: TensorId) -> Result<(), MemError> {
        let i = self.check(id)?;
        let residency = self.residency[i];
        let bytes = self.bytes[i];
        let dirty = self.dirty[i];
        let host_copy_valid = self.host_copy[i];
        if self.pinned[i] > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "drop_to_host",
                state: "pinned".to_string(),
            });
        }
        match residency {
            Residency::OnDevice(d) if !dirty && host_copy_valid => {
                self.release(d, bytes);
                self.depart(d, id);
                self.residency[i] = Residency::OnHost;
                self.host_bytes += bytes;
                self.note(MemEvent::DropToHost {
                    id,
                    dev: d,
                    was_dirty: dirty,
                    had_host_copy: host_copy_valid,
                });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "drop_to_host",
                state: if dirty {
                    "dirty".to_string()
                } else {
                    other.describe()
                },
            }),
        }
    }

    /// See [`MemoryManager::arm_index_desync`].
    #[cfg(feature = "mutation_hooks")]
    fn arm_index_desync(&mut self, dev: DeviceId) -> bool {
        // Pick an unpinned resident (a pinned one is invisible to both
        // candidates and victim walks, so dropping it would be a silent
        // no-op the differential could legitimately miss).
        let Some(&id) = self
            .resident
            .get(dev)
            .and_then(|s| s.iter().find(|&&id| self.pinned[id as usize] == 0))
        else {
            return false;
        };
        let i = id as usize;
        if let Some(idx) = self.lru_index[dev].as_mut() {
            idx.remove(&(self.lru_entry[i], id));
        }
        if let Some(idx) = self.nu_index[dev].as_mut() {
            idx.remove(&self.nu_entry[i]);
        }
        self.resident[dev].remove(&id);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, NextUseAware};

    fn mm() -> MemoryManager {
        MemoryManager::new(vec![1000, 1000])
    }

    #[test]
    fn reset_manager_matches_fresh_manager_observably() {
        // Dirty a manager thoroughly, reset it onto a different device
        // set, and replay a script against a truly fresh manager: ids,
        // accounting, stats, and views must coincide.
        let mut pooled = mm();
        let a = pooled
            .alloc_on_device("old", 600, TensorClass::Stash, 0)
            .unwrap();
        pooled.touch(a).unwrap();
        pooled.register_on_host("host-old", 50, TensorClass::Weight);
        pooled.reset(vec![2000, 2000, 2000]);
        let mut fresh = MemoryManager::new(vec![2000, 2000, 2000]);
        for m in [&mut pooled, &mut fresh] {
            let w = m.register_on_host("w", 100, TensorClass::Weight);
            assert_eq!(w, 0, "ids restart from zero");
            let x = m.alloc_on_device("x", 300, TensorClass::Stash, 2).unwrap();
            m.touch(x).unwrap();
        }
        assert_eq!(pooled.num_devices(), fresh.num_devices());
        assert_eq!(pooled.used(2).unwrap(), fresh.used(2).unwrap());
        assert_eq!(pooled.peak_used(2).unwrap(), fresh.peak_used(2).unwrap());
        assert_eq!(pooled.peak_used(0).unwrap(), 0, "no leak across reset");
        assert_eq!(pooled.host_used(), fresh.host_used());
        assert_eq!(pooled.tensor_infos().count(), fresh.tensor_infos().count());
    }

    #[test]
    fn make_room_reports_a_policy_that_picks_a_non_candidate() {
        // A policy returning an id outside the offered candidate set is a
        // bug in external code: the manager must surface a typed error,
        // not panic.
        struct Rogue;
        impl crate::policy::EvictionPolicy for Rogue {
            fn choose(&self, _candidates: &[&TensorInfo]) -> Option<TensorId> {
                Some(TensorId::MAX)
            }
            fn name(&self) -> &'static str {
                "rogue"
            }
        }
        let mut m = mm();
        let a = m.alloc_on_device("a", 800, TensorClass::Stash, 0).unwrap();
        let _ = a;
        let err = m.make_room(0, 500, &Rogue).unwrap_err();
        assert!(
            matches!(err, MemError::InvalidState { id, op: "evict", .. } if id == TensorId::MAX),
            "wrong error: {err}"
        );
    }

    #[test]
    fn register_and_alloc_account_capacity() {
        let mut m = mm();
        let w = m.register_on_host("w", 400, TensorClass::Weight);
        assert_eq!(m.info(w).unwrap().residency, Residency::OnHost);
        assert_eq!(m.used(0).unwrap(), 0);
        let a = m
            .alloc_on_device("a", 600, TensorClass::Activation, 0)
            .unwrap();
        assert_eq!(m.used(0).unwrap(), 600);
        assert_eq!(m.free_bytes(0).unwrap(), 400);
        assert_eq!(m.info(a).unwrap().residency, Residency::OnDevice(0));
        // Over-capacity alloc fails.
        assert!(matches!(
            m.alloc_on_device("b", 500, TensorClass::Activation, 0),
            Err(MemError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn swap_in_lifecycle() {
        let mut m = mm();
        let w = m.register_on_host("w", 400, TensorClass::Weight);
        let bytes = m.begin_swap_in(w, 0).unwrap();
        assert_eq!(bytes, 400);
        assert_eq!(m.used(0).unwrap(), 400, "reserved during flight");
        assert!(m.pin(w).is_err(), "cannot pin in flight");
        assert_eq!(m.finish_move_to_device(w).unwrap(), 0);
        assert_eq!(m.info(w).unwrap().residency, Residency::OnDevice(0));
        assert_eq!(m.stats().device_total(0, Direction::In), 400);
    }

    #[test]
    fn swap_out_lifecycle_frees_capacity_at_finish() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 700, TensorClass::Stash, 0).unwrap();
        let (src, bytes) = m.begin_swap_out(a).unwrap();
        assert_eq!((src, bytes), (0, 700));
        assert_eq!(m.used(0).unwrap(), 700, "still charged in flight");
        m.finish_swap_out(a).unwrap();
        assert_eq!(m.used(0).unwrap(), 0);
        assert_eq!(m.info(a).unwrap().residency, Residency::OnHost);
        assert_eq!(m.stats().device_total(0, Direction::Out), 700);
    }

    #[test]
    fn p2p_counts_separately_from_swaps() {
        let mut m = mm();
        let a = m
            .alloc_on_device("a", 300, TensorClass::Activation, 0)
            .unwrap();
        let (src, bytes) = m.begin_p2p(a, 1).unwrap();
        assert_eq!((src, bytes), (0, 300));
        assert_eq!(m.used(0).unwrap(), 300, "src charged in flight");
        assert_eq!(m.used(1).unwrap(), 300, "dst reserved in flight");
        m.finish_move_to_device(a).unwrap();
        assert_eq!(m.used(0).unwrap(), 0);
        assert_eq!(m.used(1).unwrap(), 300);
        assert_eq!(m.stats().p2p_bytes, 300);
        assert_eq!(m.stats().total(), 0, "no host swap volume");
    }

    #[test]
    fn cancel_move_reverts_p2p_to_source() {
        let mut m = mm();
        let a = m
            .alloc_on_device("a", 300, TensorClass::Activation, 0)
            .unwrap();
        m.begin_p2p(a, 1).unwrap();
        m.cancel_move_to_device(a).unwrap();
        assert_eq!(m.info(a).unwrap().residency, Residency::OnDevice(0));
        assert_eq!(m.used(0).unwrap(), 300, "source copy still charged");
        assert_eq!(m.used(1).unwrap(), 0, "destination reservation released");
        // Back in the source's evictable index.
        assert_eq!(m.eviction_candidates(0).count(), 1);
        assert_eq!(m.eviction_candidates(1).count(), 0);
        // Attempted traffic stays tallied (charged to the attempt).
        assert_eq!(m.stats().p2p_bytes, 300);
        // The tensor is fully live again: a fresh move works.
        m.begin_p2p(a, 1).unwrap();
        m.finish_move_to_device(a).unwrap();
        assert_eq!(m.info(a).unwrap().residency, Residency::OnDevice(1));
    }

    #[test]
    fn cancel_move_reverts_swap_in_to_host() {
        let mut m = mm();
        let w = m.register_on_host("w", 400, TensorClass::Weight);
        m.begin_swap_in(w, 0).unwrap();
        m.cancel_move_to_device(w).unwrap();
        assert_eq!(m.info(w).unwrap().residency, Residency::OnHost);
        assert_eq!(m.used(0).unwrap(), 0, "reservation released");
        assert!(m.info(w).unwrap().host_copy_valid);
        // Only in-flight-to-device states are cancellable.
        assert!(m.cancel_move_to_device(w).is_err());
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        assert!(m.cancel_move_to_device(w).is_err(), "already arrived");
    }

    #[test]
    fn pinning_blocks_eviction_and_free() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 300, TensorClass::Weight, 0).unwrap();
        m.pin(a).unwrap();
        assert!(m.begin_swap_out(a).is_err());
        assert!(m.free(a).is_err());
        assert_eq!(m.eviction_candidates(0).count(), 0);
        m.unpin(a).unwrap();
        assert!(m.unpin(a).is_err(), "unbalanced unpin");
        assert_eq!(m.eviction_candidates(0).count(), 1);
    }

    #[test]
    fn free_releases_without_swap_traffic() {
        let mut m = mm();
        let a = m
            .alloc_on_device("a", 300, TensorClass::Activation, 0)
            .unwrap();
        m.free(a).unwrap();
        assert_eq!(m.used(0).unwrap(), 0);
        assert_eq!(m.stats().total(), 0);
        assert!(m.touch(a).is_ok(), "dead tensors still known");
        assert!(m.begin_swap_in(a, 0).is_err());
    }

    #[test]
    fn make_room_picks_lru_victims() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 400, TensorClass::Weight, 0).unwrap();
        let b = m.alloc_on_device("b", 400, TensorClass::Weight, 0).unwrap();
        m.touch(a).unwrap(); // b is now least recently used
        let victims = m.make_room(0, 300, &Lru).unwrap();
        assert_eq!(victims, vec![b]);
        // Needs more than one victim.
        let victims = m.make_room(0, 900, &Lru).unwrap();
        assert_eq!(victims.len(), 2);
        // Impossible even with every candidate evicted.
        assert!(m.make_room(0, 1500, &Lru).is_err());
    }

    #[test]
    fn plan_fetch_covers_all_sources() {
        let mut m = mm();
        let w = m.register_on_host("w", 500, TensorClass::Weight);
        let plan = m.plan_fetch(w, 0, &Lru).unwrap();
        assert!(plan.needs_transfer);
        assert!(plan.src_device.is_none());
        assert!(plan.evictions.is_empty());

        m.begin_swap_in(w, 0).unwrap();
        assert!(m.plan_fetch(w, 0, &Lru).is_err(), "in flight");
        m.finish_move_to_device(w).unwrap();
        let plan = m.plan_fetch(w, 0, &Lru).unwrap();
        assert!(!plan.needs_transfer, "already resident");

        // From another device → p2p candidate.
        let plan = m.plan_fetch(w, 1, &Lru).unwrap();
        assert!(plan.needs_transfer);
        assert_eq!(plan.src_device, Some(0));
    }

    #[test]
    fn plan_fetch_evicts_when_full() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 900, TensorClass::Stash, 0).unwrap();
        let w = m.register_on_host("w", 500, TensorClass::Weight);
        let plan = m.plan_fetch(w, 0, &Lru).unwrap();
        assert_eq!(plan.evictions, vec![a]);
    }

    #[test]
    fn next_use_hints_steer_eviction() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 500, TensorClass::Weight, 0).unwrap();
        let b = m.alloc_on_device("b", 500, TensorClass::Weight, 0).unwrap();
        // a used again soon, b never again: NextUseAware must evict b even
        // though LRU would evict a.
        m.set_next_use(a, Some(5)).unwrap();
        m.set_next_use(b, None).unwrap();
        m.touch(b).unwrap(); // make a the LRU victim
        assert_eq!(m.make_room(0, 100, &Lru).unwrap(), vec![a]);
        assert_eq!(m.make_room(0, 100, &NextUseAware).unwrap(), vec![b]);
    }

    #[test]
    fn peak_usage_tracks_high_water_mark() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 800, TensorClass::Stash, 0).unwrap();
        m.free(a).unwrap();
        let _ = m.alloc_on_device("b", 300, TensorClass::Stash, 0).unwrap();
        assert_eq!(m.peak_used(0).unwrap(), 800);
        assert_eq!(m.used(0).unwrap(), 300);
    }

    #[test]
    fn host_used_tracks_residency() {
        let mut m = mm();
        let w = m.register_on_host("w", 400, TensorClass::Weight);
        assert_eq!(m.host_used(), 400);
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        assert_eq!(m.host_used(), 0);
        m.begin_swap_out(w).unwrap();
        assert_eq!(m.host_used(), 400, "in-flight-to-host counts");
        m.finish_swap_out(w).unwrap();
        assert_eq!(m.host_used(), 400);
        m.free(w).unwrap();
        assert_eq!(m.host_used(), 0);
    }

    /// The dense recomputation the incremental `host_used` counter
    /// replaced (satellite: mirrors the evictable-index regression test).
    fn dense_host_used(m: &MemoryManager) -> u64 {
        m.tensor_infos()
            .filter(|t| {
                matches!(
                    t.residency,
                    Residency::OnHost | Residency::MovingToHost { .. }
                )
            })
            .map(|t| t.bytes)
            .sum()
    }

    #[test]
    fn host_used_matches_dense_recomputation_across_all_transitions() {
        let mut m = mm();
        let check = |m: &MemoryManager| {
            assert_eq!(
                m.host_used(),
                dense_host_used(m),
                "incremental host_used diverged from dense re-scan"
            );
        };
        let w = m.register_on_host("w", 400, TensorClass::Weight);
        let a = m.alloc_on_device("a", 200, TensorClass::Stash, 0).unwrap();
        check(&m);
        m.begin_swap_in(w, 0).unwrap();
        check(&m); // leaving host
        m.cancel_move_to_device(w).unwrap();
        check(&m); // back on host
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        check(&m); // arrived on device
        m.begin_p2p(w, 1).unwrap();
        check(&m); // p2p: host total untouched
        m.cancel_move_to_device(w).unwrap();
        check(&m); // p2p cancel: back to source, not host
        m.begin_swap_out(w).unwrap();
        check(&m); // moving-to-host counts
        m.finish_swap_out(w).unwrap();
        check(&m);
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        m.drop_to_host(w).unwrap();
        check(&m); // dropped copies count on host
        m.free(w).unwrap();
        check(&m); // freeing a host tensor releases its host bytes
        m.free(a).unwrap();
        check(&m); // freeing a device tensor leaves host untouched
        m.free(a).unwrap();
        check(&m); // double-free of a dead tensor is a no-op
    }

    #[test]
    fn unknown_ids_and_devices_error() {
        let mut m = mm();
        assert!(m.info(99).is_err());
        assert!(m.touch(99).is_err());
        assert!(m.capacity(7).is_err());
        assert!(m.alloc_on_device("x", 10, TensorClass::Weight, 9).is_err());
    }

    /// Replays the policy's own `choose` loop over owned candidate copies
    /// — the seed-era semantics the ordered victim index must match.
    fn choose_loop_victims(
        m: &MemoryManager,
        dev: DeviceId,
        bytes: u64,
        policy: &dyn EvictionPolicy,
    ) -> Result<Vec<TensorId>, MemError> {
        let mut free = m.free_bytes(dev)?;
        if free >= bytes {
            return Ok(Vec::new());
        }
        let infos: Vec<TensorInfo> = m
            .tensor_infos()
            .filter(|t| t.pinned == 0 && t.residency == Residency::OnDevice(dev))
            .map(|t| t.to_owned_info())
            .collect();
        let mut candidates: Vec<&TensorInfo> = infos.iter().collect();
        let mut victims = Vec::new();
        while free < bytes {
            let victim = policy
                .choose(&candidates)
                .ok_or(MemError::InsufficientMemory {
                    device: dev,
                    needed: bytes,
                    capacity: m.capacity(dev)?,
                })?;
            let idx = candidates.iter().position(|t| t.id == victim).unwrap();
            free += candidates[idx].bytes;
            victims.push(victim);
            candidates.remove(idx);
        }
        Ok(victims)
    }

    #[test]
    fn ordered_index_matches_choose_loop_across_transitions() {
        let mut m = mm();
        let a = m.alloc_on_device("a", 200, TensorClass::Weight, 0).unwrap();
        let b = m.alloc_on_device("b", 250, TensorClass::Stash, 0).unwrap();
        let c = m.alloc_on_device("c", 300, TensorClass::Grad, 0).unwrap();
        // Small population: LRU planning walks the ordered index (built
        // on first use), next-use planning runs the selection scan. The
        // at-scale indexed NU walk is covered separately in
        // `nu_index_walk_matches_choose_loop_at_scale`.
        for need in [100, 400, 800] {
            assert_eq!(
                m.make_room(0, need, &Lru).unwrap(),
                choose_loop_victims(&m, 0, need, &Lru).unwrap()
            );
            assert_eq!(
                m.make_room(0, need, &NextUseAware).unwrap(),
                choose_loop_victims(&m, 0, need, &NextUseAware).unwrap()
            );
        }
        let verify = |m: &mut MemoryManager| {
            for need in [100, 400, 800] {
                let fast = m.make_room(0, need, &Lru);
                let dense = choose_loop_victims(m, 0, need, &Lru);
                assert_eq!(fast.ok(), dense.ok(), "lru victims diverged");
                let fast = m.make_room(0, need, &NextUseAware);
                let dense = choose_loop_victims(m, 0, need, &NextUseAware);
                assert_eq!(fast.ok(), dense.ok(), "next-use victims diverged");
            }
        };
        m.touch(a).unwrap(); // re-keys a in the built LRU index
        verify(&mut m);
        m.set_next_use(b, Some(7)).unwrap(); // re-keys b in the NU index
        verify(&mut m);
        m.set_next_use(b, None).unwrap();
        verify(&mut m);
        m.pin(c).unwrap(); // leaves both indexes
        verify(&mut m);
        m.unpin(c).unwrap(); // re-enters with its old last_use (middle insert)
        verify(&mut m);
        m.begin_p2p(c, 1).unwrap();
        verify(&mut m);
        m.cancel_move_to_device(c).unwrap(); // re-enters dev 0's indexes
        verify(&mut m);
        m.begin_swap_out(b).unwrap();
        m.finish_swap_out(b).unwrap();
        verify(&mut m);
        m.begin_swap_in(b, 0).unwrap();
        m.finish_move_to_device(b).unwrap(); // fresh arrival, new last_use
        verify(&mut m);
        m.free(a).unwrap();
        verify(&mut m);
    }

    #[test]
    fn nu_index_walk_matches_choose_loop_at_scale() {
        // Below NU_INDEX_BUILD_ABOVE residents, next-use planning runs
        // the selection scan; this test crosses the threshold so the
        // maintained ordered index serves the walk, then exercises every
        // maintenance path against the policy's own choose loop.
        let mut m = MemoryManager::new(vec![100_000]);
        let ids: Vec<TensorId> = (0..120)
            .map(|i| {
                m.alloc_on_device(format!("t{i}"), 100, TensorClass::Stash, 0)
                    .unwrap()
            })
            .collect();
        for (k, &id) in ids.iter().enumerate() {
            let hint = if k % 7 == 0 {
                None
            } else {
                Some((k * 3 % 41) as u64)
            };
            m.set_next_use(id, hint).unwrap();
        }
        let verify = |m: &mut MemoryManager| {
            for need in [88_500, 89_000] {
                assert_eq!(
                    m.make_room(0, need, &NextUseAware).unwrap(),
                    choose_loop_victims(m, 0, need, &NextUseAware).unwrap(),
                    "indexed next-use victims diverged from the choose loop"
                );
            }
        };
        verify(&mut m); // first plan at 120 residents builds the index
        assert!(
            m.fast.nu_index[0].is_some(),
            "120 residents must build the ordered NU index"
        );
        m.touch(ids[5]).unwrap(); // lazy: normalized at the next walk
        verify(&mut m);
        m.set_next_use(ids[9], Some(1_000)).unwrap(); // key shrink: eager re-key
        verify(&mut m);
        m.set_next_use(ids[9], Some(2)).unwrap(); // key growth: lazy
        verify(&mut m);
        m.pin(ids[0]).unwrap(); // field write; walk skips in place
        verify(&mut m);
        m.unpin(ids[0]).unwrap();
        verify(&mut m);
        m.begin_swap_out(ids[3]).unwrap(); // departure removes its entry
        m.finish_swap_out(ids[3]).unwrap();
        verify(&mut m);
        m.begin_swap_in(ids[3], 0).unwrap();
        m.finish_move_to_device(ids[3]).unwrap(); // arrival seeds a fresh key
        verify(&mut m);
        assert!(m.fast.nu_index[0].is_some(), "population stayed large");
    }

    #[test]
    fn nu_index_drops_back_to_scan_when_population_shrinks() {
        let mut m = MemoryManager::new(vec![100_000]);
        let ids: Vec<TensorId> = (0..120)
            .map(|i| {
                m.alloc_on_device(format!("t{i}"), 100, TensorClass::Stash, 0)
                    .unwrap()
            })
            .collect();
        m.make_room(0, 88_500, &NextUseAware).unwrap();
        assert!(m.fast.nu_index[0].is_some());
        for &id in &ids[..100] {
            m.free(id).unwrap();
        }
        // 20 residents < NU_INDEX_DROP_BELOW: the next walk drops the
        // index (set_next_use reverts to a pure field write) and the
        // scan still matches the choose loop exactly.
        assert_eq!(
            m.make_room(0, 98_500, &NextUseAware).unwrap(),
            choose_loop_victims(&m, 0, 98_500, &NextUseAware).unwrap()
        );
        assert!(
            m.fast.nu_index[0].is_none(),
            "a shrunken population must drop the NU index"
        );
    }

    #[test]
    fn into_planning_is_plan_bounded_on_fresh_allocs() {
        let mut m = mm();
        for i in 0..8 {
            m.alloc_on_device(format!("t{i}"), 100, TensorClass::Stash, 0)
                .unwrap();
        }
        let mut scratch = Vec::new();
        for _ in 0..100 {
            scratch.clear();
            m.make_room_into(0, 300, &Lru, &mut scratch).unwrap();
            assert_eq!(scratch.len(), 1, "one 100 B victim frees 300 B of 200 free");
        }
        let c = m.stats().counters;
        assert_eq!(
            c.fresh_allocs, 1,
            "one lazy index build; repeated planning allocates nothing"
        );
        assert_eq!(c.victim_pops, 100);
        assert_eq!(c.candidate_scans, 0, "indexed path never calls choose");
    }
}

#[cfg(test)]
mod dirty_tests {
    use super::*;
    use crate::TensorClass;

    #[test]
    fn fresh_device_tensors_are_dirty_without_host_copy() {
        let mut m = MemoryManager::new(vec![1000]);
        let a = m.alloc_on_device("a", 100, TensorClass::Stash, 0).unwrap();
        assert!(m.info(a).unwrap().dirty);
        assert!(!m.info(a).unwrap().host_copy_valid);
        assert!(!m.can_drop(a).unwrap());
        assert!(m.drop_to_host(a).is_err());
    }

    #[test]
    fn swapped_in_weights_are_clean_and_droppable() {
        let mut m = MemoryManager::new(vec![1000]);
        let w = m.register_on_host("w", 100, TensorClass::Weight);
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        assert!(m.can_drop(w).unwrap(), "clean + host copy valid");
        let before = m.stats().total();
        m.drop_to_host(w).unwrap();
        assert_eq!(m.stats().total(), before, "dropping is free");
        assert_eq!(m.info(w).unwrap().residency, Residency::OnHost);
        assert_eq!(m.used(0).unwrap(), 0);
    }

    #[test]
    fn marking_dirty_invalidates_host_copy() {
        let mut m = MemoryManager::new(vec![1000]);
        let w = m.register_on_host("w", 100, TensorClass::Weight);
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        m.mark_dirty(w).unwrap();
        assert!(!m.can_drop(w).unwrap());
        // A dirty tensor must be swapped out (writeback) to become clean.
        m.begin_swap_out(w).unwrap();
        m.finish_swap_out(w).unwrap();
        assert!(!m.info(w).unwrap().dirty);
        assert!(m.info(w).unwrap().host_copy_valid);
    }

    #[test]
    fn pinned_tensors_cannot_be_dropped() {
        let mut m = MemoryManager::new(vec![1000]);
        let w = m.register_on_host("w", 100, TensorClass::Weight);
        m.begin_swap_in(w, 0).unwrap();
        m.finish_move_to_device(w).unwrap();
        m.pin(w).unwrap();
        assert!(m.drop_to_host(w).is_err());
        m.unpin(w).unwrap();
        assert!(m.drop_to_host(w).is_ok());
    }

    /// The dense recomputation the indexed `eviction_candidates` replaced.
    fn dense_candidates(m: &MemoryManager, dev: DeviceId) -> Vec<TensorId> {
        let mut v: Vec<TensorId> = m
            .tensor_infos()
            .filter(|t| t.pinned == 0 && t.residency == Residency::OnDevice(dev))
            .map(|t| t.id)
            .collect();
        v.sort_unstable();
        v
    }

    fn assert_index_matches_dense(m: &MemoryManager) {
        for dev in 0..m.num_devices() {
            let indexed: Vec<TensorId> = m.eviction_candidates(dev).map(|t| t.id).collect();
            assert_eq!(
                indexed,
                dense_candidates(m, dev),
                "evictable index diverged from dense filter+sort on dev {dev}"
            );
        }
    }

    #[test]
    fn eviction_candidate_order_matches_dense_recomputation() {
        let mut m = MemoryManager::new(vec![1000, 1000]);
        let a = m.alloc_on_device("a", 100, TensorClass::Weight, 0).unwrap();
        let b = m
            .alloc_on_device("b", 200, TensorClass::Activation, 0)
            .unwrap();
        let c = m.alloc_on_device("c", 300, TensorClass::Grad, 1).unwrap();
        let h = m.register_on_host("h", 150, TensorClass::Weight);
        assert_index_matches_dense(&m);

        m.pin(a).unwrap();
        assert_index_matches_dense(&m);
        m.pin(a).unwrap(); // nested pin: still out of the index exactly once
        assert_index_matches_dense(&m);
        m.unpin(a).unwrap();
        assert_index_matches_dense(&m); // still pinned (count 1)
        m.unpin(a).unwrap();
        assert_index_matches_dense(&m); // back in the index

        m.begin_swap_out(b).unwrap();
        assert_index_matches_dense(&m); // in flight: not a candidate
        m.finish_swap_out(b).unwrap();
        assert_index_matches_dense(&m);

        m.begin_swap_in(h, 0).unwrap();
        assert_index_matches_dense(&m);
        m.finish_move_to_device(h).unwrap();
        assert_index_matches_dense(&m);

        m.begin_p2p(c, 0).unwrap();
        assert_index_matches_dense(&m); // leaves dev 1 immediately
        m.finish_move_to_device(c).unwrap();
        assert_index_matches_dense(&m); // arrives on dev 0

        m.drop_to_host(h).unwrap();
        assert_index_matches_dense(&m);
        m.free(a).unwrap();
        assert_index_matches_dense(&m);

        // Candidates on dev 0 are ascending by id, as policies require.
        let ids: Vec<TensorId> = m.eviction_candidates(0).map(|t| t.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        // Unknown device: empty, no panic (old behavior preserved).
        assert_eq!(m.eviction_candidates(7).count(), 0);
    }

    #[test]
    fn p2p_move_preserves_dirty_state() {
        let mut m = MemoryManager::new(vec![1000, 1000]);
        let a = m
            .alloc_on_device("a", 100, TensorClass::Activation, 0)
            .unwrap();
        assert!(m.info(a).unwrap().dirty);
        m.begin_p2p(a, 1).unwrap();
        m.finish_move_to_device(a).unwrap();
        assert!(m.info(a).unwrap().dirty, "p2p does not sync host");
        assert!(!m.info(a).unwrap().host_copy_valid);
    }
}
