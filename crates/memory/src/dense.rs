//! The pre-rewrite memory manager, frozen as the `dense_memory` reference.
//!
//! This is the seed-era data layout the ordered-victim-index rewrite
//! replaced: an AoS `Vec<TensorInfo>`, an `O(tensors)` `host_used` re-scan,
//! and a `make_room` that materializes a fresh candidate slice and
//! re-offers it to `policy.choose` once per victim. `harness::memdiff`
//! proves the fast core byte-identical to this one (same traces, same
//! `RunSummary` JSON, same errors, same victim order) exactly the way
//! simdiff froze the dense network engine and execdiff froze the dense
//! executor loop. Keep this file in lockstep with nothing — it is the
//! reference and must not change behavior.

use std::collections::BTreeSet;

use crate::manager::{FetchAction, Residency, TensorInfo, TensorView};
use crate::observe::MemEvent;
use crate::policy::EvictionPolicy;
use crate::stats::{Direction, SwapStats};
use crate::{DeviceId, MemError, TensorClass, TensorId};

/// The frozen dense state machine. Lives behind the `dense_memory`
/// feature; reached only through [`crate::MemoryManager::convert_to_dense`].
#[derive(Debug)]
pub(crate) struct DenseCore {
    capacities: Vec<u64>,
    used: Vec<u64>,
    peak_used: Vec<u64>,
    /// Dense per-tensor records, indexed by `TensorId`.
    tensors: Vec<TensorInfo>,
    /// Per-device index of evictable tensors (unpinned, device-resident),
    /// ascending by id.
    evictable: Vec<BTreeSet<TensorId>>,
    next_id: TensorId,
    clock: u64,
    pub(crate) stats: SwapStats,
    /// True while observers are attached on the wrapper: state transitions
    /// buffer a [`MemEvent`] for the wrapper to flush.
    pub(crate) record: bool,
    pub(crate) pending: Vec<MemEvent>,
}

impl DenseCore {
    /// Builds a dense core from a transplant of the fast core's state.
    /// Valid at any point in a run: both cores expose identical logical
    /// state, so this is a field-for-field copy, not an op replay.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        capacities: Vec<u64>,
        used: Vec<u64>,
        peak_used: Vec<u64>,
        tensors: Vec<TensorInfo>,
        evictable: Vec<BTreeSet<TensorId>>,
        next_id: TensorId,
        clock: u64,
        stats: SwapStats,
        record: bool,
        pending: Vec<MemEvent>,
    ) -> Self {
        DenseCore {
            capacities,
            used,
            peak_used,
            tensors,
            evictable,
            next_id,
            clock,
            stats,
            record,
            pending,
        }
    }

    fn note(&mut self, event: MemEvent) {
        if self.record {
            self.pending.push(event);
        }
    }

    pub(crate) fn set_capacity(&mut self, dev: DeviceId, bytes: u64) -> Result<u64, MemError> {
        let used = self.used(dev)?;
        let effective = bytes.max(used);
        self.capacities[dev] = effective;
        self.note(MemEvent::CapacityChanged {
            dev,
            capacity: effective,
        });
        Ok(effective)
    }

    pub(crate) fn tensor_count(&self) -> usize {
        self.tensors.len()
    }

    pub(crate) fn view(&self, id: TensorId) -> Option<TensorView<'_>> {
        self.tensors.get(id as usize).map(TensorView::of)
    }

    pub(crate) fn evictable_set(&self, dev: DeviceId) -> Option<&BTreeSet<TensorId>> {
        self.evictable.get(dev)
    }

    pub(crate) fn num_devices(&self) -> usize {
        self.capacities.len()
    }

    pub(crate) fn capacity(&self, dev: DeviceId) -> Result<u64, MemError> {
        self.capacities
            .get(dev)
            .copied()
            .ok_or(MemError::UnknownDevice(dev))
    }

    pub(crate) fn used(&self, dev: DeviceId) -> Result<u64, MemError> {
        self.used
            .get(dev)
            .copied()
            .ok_or(MemError::UnknownDevice(dev))
    }

    pub(crate) fn free_bytes(&self, dev: DeviceId) -> Result<u64, MemError> {
        Ok(self.capacity(dev)? - self.used(dev)?)
    }

    pub(crate) fn peak_used(&self, dev: DeviceId) -> Result<u64, MemError> {
        self.peak_used
            .get(dev)
            .copied()
            .ok_or(MemError::UnknownDevice(dev))
    }

    pub(crate) fn stats(&self) -> &SwapStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut SwapStats {
        &mut self.stats
    }

    /// The seed-era O(tensors) re-scan — deliberately kept: this is the
    /// behavior (and cost) the fast core's incremental counter is checked
    /// against.
    pub(crate) fn host_used(&self) -> u64 {
        self.tensors
            .iter()
            .filter(|t| {
                matches!(
                    t.residency,
                    Residency::OnHost | Residency::MovingToHost { .. }
                )
            })
            .map(|t| t.bytes)
            .sum()
    }

    fn info(&self, id: TensorId) -> Result<&TensorInfo, MemError> {
        self.tensors
            .get(id as usize)
            .ok_or(MemError::UnknownTensor(id))
    }

    fn info_mut(&mut self, id: TensorId) -> Result<&mut TensorInfo, MemError> {
        self.tensors
            .get_mut(id as usize)
            .ok_or(MemError::UnknownTensor(id))
    }

    fn charge(&mut self, dev: DeviceId, bytes: u64) {
        self.used[dev] += bytes;
        if self.used[dev] > self.peak_used[dev] {
            self.peak_used[dev] = self.used[dev];
        }
    }

    fn release(&mut self, dev: DeviceId, bytes: u64) {
        debug_assert!(self.used[dev] >= bytes, "capacity accounting underflow");
        self.used[dev] = self.used[dev].saturating_sub(bytes);
    }

    pub(crate) fn register_on_host(
        &mut self,
        name: String,
        bytes: u64,
        class: TensorClass,
    ) -> TensorId {
        let id = self.next_id;
        self.next_id += 1;
        self.clock += 1;
        debug_assert_eq!(id as usize, self.tensors.len());
        self.tensors.push(TensorInfo {
            id,
            name,
            bytes,
            class,
            residency: Residency::OnHost,
            pinned: 0,
            last_use: self.clock,
            next_use_hint: None,
            dirty: false,
            host_copy_valid: true,
        });
        self.note(MemEvent::RegisterHost { id, bytes, class });
        id
    }

    pub(crate) fn alloc_on_device(
        &mut self,
        name: String,
        bytes: u64,
        class: TensorClass,
        dev: DeviceId,
    ) -> Result<TensorId, MemError> {
        if self.free_bytes(dev)? < bytes {
            return Err(MemError::InsufficientMemory {
                device: dev,
                needed: bytes,
                capacity: self.capacity(dev)?,
            });
        }
        self.charge(dev, bytes);
        let id = self.next_id;
        self.next_id += 1;
        self.clock += 1;
        debug_assert_eq!(id as usize, self.tensors.len());
        self.tensors.push(TensorInfo {
            id,
            name,
            bytes,
            class,
            residency: Residency::OnDevice(dev),
            pinned: 0,
            last_use: self.clock,
            next_use_hint: None,
            // Fresh device-side outputs have no host copy yet.
            dirty: true,
            host_copy_valid: false,
        });
        self.evictable[dev].insert(id);
        self.note(MemEvent::Alloc {
            id,
            dev,
            bytes,
            class,
        });
        Ok(id)
    }

    pub(crate) fn touch(&mut self, id: TensorId) -> Result<(), MemError> {
        self.clock += 1;
        let clock = self.clock;
        self.info_mut(id)?.last_use = clock;
        self.note(MemEvent::Use { id });
        Ok(())
    }

    pub(crate) fn set_next_use(&mut self, id: TensorId, hint: Option<u64>) -> Result<(), MemError> {
        self.info_mut(id)?.next_use_hint = hint;
        Ok(())
    }

    pub(crate) fn pin(&mut self, id: TensorId) -> Result<(), MemError> {
        let info = self.info_mut(id)?;
        match info.residency {
            Residency::OnDevice(d) => {
                info.pinned += 1;
                if info.pinned == 1 {
                    self.evictable[d].remove(&id);
                }
                self.note(MemEvent::Pin { id });
                Ok(())
            }
            ref other => Err(MemError::InvalidState {
                id,
                op: "pin",
                state: other.describe(),
            }),
        }
    }

    pub(crate) fn unpin(&mut self, id: TensorId) -> Result<(), MemError> {
        let info = self.info_mut(id)?;
        if info.pinned == 0 {
            return Err(MemError::InvalidState {
                id,
                op: "unpin",
                state: "not pinned".to_string(),
            });
        }
        info.pinned -= 1;
        if info.pinned == 0 {
            if let Residency::OnDevice(d) = info.residency {
                self.evictable[d].insert(id);
            }
        }
        self.note(MemEvent::Unpin { id });
        Ok(())
    }

    pub(crate) fn free(&mut self, id: TensorId) -> Result<(), MemError> {
        let (residency, pinned, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.pinned, t.bytes)
        };
        if pinned > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "free",
                state: "pinned".to_string(),
            });
        }
        match residency {
            Residency::OnDevice(d) => {
                self.release(d, bytes);
                self.evictable[d].remove(&id);
            }
            Residency::OnHost | Residency::Dead => {}
            moving => {
                return Err(MemError::InvalidState {
                    id,
                    op: "free",
                    state: moving.describe(),
                })
            }
        }
        self.info_mut(id)?.residency = Residency::Dead;
        self.note(MemEvent::Free { id });
        Ok(())
    }

    /// The seed-era candidate materialization: a fresh `Vec<&TensorInfo>`
    /// per call. Kept private to this core; the wrapper's public
    /// `eviction_candidates` iterates the set without allocating.
    fn materialize_candidates(&self, dev: DeviceId) -> Vec<&TensorInfo> {
        match self.evictable.get(dev) {
            Some(set) => set.iter().map(|&id| &self.tensors[id as usize]).collect(),
            None => Vec::new(),
        }
    }

    pub(crate) fn make_room_into(
        &mut self,
        dev: DeviceId,
        bytes: u64,
        policy: &dyn EvictionPolicy,
        out: &mut Vec<TensorId>,
    ) -> Result<(), MemError> {
        let mut free = self.free_bytes(dev)?;
        if free >= bytes {
            return Ok(());
        }
        // Frozen seed-era shape: snapshot the candidate set, then re-offer
        // the shrinking slice to `choose` once per victim.
        let mut scans = 0u64;
        let result = {
            let mut candidates = self.materialize_candidates(dev);
            loop {
                if free >= bytes {
                    break Ok(());
                }
                scans += candidates.len() as u64;
                let Some(victim) = policy.choose(&candidates) else {
                    break Err(MemError::InsufficientMemory {
                        device: dev,
                        needed: bytes,
                        capacity: self.capacities[dev],
                    });
                };
                // The policy is an external trait object: a buggy
                // implementation returning an id outside the candidate set
                // is an error to report, not an invariant to die on.
                match candidates.iter().position(|t| t.id == victim) {
                    Some(idx) => {
                        free += candidates[idx].bytes;
                        out.push(victim);
                        candidates.remove(idx);
                    }
                    None => {
                        break Err(MemError::InvalidState {
                            id: victim,
                            op: "evict",
                            state: "not in the eviction-candidate set the policy was offered"
                                .to_string(),
                        })
                    }
                }
            }
        };
        self.stats.counters.fresh_allocs += 2; // candidate vec + victim growth
        self.stats.counters.candidate_scans += scans;
        result
    }

    pub(crate) fn plan_fetch_into(
        &mut self,
        id: TensorId,
        dev: DeviceId,
        policy: &dyn EvictionPolicy,
        out: &mut Vec<TensorId>,
    ) -> Result<FetchAction, MemError> {
        let (residency, bytes) = {
            let info = self.info(id)?;
            (info.residency, info.bytes)
        };
        match residency {
            Residency::OnDevice(d) if d == dev => Ok(FetchAction {
                needs_transfer: false,
                src_device: None,
            }),
            Residency::OnDevice(src) => {
                self.make_room_into(dev, bytes, policy, out)?;
                Ok(FetchAction {
                    needs_transfer: true,
                    src_device: Some(src),
                })
            }
            Residency::OnHost => {
                self.make_room_into(dev, bytes, policy, out)?;
                Ok(FetchAction {
                    needs_transfer: true,
                    src_device: None,
                })
            }
            ref other => Err(MemError::InvalidState {
                id,
                op: "plan_fetch",
                state: other.describe(),
            }),
        }
    }

    pub(crate) fn begin_swap_out(&mut self, id: TensorId) -> Result<(DeviceId, u64), MemError> {
        let (residency, pinned, bytes, class) = {
            let t = self.info(id)?;
            (t.residency, t.pinned, t.bytes, t.class)
        };
        let src = match residency {
            Residency::OnDevice(d) => d,
            other => {
                return Err(MemError::InvalidState {
                    id,
                    op: "begin_swap_out",
                    state: other.describe(),
                })
            }
        };
        if pinned > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "begin_swap_out",
                state: "pinned".to_string(),
            });
        }
        self.info_mut(id)?.residency = Residency::MovingToHost { src };
        self.evictable[src].remove(&id);
        self.stats.record(src, Direction::Out, class, bytes);
        self.note(MemEvent::BeginSwapOut { id, src, bytes });
        Ok((src, bytes))
    }

    pub(crate) fn finish_swap_out(&mut self, id: TensorId) -> Result<(), MemError> {
        let (residency, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.bytes)
        };
        match residency {
            Residency::MovingToHost { src } => {
                self.release(src, bytes);
                let t = self.info_mut(id)?;
                t.residency = Residency::OnHost;
                t.dirty = false;
                t.host_copy_valid = true;
                self.note(MemEvent::FinishSwapOut { id, src, bytes });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "finish_swap_out",
                state: other.describe(),
            }),
        }
    }

    pub(crate) fn begin_swap_in(&mut self, id: TensorId, dev: DeviceId) -> Result<u64, MemError> {
        let (residency, bytes, class) = {
            let t = self.info(id)?;
            (t.residency, t.bytes, t.class)
        };
        if residency != Residency::OnHost {
            return Err(MemError::InvalidState {
                id,
                op: "begin_swap_in",
                state: residency.describe(),
            });
        }
        if self.free_bytes(dev)? < bytes {
            return Err(MemError::InsufficientMemory {
                device: dev,
                needed: bytes,
                capacity: self.capacity(dev)?,
            });
        }
        self.charge(dev, bytes);
        self.info_mut(id)?.residency = Residency::MovingToDevice {
            dst: dev,
            src: None,
        };
        self.stats.record(dev, Direction::In, class, bytes);
        self.note(MemEvent::BeginSwapIn {
            id,
            dst: dev,
            bytes,
        });
        Ok(bytes)
    }

    pub(crate) fn begin_p2p(
        &mut self,
        id: TensorId,
        dst: DeviceId,
    ) -> Result<(DeviceId, u64), MemError> {
        let (residency, pinned, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.pinned, t.bytes)
        };
        let src = match residency {
            Residency::OnDevice(d) if d != dst => d,
            other => {
                return Err(MemError::InvalidState {
                    id,
                    op: "begin_p2p",
                    state: other.describe(),
                })
            }
        };
        if pinned > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "begin_p2p",
                state: "pinned".to_string(),
            });
        }
        if self.free_bytes(dst)? < bytes {
            return Err(MemError::InsufficientMemory {
                device: dst,
                needed: bytes,
                capacity: self.capacity(dst)?,
            });
        }
        self.charge(dst, bytes);
        self.info_mut(id)?.residency = Residency::MovingToDevice {
            dst,
            src: Some(src),
        };
        self.evictable[src].remove(&id);
        self.stats.record_p2p(bytes);
        self.note(MemEvent::BeginP2p {
            id,
            src,
            dst,
            bytes,
        });
        Ok((src, bytes))
    }

    pub(crate) fn finish_move_to_device(&mut self, id: TensorId) -> Result<DeviceId, MemError> {
        let (residency, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.bytes)
        };
        match residency {
            Residency::MovingToDevice { dst, src } => {
                if let Some(s) = src {
                    self.release(s, bytes);
                }
                self.clock += 1;
                let clock = self.clock;
                let t = self.info_mut(id)?;
                t.residency = Residency::OnDevice(dst);
                t.last_use = clock;
                // A host->device copy leaves the host copy valid; a p2p
                // move does not touch host validity.
                if src.is_none() {
                    t.dirty = false;
                }
                // A moving tensor can never be pinned (pin requires
                // device residency), so it is evictable on arrival.
                self.evictable[dst].insert(id);
                self.note(MemEvent::FinishMove {
                    id,
                    dst,
                    p2p: src.is_some(),
                });
                Ok(dst)
            }
            other => Err(MemError::InvalidState {
                id,
                op: "finish_move_to_device",
                state: other.describe(),
            }),
        }
    }

    pub(crate) fn cancel_move_to_device(&mut self, id: TensorId) -> Result<(), MemError> {
        let (residency, bytes) = {
            let t = self.info(id)?;
            (t.residency, t.bytes)
        };
        match residency {
            Residency::MovingToDevice { dst, src } => {
                self.release(dst, bytes);
                match src {
                    Some(s) => {
                        // A moving tensor can never be pinned (pin
                        // requires device residency), so it is evictable
                        // again the moment it is back on `s`.
                        self.info_mut(id)?.residency = Residency::OnDevice(s);
                        self.evictable[s].insert(id);
                    }
                    None => {
                        self.info_mut(id)?.residency = Residency::OnHost;
                    }
                }
                self.note(MemEvent::CancelMove {
                    id,
                    dst,
                    p2p: src.is_some(),
                });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "cancel_move_to_device",
                state: other.describe(),
            }),
        }
    }

    pub(crate) fn mark_dirty(&mut self, id: TensorId) -> Result<(), MemError> {
        let t = self.info_mut(id)?;
        t.dirty = true;
        t.host_copy_valid = false;
        self.note(MemEvent::MarkDirty { id });
        Ok(())
    }

    pub(crate) fn can_drop(&self, id: TensorId) -> Result<bool, MemError> {
        let t = self.info(id)?;
        Ok(!t.dirty && t.host_copy_valid && matches!(t.residency, Residency::OnDevice(_)))
    }

    pub(crate) fn drop_to_host(&mut self, id: TensorId) -> Result<(), MemError> {
        let (residency, pinned, bytes, dirty, host_copy_valid) = {
            let t = self.info(id)?;
            (t.residency, t.pinned, t.bytes, t.dirty, t.host_copy_valid)
        };
        if pinned > 0 {
            return Err(MemError::InvalidState {
                id,
                op: "drop_to_host",
                state: "pinned".to_string(),
            });
        }
        match residency {
            Residency::OnDevice(d) if !dirty && host_copy_valid => {
                self.release(d, bytes);
                self.evictable[d].remove(&id);
                self.info_mut(id)?.residency = Residency::OnHost;
                self.note(MemEvent::DropToHost {
                    id,
                    dev: d,
                    was_dirty: dirty,
                    had_host_copy: host_copy_valid,
                });
                Ok(())
            }
            other => Err(MemError::InvalidState {
                id,
                op: "drop_to_host",
                state: if dirty {
                    "dirty".to_string()
                } else {
                    other.describe()
                },
            }),
        }
    }
}
