//! Payload storage for functional execution.
//!
//! In functional mode the memory manager's residency states are backed by
//! real `harmony_tensor::Tensor` payloads. The store is deliberately
//! location-agnostic: *where* a tensor is resident is the manager's
//! business; the store only guarantees the bytes exist exactly once. This
//! mirrors how a real runtime keeps one canonical buffer per tensor and
//! moves it between host and device allocations.

use std::collections::HashMap;

use harmony_tensor::Tensor;

use crate::{MemError, TensorId};

/// Owns the actual tensor payloads referenced by a [`crate::MemoryManager`].
#[derive(Debug, Default)]
pub struct TensorStore {
    data: HashMap<TensorId, Tensor>,
}

impl TensorStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TensorStore::default()
    }

    /// Inserts (or replaces) the payload for `id`.
    pub fn put(&mut self, id: TensorId, tensor: Tensor) {
        self.data.insert(id, tensor);
    }

    /// Reads a payload.
    pub fn get(&self, id: TensorId) -> Result<&Tensor, MemError> {
        self.data.get(&id).ok_or(MemError::UnknownTensor(id))
    }

    /// Mutable access to a payload (in-place weight updates).
    pub fn get_mut(&mut self, id: TensorId) -> Result<&mut Tensor, MemError> {
        self.data.get_mut(&id).ok_or(MemError::UnknownTensor(id))
    }

    /// Removes and returns a payload (tensor freed).
    pub fn take(&mut self, id: TensorId) -> Result<Tensor, MemError> {
        self.data.remove(&id).ok_or(MemError::UnknownTensor(id))
    }

    /// Number of live payloads.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no payloads are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total bytes held.
    pub fn total_bytes(&self) -> u64 {
        self.data.values().map(Tensor::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_take_roundtrip() {
        let mut s = TensorStore::new();
        s.put(1, Tensor::full([2], 3.0));
        assert_eq!(s.get(1).unwrap().data(), &[3.0, 3.0]);
        s.get_mut(1).unwrap().data_mut()[0] = 5.0;
        assert_eq!(s.get(1).unwrap().data(), &[5.0, 3.0]);
        let t = s.take(1).unwrap();
        assert_eq!(t.numel(), 2);
        assert!(s.get(1).is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn total_bytes_sums_payloads() {
        let mut s = TensorStore::new();
        s.put(1, Tensor::zeros([10]));
        s.put(2, Tensor::zeros([5]));
        assert_eq!(s.total_bytes(), 60);
        assert_eq!(s.len(), 2);
    }
}
