//! Throwaway microprobe: isolates the per-op cost of the executor's
//! memory-manager call pattern on the fast core vs the frozen dense
//! core. Run with:
//!   cargo run -p harmony-memory --release --features dense_memory --example hotprobe

use harmony_memory::{Lru, MemoryManager, TensorClass};
use std::time::Instant;

fn build(n_tensors: usize, dense: bool) -> (MemoryManager, Vec<u64>) {
    let mut m = MemoryManager::new(vec![100_000; 2]);
    let mut ids = Vec::new();
    for i in 0..n_tensors {
        let id = m
            .alloc_on_device(format!("t{i}"), 1_000, TensorClass::Stash, 0)
            .unwrap();
        ids.push(id);
    }
    if dense {
        m.convert_to_dense();
    }
    (m, ids)
}

fn run(n_tensors: usize, iters: usize, dense: bool, with_plan: bool) -> f64 {
    let (mut m, ids) = build(n_tensors, dense);
    let mut scratch = Vec::new();
    let start = Instant::now();
    for k in 0..iters {
        let id = ids[k % ids.len()];
        let _ = m.info(id).unwrap();
        m.touch(id).unwrap();
        m.pin(id).unwrap();
        m.set_next_use(id, Some(k as u64)).unwrap();
        if with_plan && k % 3 == 0 {
            scratch.clear();
            // Device is full: planning must name one victim.
            m.make_room_into(0, 500, &Lru, &mut scratch).unwrap();
        }
        m.unpin(id).unwrap();
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    const ITERS: usize = 2_000_000;
    for n in [8usize, 32, 100] {
        for with_plan in [false, true] {
            // Interleave + best-of-3 per mode.
            let mut fast = f64::MAX;
            let mut dense = f64::MAX;
            for _ in 0..3 {
                fast = fast.min(run(n, ITERS, false, with_plan));
                dense = dense.min(run(n, ITERS, true, with_plan));
            }
            println!(
                "n={n:4} plan={} fast {:8.1} ns/cycle  dense {:8.1} ns/cycle  ratio {:.2}x",
                with_plan as u8,
                fast * 1e9 / ITERS as f64,
                dense * 1e9 / ITERS as f64,
                dense / fast,
            );
        }
    }
}
