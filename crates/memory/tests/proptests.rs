//! Property-based tests on the memory manager's state machine: random
//! operation sequences must never violate capacity accounting, and swap
//! statistics must exactly mirror the transfers performed.

use harmony_memory::{
    Direction, EvictionPolicy, Lru, MemError, MemoryManager, NextUseAware, Residency, TensorClass,
    TensorId, TensorInfo,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    RegisterHost(u64),
    AllocDevice(u64, usize),
    SwapIn(usize, usize),
    SwapOut(usize),
    P2p(usize, usize),
    Pin(usize),
    Unpin(usize),
    Free(usize),
    Touch(usize),
    Drop(usize),
    MarkDirty(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..5000).prop_map(Op::RegisterHost),
        ((1u64..5000), (0usize..3)).prop_map(|(b, d)| Op::AllocDevice(b, d)),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| Op::SwapIn(t, d)),
        (0usize..40).prop_map(Op::SwapOut),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| Op::P2p(t, d)),
        (0usize..40).prop_map(Op::Pin),
        (0usize..40).prop_map(Op::Unpin),
        (0usize..40).prop_map(Op::Free),
        (0usize..40).prop_map(Op::Touch),
        (0usize..40).prop_map(Op::Drop),
        (0usize..40).prop_map(Op::MarkDirty),
    ]
}

/// Recomputes `used` from first principles via tensor states.
fn recomputed_used(mm: &MemoryManager, ids: &[TensorId], dev: usize) -> u64 {
    ids.iter()
        .filter_map(|&id| mm.info(id).ok())
        .map(|t| match t.residency {
            Residency::OnDevice(d) if d == dev => t.bytes,
            Residency::MovingToDevice { dst, src } => {
                let mut b = 0;
                if dst == dev {
                    b += t.bytes;
                }
                if src == Some(dev) {
                    b += t.bytes;
                }
                b
            }
            Residency::MovingToHost { src } if src == dev => t.bytes,
            _ => 0,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_op_sequences_preserve_accounting(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let caps = vec![10_000u64, 6_000, 3_000];
        let mut mm = MemoryManager::new(caps.clone());
        let mut ids: Vec<TensorId> = Vec::new();
        let mut expected_in = 0u64;
        let mut expected_out = 0u64;
        let mut expected_p2p = 0u64;

        for op in ops {
            match op {
                Op::RegisterHost(b) => {
                    ids.push(mm.register_on_host("t", b, TensorClass::Weight));
                }
                Op::AllocDevice(b, d) => {
                    if let Ok(id) = mm.alloc_on_device("a", b, TensorClass::Stash, d) {
                        ids.push(id);
                    }
                }
                Op::SwapIn(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if let Ok(b) = mm.begin_swap_in(id, d) {
                            expected_in += b;
                            mm.finish_move_to_device(id).unwrap();
                        }
                    }
                }
                Op::SwapOut(t) => {
                    if let Some(&id) = ids.get(t) {
                        if let Ok((_, b)) = mm.begin_swap_out(id) {
                            expected_out += b;
                            mm.finish_swap_out(id).unwrap();
                        }
                    }
                }
                Op::P2p(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if let Ok((_, b)) = mm.begin_p2p(id, d) {
                            expected_p2p += b;
                            mm.finish_move_to_device(id).unwrap();
                        }
                    }
                }
                Op::Pin(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.pin(id);
                    }
                }
                Op::Unpin(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.unpin(id);
                    }
                }
                Op::Free(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.free(id);
                    }
                }
                Op::Touch(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.touch(id);
                    }
                }
                Op::Drop(t) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.can_drop(id).unwrap_or(false) {
                            mm.drop_to_host(id).unwrap();
                        }
                    }
                }
                Op::MarkDirty(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.mark_dirty(id);
                    }
                }
            }
            // Invariants after every operation:
            for (d, &cap) in caps.iter().enumerate() {
                let used = mm.used(d).unwrap();
                prop_assert!(used <= cap, "device {} used {} > cap {}", d, used, cap);
                prop_assert!(used <= mm.peak_used(d).unwrap());
                prop_assert_eq!(
                    used,
                    recomputed_used(&mm, &ids, d),
                    "accounting drift on device {}", d
                );
            }
        }
        // Stats mirror the performed transfers exactly.
        let total_in: u64 = (0..caps.len()).map(|d| mm.stats().device_total(d, Direction::In)).sum();
        let total_out: u64 = (0..caps.len()).map(|d| mm.stats().device_total(d, Direction::Out)).sum();
        prop_assert_eq!(total_in, expected_in);
        prop_assert_eq!(total_out, expected_out);
        prop_assert_eq!(mm.stats().p2p_bytes, expected_p2p);
    }

    #[test]
    fn make_room_victims_always_suffice_and_are_unpinned(
        sizes in prop::collection::vec(50u64..800, 1..12),
        pin_mask in prop::collection::vec(any::<bool>(), 12),
        need in 1u64..2500,
        use_next_use in any::<bool>(),
    ) {
        let mut mm = MemoryManager::new(vec![3_000]);
        let mut ids = Vec::new();
        for (i, &b) in sizes.iter().enumerate() {
            if let Ok(id) = mm.alloc_on_device("a", b, TensorClass::Weight, 0) {
                if pin_mask.get(i).copied().unwrap_or(false) {
                    mm.pin(id).unwrap();
                }
                ids.push(id);
            }
        }
        let result = if use_next_use {
            mm.make_room(0, need, &NextUseAware)
        } else {
            mm.make_room(0, need, &Lru)
        };
        match result {
            Ok(victims) => {
                let freed: u64 = victims.iter().map(|&v| mm.info(v).unwrap().bytes).sum();
                let free = mm.free_bytes(0).unwrap();
                prop_assert!(free + freed >= need, "plan frees too little");
                for v in &victims {
                    prop_assert_eq!(mm.info(*v).unwrap().pinned, 0, "pinned victim");
                }
                // No duplicates.
                let mut sorted = victims.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), victims.len());
            }
            Err(_) => {
                // Must genuinely be impossible: free + all unpinned < need.
                let unpinned: u64 = ids
                    .iter()
                    .filter(|&&id| mm.info(id).unwrap().pinned == 0)
                    .map(|&id| mm.info(id).unwrap().bytes)
                    .sum();
                prop_assert!(
                    mm.free_bytes(0).unwrap() + unpinned < need,
                    "manager refused although room existed"
                );
            }
        }
    }
}

/// Ops for the ordered-victim-index differential: all 8 residency/pin
/// transitions (register/alloc, swap in, swap out, p2p, pin, unpin, free,
/// finish/cancel), plus drop_to_host, touch, mark_dirty, and set_next_use
/// re-keying — with `make_room` probes interleaved so the ordered indexes
/// get built mid-sequence and every later transition exercises the
/// incremental maintenance.
#[derive(Debug, Clone)]
enum IxOp {
    RegisterHost(u64),
    AllocDevice(u64, usize),
    SwapIn(usize, usize),
    SwapInCancelled(usize, usize),
    SwapOut(usize),
    P2p(usize, usize),
    P2pCancelled(usize, usize),
    Pin(usize),
    Unpin(usize),
    Free(usize),
    Touch(usize),
    Drop(usize),
    MarkDirty(usize),
    SetNextUse(usize, Option<u64>),
    MakeRoom(usize, u64, bool),
}

fn ix_op_strategy() -> impl Strategy<Value = IxOp> {
    prop_oneof![
        (1u64..3000).prop_map(IxOp::RegisterHost),
        ((1u64..3000), (0usize..3)).prop_map(|(b, d)| IxOp::AllocDevice(b, d)),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| IxOp::SwapIn(t, d)),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| IxOp::SwapInCancelled(t, d)),
        (0usize..40).prop_map(IxOp::SwapOut),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| IxOp::P2p(t, d)),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| IxOp::P2pCancelled(t, d)),
        (0usize..40).prop_map(IxOp::Pin),
        (0usize..40).prop_map(IxOp::Unpin),
        (0usize..40).prop_map(IxOp::Free),
        (0usize..40).prop_map(IxOp::Touch),
        (0usize..40).prop_map(IxOp::Drop),
        (0usize..40).prop_map(IxOp::MarkDirty),
        ((0usize..40), prop::option::of(0u64..100)).prop_map(|(t, h)| IxOp::SetNextUse(t, h)),
        ((0usize..3), (1u64..4000), any::<bool>()).prop_map(|(d, b, nu)| IxOp::MakeRoom(d, b, nu)),
    ]
}

/// Dense recomputation of the seed-era `make_room` semantics through the
/// public API: filter-and-sort the candidate set, then re-offer the
/// shrinking owned snapshot to `policy.choose` once per victim.
fn dense_make_room(
    mm: &MemoryManager,
    dev: usize,
    bytes: u64,
    policy: &dyn EvictionPolicy,
) -> Result<Vec<TensorId>, MemError> {
    let mut free = mm.free_bytes(dev)?;
    let infos: Vec<TensorInfo> = mm
        .tensor_infos()
        .filter(|t| t.pinned == 0 && t.residency == Residency::OnDevice(dev))
        .map(|t| t.to_owned_info())
        .collect();
    let mut candidates: Vec<&TensorInfo> = infos.iter().collect();
    let mut victims = Vec::new();
    while free < bytes {
        let victim = policy
            .choose(&candidates)
            .ok_or(MemError::InsufficientMemory {
                device: dev,
                needed: bytes,
                capacity: mm.capacity(dev)?,
            })?;
        let idx = candidates
            .iter()
            .position(|t| t.id == victim)
            .expect("built-in policies pick from the offered set");
        free += candidates[idx].bytes;
        victims.push(victim);
        candidates.remove(idx);
    }
    Ok(victims)
}

/// Dense recomputation of the evictable-candidate order.
fn dense_candidates(mm: &MemoryManager, dev: usize) -> Vec<TensorId> {
    let mut v: Vec<TensorId> = mm
        .tensor_infos()
        .filter(|t| t.pinned == 0 && t.residency == Residency::OnDevice(dev))
        .map(|t| t.id)
        .collect();
    v.sort_unstable();
    v
}

/// Dense recomputation of the incremental host-resident byte counter.
fn dense_host_used(mm: &MemoryManager) -> u64 {
    mm.tensor_infos()
        .filter(|t| {
            matches!(
                t.residency,
                Residency::OnHost | Residency::MovingToHost { .. }
            )
        })
        .map(|t| t.bytes)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole's correctness core: after arbitrary interleavings of
    /// every residency/pin transition (including cancel_move_to_device
    /// and drop_to_host), the incrementally maintained ordered victim
    /// index produces exactly the victims (and errors) of a dense
    /// filter-and-sort + choose-loop recomputation, for both built-in
    /// policies; candidate order and host_used stay dense-equal too.
    #[test]
    fn ordered_victim_index_matches_dense_recompute(
        ops in prop::collection::vec(ix_op_strategy(), 1..140),
    ) {
        let caps = vec![8_000u64, 5_000, 2_500];
        let mut mm = MemoryManager::new(caps.clone());
        let mut ids: Vec<TensorId> = Vec::new();

        for op in ops {
            match op {
                IxOp::RegisterHost(b) => {
                    ids.push(mm.register_on_host("t", b, TensorClass::Weight));
                }
                IxOp::AllocDevice(b, d) => {
                    if let Ok(id) = mm.alloc_on_device("a", b, TensorClass::Stash, d) {
                        ids.push(id);
                    }
                }
                IxOp::SwapIn(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.begin_swap_in(id, d).is_ok() {
                            mm.finish_move_to_device(id).unwrap();
                        }
                    }
                }
                IxOp::SwapInCancelled(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.begin_swap_in(id, d).is_ok() {
                            mm.cancel_move_to_device(id).unwrap();
                        }
                    }
                }
                IxOp::SwapOut(t) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.begin_swap_out(id).is_ok() {
                            mm.finish_swap_out(id).unwrap();
                        }
                    }
                }
                IxOp::P2p(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.begin_p2p(id, d).is_ok() {
                            mm.finish_move_to_device(id).unwrap();
                        }
                    }
                }
                IxOp::P2pCancelled(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.begin_p2p(id, d).is_ok() {
                            mm.cancel_move_to_device(id).unwrap();
                        }
                    }
                }
                IxOp::Pin(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.pin(id);
                    }
                }
                IxOp::Unpin(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.unpin(id);
                    }
                }
                IxOp::Free(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.free(id);
                    }
                }
                IxOp::Touch(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.touch(id);
                    }
                }
                IxOp::Drop(t) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.can_drop(id).unwrap_or(false) {
                            mm.drop_to_host(id).unwrap();
                        }
                    }
                }
                IxOp::MarkDirty(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.mark_dirty(id);
                    }
                }
                IxOp::SetNextUse(t, h) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.set_next_use(id, h);
                    }
                }
                IxOp::MakeRoom(d, b, next_use) => {
                    // Planning probe: builds the device's ordered index on
                    // first use, walks it afterwards. Must match the dense
                    // recompute exactly — victims, order, and errors.
                    let policy: &dyn EvictionPolicy =
                        if next_use { &NextUseAware } else { &Lru };
                    let dense = dense_make_room(&mm, d, b, policy);
                    let fast = mm.make_room(d, b, policy);
                    prop_assert_eq!(
                        &fast, &dense,
                        "indexed make_room diverged from dense recompute \
                         (dev {}, need {}, policy {})",
                        d, b, policy.name()
                    );
                }
            }
            // After every op: candidate order and host_used stay
            // dense-equal (catches a missed index update immediately, at
            // the op that caused it).
            for d in 0..caps.len() {
                let indexed: Vec<TensorId> = mm.eviction_candidates(d).map(|t| t.id).collect();
                prop_assert_eq!(
                    indexed,
                    dense_candidates(&mm, d),
                    "evictable index diverged on device {}", d
                );
            }
            prop_assert_eq!(mm.host_used(), dense_host_used(&mm), "host_used drift");
        }
        // Final sweep: force planning on every device with both policies
        // so sequences that never drew a MakeRoom still check the index.
        for (d, &cap) in caps.iter().enumerate() {
            for need in [1u64, cap / 2, cap] {
                prop_assert_eq!(
                    mm.make_room(d, need, &Lru),
                    dense_make_room(&mm, d, need, &Lru)
                );
                prop_assert_eq!(
                    mm.make_room(d, need, &NextUseAware),
                    dense_make_room(&mm, d, need, &NextUseAware)
                );
            }
        }
    }
}
