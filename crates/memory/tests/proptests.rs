//! Property-based tests on the memory manager's state machine: random
//! operation sequences must never violate capacity accounting, and swap
//! statistics must exactly mirror the transfers performed.

use harmony_memory::{
    Direction, Lru, MemoryManager, NextUseAware, Residency, TensorClass, TensorId,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    RegisterHost(u64),
    AllocDevice(u64, usize),
    SwapIn(usize, usize),
    SwapOut(usize),
    P2p(usize, usize),
    Pin(usize),
    Unpin(usize),
    Free(usize),
    Touch(usize),
    Drop(usize),
    MarkDirty(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..5000).prop_map(Op::RegisterHost),
        ((1u64..5000), (0usize..3)).prop_map(|(b, d)| Op::AllocDevice(b, d)),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| Op::SwapIn(t, d)),
        (0usize..40).prop_map(Op::SwapOut),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| Op::P2p(t, d)),
        (0usize..40).prop_map(Op::Pin),
        (0usize..40).prop_map(Op::Unpin),
        (0usize..40).prop_map(Op::Free),
        (0usize..40).prop_map(Op::Touch),
        (0usize..40).prop_map(Op::Drop),
        (0usize..40).prop_map(Op::MarkDirty),
    ]
}

/// Recomputes `used` from first principles via tensor states.
fn recomputed_used(mm: &MemoryManager, ids: &[TensorId], dev: usize) -> u64 {
    ids.iter()
        .filter_map(|&id| mm.info(id).ok())
        .map(|t| match t.residency {
            Residency::OnDevice(d) if d == dev => t.bytes,
            Residency::MovingToDevice { dst, src } => {
                let mut b = 0;
                if dst == dev {
                    b += t.bytes;
                }
                if src == Some(dev) {
                    b += t.bytes;
                }
                b
            }
            Residency::MovingToHost { src } if src == dev => t.bytes,
            _ => 0,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_op_sequences_preserve_accounting(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let caps = vec![10_000u64, 6_000, 3_000];
        let mut mm = MemoryManager::new(caps.clone());
        let mut ids: Vec<TensorId> = Vec::new();
        let mut expected_in = 0u64;
        let mut expected_out = 0u64;
        let mut expected_p2p = 0u64;

        for op in ops {
            match op {
                Op::RegisterHost(b) => {
                    ids.push(mm.register_on_host("t", b, TensorClass::Weight));
                }
                Op::AllocDevice(b, d) => {
                    if let Ok(id) = mm.alloc_on_device("a", b, TensorClass::Stash, d) {
                        ids.push(id);
                    }
                }
                Op::SwapIn(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if let Ok(b) = mm.begin_swap_in(id, d) {
                            expected_in += b;
                            mm.finish_move_to_device(id).unwrap();
                        }
                    }
                }
                Op::SwapOut(t) => {
                    if let Some(&id) = ids.get(t) {
                        if let Ok((_, b)) = mm.begin_swap_out(id) {
                            expected_out += b;
                            mm.finish_swap_out(id).unwrap();
                        }
                    }
                }
                Op::P2p(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if let Ok((_, b)) = mm.begin_p2p(id, d) {
                            expected_p2p += b;
                            mm.finish_move_to_device(id).unwrap();
                        }
                    }
                }
                Op::Pin(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.pin(id);
                    }
                }
                Op::Unpin(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.unpin(id);
                    }
                }
                Op::Free(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.free(id);
                    }
                }
                Op::Touch(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.touch(id);
                    }
                }
                Op::Drop(t) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.can_drop(id).unwrap_or(false) {
                            mm.drop_to_host(id).unwrap();
                        }
                    }
                }
                Op::MarkDirty(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.mark_dirty(id);
                    }
                }
            }
            // Invariants after every operation:
            for (d, &cap) in caps.iter().enumerate() {
                let used = mm.used(d).unwrap();
                prop_assert!(used <= cap, "device {} used {} > cap {}", d, used, cap);
                prop_assert!(used <= mm.peak_used(d).unwrap());
                prop_assert_eq!(
                    used,
                    recomputed_used(&mm, &ids, d),
                    "accounting drift on device {}", d
                );
            }
        }
        // Stats mirror the performed transfers exactly.
        let total_in: u64 = (0..caps.len()).map(|d| mm.stats().device_total(d, Direction::In)).sum();
        let total_out: u64 = (0..caps.len()).map(|d| mm.stats().device_total(d, Direction::Out)).sum();
        prop_assert_eq!(total_in, expected_in);
        prop_assert_eq!(total_out, expected_out);
        prop_assert_eq!(mm.stats().p2p_bytes, expected_p2p);
    }

    #[test]
    fn make_room_victims_always_suffice_and_are_unpinned(
        sizes in prop::collection::vec(50u64..800, 1..12),
        pin_mask in prop::collection::vec(any::<bool>(), 12),
        need in 1u64..2500,
        use_next_use in any::<bool>(),
    ) {
        let mut mm = MemoryManager::new(vec![3_000]);
        let mut ids = Vec::new();
        for (i, &b) in sizes.iter().enumerate() {
            if let Ok(id) = mm.alloc_on_device("a", b, TensorClass::Weight, 0) {
                if pin_mask.get(i).copied().unwrap_or(false) {
                    mm.pin(id).unwrap();
                }
                ids.push(id);
            }
        }
        let result = if use_next_use {
            mm.make_room(0, need, &NextUseAware)
        } else {
            mm.make_room(0, need, &Lru)
        };
        match result {
            Ok(victims) => {
                let freed: u64 = victims.iter().map(|&v| mm.info(v).unwrap().bytes).sum();
                let free = mm.free_bytes(0).unwrap();
                prop_assert!(free + freed >= need, "plan frees too little");
                for v in &victims {
                    prop_assert_eq!(mm.info(*v).unwrap().pinned, 0, "pinned victim");
                }
                // No duplicates.
                let mut sorted = victims.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), victims.len());
            }
            Err(_) => {
                // Must genuinely be impossible: free + all unpinned < need.
                let unpinned: u64 = ids
                    .iter()
                    .filter(|&&id| mm.info(id).unwrap().pinned == 0)
                    .map(|&id| mm.info(id).unwrap().bytes)
                    .sum();
                prop_assert!(
                    mm.free_bytes(0).unwrap() + unpinned < need,
                    "manager refused although room existed"
                );
            }
        }
    }
}
