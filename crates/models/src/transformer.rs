//! Transformer model builders (abstract specs).
//!
//! The paper's running workload is BERT (Devlin et al. '18) trained with
//! per-GPU batch 5 on 11 GB GPUs, where the training footprint exceeds the
//! aggregate memory of four such GPUs once stashed activations and Adam
//! state are counted. [`TransformerConfig`] reproduces that regime; presets
//! give BERT-Large and scaled-up variants.

use crate::spec::{LayerClass, LayerSpec, ModelSpec};

/// Configuration of a BERT/GPT-style transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: u64,
    /// Hidden (model) dimension.
    pub hidden: u64,
    /// Number of transformer blocks.
    pub blocks: u64,
    /// Attention heads per block.
    pub heads: u64,
    /// Feed-forward expansion factor (4 for BERT/GPT).
    pub ff_mult: u64,
    /// Sequence length.
    pub seq_len: u64,
}

impl TransformerConfig {
    /// BERT-Large (Devlin '18): 24 blocks, hidden 1024, 16 heads, ~340 M
    /// parameters at seq 512.
    pub fn bert_large() -> Self {
        TransformerConfig {
            vocab: 30_522,
            hidden: 1024,
            blocks: 24,
            heads: 16,
            ff_mult: 4,
            seq_len: 512,
        }
    }

    /// A "large BERT" variant that exceeds the aggregate memory of four
    /// 11 GB GPUs during training (48 blocks, hidden 2048 ⇒ ~2.5 B params,
    /// ~10 GB of weights, ~40 GB weights+grads+Adam before any
    /// activations). This is the regime of the paper's Fig 2.
    pub fn bert_xxl() -> Self {
        TransformerConfig {
            vocab: 30_522,
            hidden: 2048,
            blocks: 48,
            heads: 16,
            ff_mult: 4,
            seq_len: 512,
        }
    }

    /// A ~10 B-parameter GPT-style decoder (hidden 4096, 48 blocks). Its
    /// per-stage training state on a 4-GPU pipeline (~40 GB of W+dW+K per
    /// stage) exceeds an 11 GB GPU several times over — the §3 analytical
    /// regime where every scheme must swap weights and Harmony-PP's
    /// dominance is fully expressed.
    pub fn gpt_10b() -> Self {
        TransformerConfig {
            vocab: 50_257,
            hidden: 4096,
            blocks: 48,
            heads: 32,
            ff_mult: 4,
            seq_len: 1024,
        }
    }

    /// GPT-2 XL-like: 48 blocks, hidden 1600, 25 heads (~1.5 B params).
    pub fn gpt2_xl() -> Self {
        TransformerConfig {
            vocab: 50_257,
            hidden: 1600,
            blocks: 48,
            heads: 25,
            ff_mult: 4,
            seq_len: 1024,
        }
    }

    /// A deliberately small config for fast unit tests.
    pub fn tiny() -> Self {
        TransformerConfig {
            vocab: 64,
            hidden: 16,
            blocks: 2,
            heads: 2,
            ff_mult: 4,
            seq_len: 8,
        }
    }

    /// Builds the abstract model spec: embedding, `blocks` ×
    /// (attention + feed-forward, each with a fused LayerNorm), and an LM
    /// head tied shape-wise to the vocabulary.
    ///
    /// Sizing formulas (per block, hidden `h`, seq `s`, ff `f = ff_mult·h`):
    /// * attention params: `4h² + 4h` (fused QKV + output proj) `+ 2h` (LN);
    /// * attention fwd FLOPs/sample: `8sh² + 4s²h`;
    /// * attention extra stash/sample: `heads·s²` (probabilities) + `sh`
    ///   (context);
    /// * feed-forward params: `2hf + f + h` `+ 2h` (LN);
    /// * feed-forward fwd FLOPs/sample: `4shf`;
    /// * feed-forward extra stash/sample: `sf` (hidden activation).
    pub fn build(&self) -> ModelSpec {
        let (v, h, s) = (self.vocab, self.hidden, self.seq_len);
        let f = self.ff_mult * h;
        let mut layers = Vec::new();
        layers.push(LayerSpec {
            name: "embedding".to_string(),
            class: LayerClass::Embedding,
            params: v * h + s * h,       // token + position tables
            fwd_flops_per_sample: s * h, // table gather + add
            out_elems_per_sample: s * h,
            extra_stash_elems_per_sample: s, // token ids
            in_elems_per_sample: s,
        });
        for b in 0..self.blocks {
            layers.push(LayerSpec {
                name: format!("block{b}.attn"),
                class: LayerClass::Attention,
                params: 4 * h * h + 4 * h + 2 * h,
                fwd_flops_per_sample: 8 * s * h * h + 4 * s * s * h,
                out_elems_per_sample: s * h,
                extra_stash_elems_per_sample: self.heads * s * s + s * h,
                in_elems_per_sample: s * h,
            });
            layers.push(LayerSpec {
                name: format!("block{b}.ff"),
                class: LayerClass::FeedForward,
                params: 2 * h * f + f + h + 2 * h,
                fwd_flops_per_sample: 4 * s * h * f,
                out_elems_per_sample: s * h,
                extra_stash_elems_per_sample: s * f,
                in_elems_per_sample: s * h,
            });
        }
        layers.push(LayerSpec {
            name: "lm_head".to_string(),
            class: LayerClass::Head,
            params: h * v,
            fwd_flops_per_sample: 2 * s * h * v,
            out_elems_per_sample: s * v,
            extra_stash_elems_per_sample: 0,
            in_elems_per_sample: s * h,
        });
        ModelSpec {
            name: format!(
                "transformer(v={v},h={h},L={},heads={},s={s})",
                self.blocks, self.heads
            ),
            layers,
            seq_len: s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BYTES_PER_ELEM;

    #[test]
    fn bert_large_param_count_is_close_to_published() {
        // BERT-Large is ~340 M params (335 M encoder + embeddings); our
        // formula includes an untied LM head, so allow the 300–430 M range.
        let m = TransformerConfig::bert_large().build();
        let p = m.total_params();
        assert!(
            (300_000_000..430_000_000).contains(&p),
            "params {p} out of expected envelope"
        );
    }

    #[test]
    fn gpt2_xl_is_about_1_5b() {
        let p = TransformerConfig::gpt2_xl().build().total_params();
        assert!((1_300_000_000..1_900_000_000).contains(&p), "params {p}");
    }

    #[test]
    fn bert_xxl_training_footprint_exceeds_four_11gb_gpus() {
        // The Fig 2 regime: footprint > 4 × 11 GB with per-GPU batch 5 and
        // Adam (2 state slots).
        let m = TransformerConfig::bert_xxl().build();
        let footprint = m.training_footprint_bytes(5, 2);
        assert!(
            footprint > 4 * 11 * (1 << 30) as u64,
            "footprint {} GB",
            footprint >> 30
        );
        // ...but a single microbatch of any one layer fits in 11 GB, so
        // swapping (rather than OOM) is the operative regime.
        let max_layer = m
            .layers
            .iter()
            .map(|l| l.weight_bytes() + l.grad_bytes() + l.stash_bytes(5) + l.out_bytes(5))
            .max()
            .unwrap();
        assert!(max_layer < 11 * (1 << 30) as u64, "{max_layer}");
    }

    #[test]
    fn layer_count_is_two_per_block_plus_ends() {
        let cfg = TransformerConfig::tiny();
        let m = cfg.build();
        assert_eq!(m.num_layers() as u64, 2 * cfg.blocks + 2);
    }

    #[test]
    fn weight_bytes_are_params_times_four() {
        let m = TransformerConfig::tiny().build();
        assert_eq!(m.total_weight_bytes(), m.total_params() * BYTES_PER_ELEM);
    }

    #[test]
    fn stash_dominated_by_attention_probs_for_long_seqs() {
        // For long sequences the heads·s² term dominates sh: the memory
        // skew behind Fig 2(c)'s head-stage pressure.
        let mut cfg = TransformerConfig::bert_large();
        cfg.seq_len = 4096;
        let m = cfg.build();
        let attn = m
            .layers
            .iter()
            .find(|l| l.class == LayerClass::Attention)
            .unwrap();
        assert!(attn.extra_stash_elems_per_sample > 4 * attn.in_elems_per_sample);
    }
}
