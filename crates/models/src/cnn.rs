//! Convolutional model builders: the vision entries of the Fig 1 zoo
//! (LeNet '98, AlexNet '12) as schedulable [`ModelSpec`]s.
//!
//! These exist for two reasons: they pin the zoo's parameter counts to
//! real architectures (tested below against the published numbers), and
//! they exercise the decomposer/scheduler on non-uniform, non-transformer
//! layer mixes — convolutions are compute-heavy with small weights, the
//! opposite regime from the fully-connected tail.

use crate::spec::{LayerClass, LayerSpec, ModelSpec};

/// A convolution layer spec: `cin → cout` channels with a `k×k` kernel
/// producing an `oh×ow` feature map.
fn conv(name: &str, cin: u64, cout: u64, k: u64, oh: u64, ow: u64) -> LayerSpec {
    let params = k * k * cin * cout + cout;
    LayerSpec {
        name: name.to_string(),
        class: LayerClass::Other,
        params,
        // 2 FLOPs per MAC per output element.
        fwd_flops_per_sample: 2 * k * k * cin * cout * oh * ow,
        out_elems_per_sample: cout * oh * ow,
        extra_stash_elems_per_sample: 0,
        in_elems_per_sample: cin * oh * ow * 4, // pre-pool/stride estimate
    }
}

/// A pooling / nonlinearity layer: parameter-free, cheap.
fn pool(name: &str, c: u64, oh: u64, ow: u64) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        class: LayerClass::Other,
        params: 0,
        fwd_flops_per_sample: c * oh * ow * 4,
        out_elems_per_sample: c * oh * ow,
        extra_stash_elems_per_sample: 0,
        in_elems_per_sample: c * oh * ow * 4,
    }
}

/// A fully-connected layer.
fn fc(name: &str, inp: u64, out: u64) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        class: LayerClass::Head,
        params: inp * out + out,
        fwd_flops_per_sample: 2 * inp * out,
        out_elems_per_sample: out,
        extra_stash_elems_per_sample: 0,
        in_elems_per_sample: inp,
    }
}

/// LeNet-5 (LeCun et al. '98): the 60 K-parameter anchor of Fig 1.
pub fn lenet() -> ModelSpec {
    ModelSpec {
        name: "lenet-5".to_string(),
        layers: vec![
            conv("conv1", 1, 6, 5, 28, 28),
            pool("pool1", 6, 14, 14),
            conv("conv2", 6, 16, 5, 10, 10),
            pool("pool2", 16, 5, 5),
            fc("fc3", 400, 120),
            fc("fc4", 120, 84),
            fc("fc5", 84, 10),
        ],
        seq_len: 1,
    }
}

/// AlexNet (Krizhevsky et al. '12): the 61 M-parameter anchor of Fig 1.
pub fn alexnet() -> ModelSpec {
    ModelSpec {
        name: "alexnet".to_string(),
        layers: vec![
            conv("conv1", 3, 96, 11, 55, 55),
            pool("pool1", 96, 27, 27),
            conv("conv2", 96, 256, 5, 27, 27),
            pool("pool2", 256, 13, 13),
            conv("conv3", 256, 384, 3, 13, 13),
            conv("conv4", 384, 384, 3, 13, 13),
            conv("conv5", 384, 256, 3, 13, 13),
            pool("pool5", 256, 6, 6),
            fc("fc6", 9216, 4096),
            fc("fc7", 4096, 4096),
            fc("fc8", 4096, 1000),
        ],
        seq_len: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn lenet_matches_fig1_param_count() {
        let m = lenet();
        let p = m.total_params();
        // Fig 1 says 60 K; the exact LeNet-5 count is 61,706.
        assert!((55_000..70_000).contains(&p), "params {p}");
        let zoo_entry = &zoo::fig1_zoo()[0];
        assert!(p.abs_diff(zoo_entry.params) < zoo_entry.params / 10);
    }

    #[test]
    fn alexnet_matches_fig1_param_count() {
        let m = alexnet();
        let p = m.total_params();
        // Fig 1 says 61 M; the canonical count is ~61.0 M.
        assert!((58_000_000..64_000_000).contains(&p), "params {p}");
        let zoo_entry = &zoo::fig1_zoo()[1];
        assert!(p.abs_diff(zoo_entry.params) < zoo_entry.params / 10);
    }

    #[test]
    fn alexnet_compute_is_conv_heavy_but_params_are_fc_heavy() {
        // The classic asymmetry: >80% of parameters in the FC tail, most
        // FLOPs in the convolutions — a very different packing problem
        // from transformers, which the multi-dimensional partitioner must
        // handle.
        let m = alexnet();
        let fc_params: u64 = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("fc"))
            .map(|l| l.params)
            .sum();
        let conv_flops: u64 = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("conv"))
            .map(|l| l.fwd_flops_per_sample)
            .sum();
        assert!(fc_params * 10 > m.total_params() * 8, "FC ≥ 80% of params");
        assert!(
            conv_flops * 10 > m.total_fwd_flops(1) * 8,
            "conv ≥ 80% of FLOPs"
        );
    }

    #[test]
    fn lenet_fits_one_mb_alexnet_does_not() {
        // "Doing more with less" in miniature: LeNet's training state fits
        // anywhere; AlexNet's W+dW+Adam is ~1 GB.
        assert!(lenet().training_footprint_bytes(1, 2) < (1 << 20));
        let alex = alexnet().training_footprint_bytes(1, 2);
        assert!(alex > 900_000_000, "alexnet footprint {alex}");
    }
}
