//! Abstract per-layer model specifications.
//!
//! Every quantity the Harmony scheduler and the swap model (paper Fig 5a)
//! need is derivable from a [`LayerSpec`]:
//!
//! * weight bytes `|W_Lj|` (and, shape-aligned, gradient bytes `|dW_Lj|`),
//! * optimizer-state bytes `|K_Lj|` (a multiple of weight bytes),
//! * per-microbatch activation output bytes (`Y`, also the next layer's
//!   input `X`),
//! * per-microbatch stash bytes (`Stashed X` kept from forward for
//!   backward),
//! * forward FLOPs (backward is modelled as a configurable multiple —
//!   the paper notes 2–3×, §4).

/// Bytes per scalar element (fp32 training, as in the paper's PyTorch-1.5
/// setup).
pub const BYTES_PER_ELEM: u64 = 4;

/// Broad class of a layer, used by packers and traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerClass {
    /// Token embedding table.
    Embedding,
    /// Self-attention block.
    Attention,
    /// Feed-forward / MLP block.
    FeedForward,
    /// Normalisation.
    Norm,
    /// Classifier / LM head.
    Head,
    /// Anything else (convolution, pooling, ...).
    Other,
}

/// One schedulable layer of a model, with size/cost formulas.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerSpec {
    /// Human-readable name, e.g. `"block3.attn"`.
    pub name: String,
    /// Layer class.
    pub class: LayerClass,
    /// Scalar parameter count.
    pub params: u64,
    /// Forward FLOPs for ONE sample (one sequence); scales linearly with
    /// microbatch size.
    pub fwd_flops_per_sample: u64,
    /// Output activation elements per sample (the `Y` handed to the next
    /// layer, and the `X` the next layer stashes).
    pub out_elems_per_sample: u64,
    /// Extra elements stashed by forward for backward, per sample, beyond
    /// the input activation (e.g. attention probabilities).
    pub extra_stash_elems_per_sample: u64,
    /// Input activation elements per sample (stashed for backward).
    pub in_elems_per_sample: u64,
}

impl LayerSpec {
    /// Weight bytes `|W|`.
    pub fn weight_bytes(&self) -> u64 {
        self.params * BYTES_PER_ELEM
    }

    /// Gradient-buffer bytes `|dW|` (shape-aligned with weights).
    pub fn grad_bytes(&self) -> u64 {
        self.weight_bytes()
    }

    /// Optimizer-state bytes `|K|` for `slots` state tensors per parameter
    /// (2 for Adam).
    pub fn opt_state_bytes(&self, slots: u64) -> u64 {
        self.weight_bytes() * slots
    }

    /// Output activation bytes for a microbatch of `ubatch` samples.
    pub fn out_bytes(&self, ubatch: u64) -> u64 {
        self.out_elems_per_sample * ubatch * BYTES_PER_ELEM
    }

    /// Input activation bytes for a microbatch.
    pub fn in_bytes(&self, ubatch: u64) -> u64 {
        self.in_elems_per_sample * ubatch * BYTES_PER_ELEM
    }

    /// Total stash bytes for a microbatch: the input kept for backward plus
    /// any extra stashed intermediates.
    pub fn stash_bytes(&self, ubatch: u64) -> u64 {
        (self.in_elems_per_sample + self.extra_stash_elems_per_sample) * ubatch * BYTES_PER_ELEM
    }

    /// Forward FLOPs for a microbatch.
    pub fn fwd_flops(&self, ubatch: u64) -> u64 {
        self.fwd_flops_per_sample * ubatch
    }
}

/// A complete model: an ordered sequence of layers plus workload metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelSpec {
    /// Model name (e.g. `"bert-48"`).
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<LayerSpec>,
    /// Sequence length the sizing formulas assume.
    pub seq_len: u64,
}

impl ModelSpec {
    /// Total scalar parameter count.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total weight bytes `|W| = Σ_j |W_Lj|`.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(LayerSpec::weight_bytes).sum()
    }

    /// Number of layers `R` in the paper's analytical model.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Peak *training* memory footprint estimate for one device processing
    /// a microbatch of `ubatch` samples with `opt_slots` optimizer-state
    /// tensors per parameter: weights + grads + optimizer state + all
    /// stashed activations for a full forward pass.
    ///
    /// This is the quantity that "can far exceed individual accelerator
    /// memory capacity" (paper §1).
    pub fn training_footprint_bytes(&self, ubatch: u64, opt_slots: u64) -> u64 {
        self.layers
            .iter()
            .map(|l| {
                l.weight_bytes()
                    + l.grad_bytes()
                    + l.opt_state_bytes(opt_slots)
                    + l.stash_bytes(ubatch)
            })
            .sum()
    }

    /// Sum of forward FLOPs over all layers for one microbatch.
    pub fn total_fwd_flops(&self, ubatch: u64) -> u64 {
        self.layers.iter().map(|l| l.fwd_flops(ubatch)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(params: u64, out: u64) -> LayerSpec {
        LayerSpec {
            name: "l".to_string(),
            class: LayerClass::Other,
            params,
            fwd_flops_per_sample: 2 * params,
            out_elems_per_sample: out,
            extra_stash_elems_per_sample: 5,
            in_elems_per_sample: out,
        }
    }

    #[test]
    fn byte_accounting() {
        let l = layer(100, 10);
        assert_eq!(l.weight_bytes(), 400);
        assert_eq!(l.grad_bytes(), 400);
        assert_eq!(l.opt_state_bytes(2), 800);
        assert_eq!(l.out_bytes(3), 120);
        assert_eq!(l.stash_bytes(2), (10 + 5) * 2 * 4);
    }

    #[test]
    fn model_totals() {
        let m = ModelSpec {
            name: "toy".to_string(),
            layers: vec![layer(100, 10), layer(200, 20)],
            seq_len: 8,
        };
        assert_eq!(m.total_params(), 300);
        assert_eq!(m.total_weight_bytes(), 1200);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.total_fwd_flops(2), (200 + 400) * 2);
    }

    #[test]
    fn footprint_includes_all_classes() {
        let m = ModelSpec {
            name: "toy".to_string(),
            layers: vec![layer(100, 10)],
            seq_len: 8,
        };
        // weights 400 + grads 400 + opt 800 + stash (10+5)*1*4=60
        assert_eq!(m.training_footprint_bytes(1, 2), 400 + 400 + 800 + 60);
        // Stash grows with microbatch size; the rest does not.
        let base = m.training_footprint_bytes(1, 2);
        let bigger = m.training_footprint_bytes(4, 2);
        assert_eq!(bigger - base, 60 * 3);
    }
}
