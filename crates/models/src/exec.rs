//! Executable models: real-float instantiations for functional tests.
//!
//! An [`ExecModel`] is a sequential chain of `harmony-tensor` layers with
//! optional skip (residual) edges. It provides a *sequential reference
//! executor* — forward all layers, backward all layers, update all layers —
//! which is the semantics the user's "single virtual device" program
//! expresses. The Harmony runtime must produce bit-identical parameters to
//! this reference no matter how it schedules, swaps, groups, or places the
//! decomposed tasks; integration tests in `crates/core` assert exactly that.

use harmony_tensor::nn::{cross_entropy, Grads, Layer, Stash};
use harmony_tensor::ops;
use harmony_tensor::optim::Optimizer;
use harmony_tensor::rng::SplitMix64;
use harmony_tensor::{Result, Tensor, TensorError};

/// Where a skip edge takes its second operand from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipSource {
    /// The model's input tensor.
    Input,
    /// The output of an earlier layer (by index).
    LayerOutput(usize),
}

/// One layer of an executable model.
#[derive(Debug, Clone)]
pub struct ExecLayer {
    /// Display name.
    pub name: String,
    /// The layer operation.
    pub op: Layer,
    /// Skip edge (required for `Layer::ResidualAdd`, ignored otherwise).
    pub skip_from: Option<SkipSource>,
}

/// A sequential model with optional residual skip edges.
#[derive(Debug, Clone)]
pub struct ExecModel {
    /// Display name.
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<ExecLayer>,
}

/// All intermediate state of one forward pass.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// Output of every layer, in order.
    pub outputs: Vec<Tensor>,
    /// Stash of every layer, in order.
    pub stashes: Vec<Stash>,
}

impl ExecModel {
    /// Initialises all parameter tensors deterministically from `seed`.
    pub fn init_params(&self, seed: u64) -> Vec<Vec<Tensor>> {
        let mut rng = SplitMix64::new(seed);
        self.layers
            .iter()
            .map(|l| l.op.init_params(&mut rng))
            .collect()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.op.param_count()).sum()
    }

    fn skip_tensor<'a>(
        &self,
        source: SkipSource,
        input: &'a Tensor,
        outputs: &'a [Tensor],
        at: usize,
    ) -> Result<&'a Tensor> {
        match source {
            SkipSource::Input => Ok(input),
            SkipSource::LayerOutput(i) if i < at => Ok(&outputs[i]),
            SkipSource::LayerOutput(i) => Err(TensorError::InvalidArgument {
                op: "exec forward",
                msg: format!("skip edge from layer {i} not before layer {at}"),
            }),
        }
    }

    /// Forward pass through all layers.
    pub fn forward(&self, params: &[Vec<Tensor>], input: &Tensor) -> Result<ForwardTrace> {
        if params.len() != self.layers.len() {
            return Err(TensorError::InvalidArgument {
                op: "exec forward",
                msg: format!(
                    "{} param sets for {} layers",
                    params.len(),
                    self.layers.len()
                ),
            });
        }
        let mut outputs: Vec<Tensor> = Vec::with_capacity(self.layers.len());
        let mut stashes = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let out = match (&layer.op, layer.skip_from) {
                (Layer::ResidualAdd, Some(src)) => {
                    let skip = self.skip_tensor(src, input, &outputs, i)?;
                    layer.op.forward_with_skip(&params[i], &x, skip)?
                }
                (Layer::ResidualAdd, None) => {
                    return Err(TensorError::InvalidArgument {
                        op: "exec forward",
                        msg: format!("layer {i} ({}) missing skip edge", layer.name),
                    })
                }
                _ => layer.op.forward(&params[i], &x)?,
            };
            x = out.output.clone();
            outputs.push(out.output);
            stashes.push(out.stash);
        }
        Ok(ForwardTrace { outputs, stashes })
    }

    /// Backward pass: given the gradient of the loss w.r.t. the final
    /// output, returns per-layer parameter gradients (aligned with
    /// `params`) and the gradient w.r.t. the model input.
    pub fn backward(
        &self,
        params: &[Vec<Tensor>],
        input: &Tensor,
        trace: &ForwardTrace,
        dloss: &Tensor,
    ) -> Result<(Vec<Grads>, Tensor)> {
        let n = self.layers.len();
        // Gradient accumulator per layer output (+1 slot for the input).
        let mut out_grads: Vec<Option<Tensor>> = vec![None; n];
        let mut input_grad: Option<Tensor> = None;
        if n == 0 {
            return Ok((Vec::new(), dloss.clone()));
        }
        out_grads[n - 1] = Some(dloss.clone());
        let mut layer_grads: Vec<Grads> = vec![Grads::default(); n];

        let add_grad = |slot: &mut Option<Tensor>, g: Tensor| -> Result<()> {
            match slot {
                Some(existing) => ops::axpy(existing, 1.0, &g),
                None => {
                    *slot = Some(g);
                    Ok(())
                }
            }
        };

        for i in (0..n).rev() {
            let dy = match out_grads[i].take() {
                Some(g) => g,
                // Output unused downstream (can't happen in a chain, but be
                // robust): zero gradient, nothing to propagate.
                None => Tensor::zeros(trace.outputs[i].shape().clone()),
            };
            let layer = &self.layers[i];
            let (dx, grads) = layer.op.backward(&params[i], &trace.stashes[i], &dy)?;
            layer_grads[i] = grads;
            // Main chain input: output of layer i-1, or the model input.
            if i == 0 {
                add_grad(&mut input_grad, dx.clone())?;
            } else {
                let (left, right) = out_grads.split_at_mut(i);
                let _ = right;
                add_grad(&mut left[i - 1], dx.clone())?;
            }
            // Residual skip: the add duplicates dy to the skip source too.
            if let (Layer::ResidualAdd, Some(src)) = (&layer.op, layer.skip_from) {
                match src {
                    SkipSource::Input => add_grad(&mut input_grad, dy)?,
                    SkipSource::LayerOutput(j) => {
                        let (left, right) = out_grads.split_at_mut(j + 1);
                        let _ = right;
                        add_grad(&mut left[j], dy)?;
                    }
                }
            }
        }
        let input_grad = match input_grad {
            Some(g) => g,
            None => Tensor::zeros(input.shape().clone()),
        };
        Ok((layer_grads, input_grad))
    }

    /// One full sequential training step on a classification batch:
    /// forward → cross-entropy → backward → optimizer update.
    ///
    /// Returns the mean loss. This is the reference semantics that every
    /// Harmony schedule must reproduce exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn train_step_reference(
        &self,
        params: &mut [Vec<Tensor>],
        opt: &Optimizer,
        opt_state: &mut [Vec<Vec<Tensor>>],
        input: &Tensor,
        targets: &[usize],
        step: u64,
    ) -> Result<f32> {
        let trace = self.forward(params, input)?;
        let logits = trace.outputs.last().ok_or(TensorError::InvalidArgument {
            op: "train_step",
            msg: "empty model".to_string(),
        })?;
        let (loss, dlogits) = cross_entropy(logits, targets)?;
        let (grads, _) = self.backward(params, input, &trace, &dlogits)?;
        for (li, (pset, gset)) in params.iter_mut().zip(&grads).enumerate() {
            for (pi, (p, g)) in pset.iter_mut().zip(&gset.tensors).enumerate() {
                opt.step(p, g, &mut opt_state[li][pi], step)?;
            }
        }
        Ok(loss)
    }

    /// One training step with *gradient accumulation over microbatches*:
    /// the minibatch is split into `m` equal chunks along dim 0; each chunk
    /// runs forward + backward; per-parameter gradients are summed in
    /// microbatch order (each scaled by `1/m` so the result is the gradient
    /// of the whole-batch mean loss); updates apply at the end.
    ///
    /// This is the semantics a user's PyTorch script with gradient
    /// accumulation expresses, and the exact bit-pattern contract the
    /// Harmony functional runtime must reproduce regardless of how it
    /// reorders, groups, places, or swaps the decomposed tasks.
    ///
    /// Returns the mean loss across microbatches.
    #[allow(clippy::too_many_arguments)]
    pub fn train_step_accum(
        &self,
        params: &mut [Vec<Tensor>],
        opt: &Optimizer,
        opt_state: &mut [Vec<Vec<Tensor>>],
        input: &Tensor,
        targets: &[usize],
        microbatches: usize,
        step: u64,
    ) -> Result<f32> {
        let chunks = ops::chunk_dim0(input, microbatches)?;
        let rows_per_chunk = targets.len() / microbatches.max(1);
        let scale = 1.0 / microbatches as f32;
        let mut grand: Vec<Grads> = vec![Grads::default(); self.layers.len()];
        let mut loss_sum = 0.0f32;
        for (u, chunk) in chunks.iter().enumerate() {
            let tgt = &targets[u * rows_per_chunk..(u + 1) * rows_per_chunk];
            let trace = self.forward(params, chunk)?;
            let logits = trace.outputs.last().ok_or(TensorError::InvalidArgument {
                op: "train_step_accum",
                msg: "empty model".to_string(),
            })?;
            let (loss, dlogits) = cross_entropy(logits, tgt)?;
            loss_sum += loss;
            let dlogits = ops::scale(&dlogits, scale);
            let (grads, _) = self.backward(params, chunk, &trace, &dlogits)?;
            for (acc, g) in grand.iter_mut().zip(&grads) {
                acc.accumulate(g)?;
            }
        }
        for (li, (pset, gset)) in params.iter_mut().zip(&grand).enumerate() {
            for (pi, (p, g)) in pset.iter_mut().zip(&gset.tensors).enumerate() {
                opt.step(p, g, &mut opt_state[li][pi], step)?;
            }
        }
        Ok(loss_sum * scale)
    }

    /// Allocates optimizer state for all parameters.
    pub fn init_opt_state(&self, params: &[Vec<Tensor>], opt: &Optimizer) -> Vec<Vec<Vec<Tensor>>> {
        params
            .iter()
            .map(|pset| pset.iter().map(|p| opt.init_state(p)).collect())
            .collect()
    }
}

/// Builds a plain MLP classifier: `dims[0] → dims[1] → ... → dims[k]`,
/// GELU between hidden layers.
pub fn mlp(dims: &[usize]) -> ExecModel {
    use harmony_tensor::nn::{Activation, ActivationKind, Linear};
    let mut layers = Vec::new();
    for w in 0..dims.len().saturating_sub(1) {
        layers.push(ExecLayer {
            name: format!("fc{w}"),
            op: Layer::Linear(Linear::new(dims[w], dims[w + 1], true)),
            skip_from: None,
        });
        if w + 2 < dims.len() {
            layers.push(ExecLayer {
                name: format!("act{w}"),
                op: Layer::Activation(Activation::new(ActivationKind::Gelu)),
                skip_from: None,
            });
        }
    }
    ExecModel {
        name: format!("mlp{dims:?}"),
        layers,
    }
}

/// Builds an executable LeNet-5-style convolutional classifier over
/// `[batch, 1, 12, 12]` images (a reduced input so functional tests stay
/// fast; the architecture — conv→pool→conv→pool→fc — is LeNet's).
pub fn lenet_exec() -> Result<ExecModel> {
    use harmony_tensor::nn::{Activation, ActivationKind, Conv2d, Linear, MaxPool2d};
    Ok(ExecModel {
        name: "lenet-exec".to_string(),
        layers: vec![
            ExecLayer {
                name: "conv1".to_string(),
                op: Layer::Conv2d(Conv2d::new(1, 4, 3, 1)?), // 12→10
                skip_from: None,
            },
            ExecLayer {
                name: "relu1".to_string(),
                op: Layer::Activation(Activation::new(ActivationKind::Relu)),
                skip_from: None,
            },
            ExecLayer {
                name: "pool1".to_string(),
                op: Layer::MaxPool2d(MaxPool2d::new(2)?), // 10→5
                skip_from: None,
            },
            ExecLayer {
                name: "conv2".to_string(),
                op: Layer::Conv2d(Conv2d::new(4, 8, 2, 1)?), // 5→4
                skip_from: None,
            },
            ExecLayer {
                name: "relu2".to_string(),
                op: Layer::Activation(Activation::new(ActivationKind::Relu)),
                skip_from: None,
            },
            ExecLayer {
                name: "pool2".to_string(),
                op: Layer::MaxPool2d(MaxPool2d::new(2)?), // 4→2
                skip_from: None,
            },
            ExecLayer {
                name: "flatten".to_string(),
                op: Layer::Flatten(harmony_tensor::nn::Flatten),
                skip_from: None,
            },
            ExecLayer {
                name: "fc1".to_string(),
                op: Layer::Linear(Linear::new(8 * 2 * 2, 24, true)),
                skip_from: None,
            },
            ExecLayer {
                name: "gelu".to_string(),
                op: Layer::Activation(Activation::new(ActivationKind::Gelu)),
                skip_from: None,
            },
            ExecLayer {
                name: "fc2".to_string(),
                op: Layer::Linear(Linear::new(24, 4, true)),
                skip_from: None,
            },
        ],
    })
}

/// Builds a small but real transformer language model:
/// embedding → `blocks` × (LN → attention → residual → LN → ff → residual)
/// → head. `causal` selects GPT-style masking.
pub fn tiny_transformer(
    vocab: usize,
    hidden: usize,
    heads: usize,
    blocks: usize,
    causal: bool,
) -> Result<ExecModel> {
    use harmony_tensor::nn::{
        Activation, ActivationKind, Embedding, LayerNorm, Linear, MultiHeadAttention,
    };
    let mut layers = vec![ExecLayer {
        name: "embed".to_string(),
        op: Layer::Embedding(Embedding::new(vocab, hidden)),
        skip_from: None,
    }];
    for b in 0..blocks {
        let block_in = layers.len() - 1; // index of the tensor entering the block
        layers.push(ExecLayer {
            name: format!("b{b}.ln1"),
            op: Layer::LayerNorm(LayerNorm::new(hidden)),
            skip_from: None,
        });
        layers.push(ExecLayer {
            name: format!("b{b}.attn"),
            op: Layer::Attention(MultiHeadAttention::new(hidden, heads, causal)?),
            skip_from: None,
        });
        layers.push(ExecLayer {
            name: format!("b{b}.res1"),
            op: Layer::ResidualAdd,
            skip_from: Some(SkipSource::LayerOutput(block_in)),
        });
        let mid = layers.len() - 1;
        layers.push(ExecLayer {
            name: format!("b{b}.ln2"),
            op: Layer::LayerNorm(LayerNorm::new(hidden)),
            skip_from: None,
        });
        layers.push(ExecLayer {
            name: format!("b{b}.ff1"),
            op: Layer::Linear(Linear::new(hidden, 4 * hidden, true)),
            skip_from: None,
        });
        layers.push(ExecLayer {
            name: format!("b{b}.gelu"),
            op: Layer::Activation(Activation::new(ActivationKind::Gelu)),
            skip_from: None,
        });
        layers.push(ExecLayer {
            name: format!("b{b}.ff2"),
            op: Layer::Linear(Linear::new(4 * hidden, hidden, true)),
            skip_from: None,
        });
        layers.push(ExecLayer {
            name: format!("b{b}.res2"),
            op: Layer::ResidualAdd,
            skip_from: Some(SkipSource::LayerOutput(mid)),
        });
    }
    layers.push(ExecLayer {
        name: "head".to_string(),
        op: Layer::Linear(Linear::new(hidden, vocab, false)),
        skip_from: None,
    });
    Ok(ExecModel {
        name: format!("tiny_transformer(v={vocab},h={hidden},L={blocks})"),
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_batch(
        rng: &mut SplitMix64,
        n: usize,
        d: usize,
        classes: usize,
    ) -> (Tensor, Vec<usize>) {
        // Linearly separable-ish synthetic task: class = argmax of d/classes
        // chunks' means plus noise.
        let x = Tensor::randn([n, d], 1.0, rng);
        let targets = (0..n).map(|i| i % classes).collect::<Vec<_>>();
        let mut xd = x.into_data();
        for (i, &t) in targets.iter().enumerate() {
            for j in 0..d {
                if j % classes == t {
                    xd[i * d + j] += 2.0;
                }
            }
        }
        (Tensor::from_vec([n, d], xd).unwrap(), targets)
    }

    #[test]
    fn mlp_trains_to_lower_loss() {
        let model = mlp(&[8, 16, 4]);
        let mut params = model.init_params(7);
        let opt = Optimizer::adam(0.01);
        let mut state = model.init_opt_state(&params, &opt);
        let mut rng = SplitMix64::new(99);
        let (x, targets) = class_batch(&mut rng, 16, 8, 4);
        let mut first = None;
        let mut last = 0.0;
        for step in 1..=60 {
            let loss = model
                .train_step_reference(&mut params, &opt, &mut state, &x, &targets, step)
                .unwrap();
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        let first = first.unwrap();
        assert!(last < first * 0.5, "loss did not halve: {first} -> {last}");
    }

    #[test]
    fn transformer_trains_on_copy_task() {
        // Predict the input token at each position (identity LM): loss must
        // fall well below ln(vocab).
        let model = tiny_transformer(11, 8, 2, 1, false).unwrap();
        let mut params = model.init_params(13);
        let opt = Optimizer::adam(0.01);
        let mut state = model.init_opt_state(&params, &opt);
        let mut rng = SplitMix64::new(5);
        let ids: Vec<f32> = (0..2 * 6).map(|_| rng.next_bounded(11) as f32).collect();
        let x = Tensor::from_vec([2, 6], ids.clone()).unwrap();
        let targets: Vec<usize> = ids.iter().map(|&v| v as usize).collect();
        let mut last = f32::INFINITY;
        for step in 1..=80 {
            last = model
                .train_step_reference(&mut params, &opt, &mut state, &x, &targets, step)
                .unwrap();
        }
        assert!(last < (11f32).ln() * 0.5, "loss {last}");
    }

    #[test]
    fn backward_grad_matches_finite_difference_through_residuals() {
        let model = tiny_transformer(7, 4, 2, 1, true).unwrap();
        let params = model.init_params(3);
        let mut rng = SplitMix64::new(8);
        let ids: Vec<f32> = (0..4).map(|_| rng.next_bounded(7) as f32).collect();
        let x = Tensor::from_vec([1, 4], ids).unwrap();
        let targets = [1usize, 2, 3, 0];
        let trace = model.forward(&params, &x).unwrap();
        let (_, dlogits) = cross_entropy(trace.outputs.last().unwrap(), &targets).unwrap();
        let (grads, _) = model.backward(&params, &x, &trace, &dlogits).unwrap();
        // Finite-difference a few weight coordinates of the first FF layer.
        let li = model
            .layers
            .iter()
            .position(|l| l.name == "b0.ff1")
            .unwrap();
        let eps = 1e-2f32;
        for j in [0usize, 5, 11] {
            let mut pp = params.clone();
            pp[li][0].data_mut()[j] += eps;
            let mut pm = params.clone();
            pm[li][0].data_mut()[j] -= eps;
            let tp = model.forward(&pp, &x).unwrap();
            let tm = model.forward(&pm, &x).unwrap();
            let (lp, _) = cross_entropy(tp.outputs.last().unwrap(), &targets).unwrap();
            let (lm, _) = cross_entropy(tm.outputs.last().unwrap(), &targets).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            let analytic = grads[li].tensors[0].data()[j];
            assert!(
                (fd - analytic).abs() < 2e-2,
                "coord {j}: fd {fd} vs {analytic}"
            );
        }
    }

    #[test]
    fn forward_rejects_bad_skip_and_param_counts() {
        let model = ExecModel {
            name: "bad".to_string(),
            layers: vec![ExecLayer {
                name: "res".to_string(),
                op: Layer::ResidualAdd,
                skip_from: Some(SkipSource::LayerOutput(0)),
            }],
        };
        let params = model.init_params(1);
        // Skip edge points at itself (not strictly earlier).
        assert!(model.forward(&params, &Tensor::zeros([2])).is_err());
        // Param-set count mismatch.
        let model2 = mlp(&[2, 2]);
        assert!(model2.forward(&[], &Tensor::zeros([1, 2])).is_err());
    }

    #[test]
    fn param_count_sums_layers() {
        let model = mlp(&[3, 5, 2]);
        assert_eq!(model.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let run = || {
            let model = mlp(&[4, 8, 3]);
            let mut params = model.init_params(17);
            let opt = Optimizer::adam(0.02);
            let mut state = model.init_opt_state(&params, &opt);
            let mut rng = SplitMix64::new(55);
            let (x, t) = class_batch(&mut rng, 6, 4, 3);
            let mut losses = Vec::new();
            for step in 1..=10 {
                losses.push(
                    model
                        .train_step_reference(&mut params, &opt, &mut state, &x, &t, step)
                        .unwrap(),
                );
            }
            (losses, params)
        };
        let (l1, p1) = run();
        let (l2, p2) = run();
        assert_eq!(l1, l2);
        assert_eq!(p1, p2);
    }
}

#[cfg(test)]
mod accum_tests {
    use super::*;

    #[test]
    fn accum_with_one_microbatch_matches_reference_exactly() {
        let model = mlp(&[6, 10, 3]);
        let mut p1 = model.init_params(9);
        let mut p2 = p1.clone();
        let opt = Optimizer::adam(0.01);
        let mut s1 = model.init_opt_state(&p1, &opt);
        let mut s2 = model.init_opt_state(&p2, &opt);
        let mut rng = SplitMix64::new(2);
        let x = Tensor::randn([4, 6], 1.0, &mut rng);
        let targets = vec![0usize, 1, 2, 0];
        for step in 1..=5 {
            let l1 = model
                .train_step_reference(&mut p1, &opt, &mut s1, &x, &targets, step)
                .unwrap();
            let l2 = model
                .train_step_accum(&mut p2, &opt, &mut s2, &x, &targets, 1, step)
                .unwrap();
            assert_eq!(l1, l2, "step {step}");
        }
        assert_eq!(p1, p2);
    }

    #[test]
    fn accum_with_microbatches_stays_close_to_full_batch() {
        // Different summation order ⇒ not bitwise equal, but numerically
        // the same gradient; parameters must track closely.
        let model = mlp(&[6, 10, 3]);
        let mut p1 = model.init_params(9);
        let mut p2 = p1.clone();
        let opt = Optimizer::Sgd { lr: 0.05 };
        let mut s1 = model.init_opt_state(&p1, &opt);
        let mut s2 = model.init_opt_state(&p2, &opt);
        let mut rng = SplitMix64::new(3);
        let x = Tensor::randn([8, 6], 1.0, &mut rng);
        let targets: Vec<usize> = (0..8).map(|i| i % 3).collect();
        for step in 1..=10 {
            model
                .train_step_reference(&mut p1, &opt, &mut s1, &x, &targets, step)
                .unwrap();
            model
                .train_step_accum(&mut p2, &opt, &mut s2, &x, &targets, 4, step)
                .unwrap();
        }
        for (a, b) in p1.iter().flatten().zip(p2.iter().flatten()) {
            assert!(a.max_abs_diff(b).unwrap() < 1e-4);
        }
    }

    #[test]
    fn accum_is_deterministic() {
        let model = tiny_transformer(7, 4, 2, 1, true).unwrap();
        let run = || {
            let mut p = model.init_params(5);
            let opt = Optimizer::adam(0.01);
            let mut s = model.init_opt_state(&p, &opt);
            let mut rng = SplitMix64::new(6);
            let ids: Vec<f32> = (0..4 * 4).map(|_| rng.next_bounded(7) as f32).collect();
            let x = Tensor::from_vec([4, 4], ids.clone()).unwrap();
            let t: Vec<usize> = ids.iter().map(|&v| v as usize).collect();
            let mut losses = Vec::new();
            for step in 1..=4 {
                losses.push(
                    model
                        .train_step_accum(&mut p, &opt, &mut s, &x, &t, 2, step)
                        .unwrap(),
                );
            }
            (losses, p)
        };
        let (l1, p1) = run();
        let (l2, p2) = run();
        assert_eq!(l1, l2);
        assert_eq!(p1, p2);
    }
}
