//! Sequence-to-sequence model builders: the remaining language entries of
//! the Fig 1 zoo — GNMT ('16, 278 M) and T5-11B ('19, 11 B) — as
//! schedulable [`ModelSpec`]s with parameter math pinned to the published
//! architectures (tests assert the zoo counts within tolerance).

use crate::spec::{LayerClass, LayerSpec, ModelSpec};

/// One LSTM layer: `4` gates of `[in + h, h]` weights plus biases.
fn lstm(name: &str, input: u64, hidden: u64, seq: u64) -> LayerSpec {
    let params = 4 * ((input + hidden) * hidden + hidden);
    LayerSpec {
        name: name.to_string(),
        class: LayerClass::Other,
        params,
        // 2 FLOPs/MAC, once per timestep.
        fwd_flops_per_sample: 2 * params * seq,
        out_elems_per_sample: seq * hidden,
        // LSTMs stash per-step gate activations: ~4h per step.
        extra_stash_elems_per_sample: 4 * seq * hidden,
        in_elems_per_sample: seq * input,
    }
}

fn embedding(name: &str, vocab: u64, dim: u64, seq: u64) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        class: LayerClass::Embedding,
        params: vocab * dim,
        fwd_flops_per_sample: seq * dim,
        out_elems_per_sample: seq * dim,
        extra_stash_elems_per_sample: seq,
        in_elems_per_sample: seq,
    }
}

fn projection(name: &str, dim: u64, vocab: u64, seq: u64) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        class: LayerClass::Head,
        params: dim * vocab,
        fwd_flops_per_sample: 2 * seq * dim * vocab,
        out_elems_per_sample: seq * vocab,
        extra_stash_elems_per_sample: 0,
        in_elems_per_sample: seq * dim,
    }
}

/// GNMT (Wu et al. '16): 8-layer LSTM encoder (first layer bidirectional)
/// plus an 8-layer LSTM decoder with attention, hidden 1024, 32 K word
/// pieces. Fig 1 lists it at 278 M parameters.
pub fn gnmt() -> ModelSpec {
    let h = 1024u64;
    let v = 32_000u64;
    let seq = 64u64;
    let mut layers = vec![embedding("enc_embed", v, h, seq)];
    // Bidirectional first layer = two LSTMs over the input.
    layers.push(lstm("enc_l0_fwd", h, h, seq));
    layers.push(lstm("enc_l0_bwd", h, h, seq));
    // Layer 1 consumes the 2h-wide bidirectional output.
    layers.push(lstm("enc_l1", 2 * h, h, seq));
    for i in 2..8 {
        layers.push(lstm(&format!("enc_l{i}"), h, h, seq));
    }
    layers.push(embedding("dec_embed", v, h, seq));
    // Decoder layer 0 sees embedding + attention context (2h input).
    layers.push(lstm("dec_l0", 2 * h, h, seq));
    for i in 1..8 {
        // Attention context is fed to every decoder layer (2h input).
        layers.push(lstm(&format!("dec_l{i}"), 2 * h, h, seq));
    }
    layers.push(projection("softmax", h, v, seq));
    ModelSpec {
        name: "gnmt".to_string(),
        layers,
        seq_len: seq,
    }
}

/// One T5-11B attention block: Q/K/V/O projections into the *decoupled*
/// inner dimension (128 heads × d_kv 128 = 16384 — the unusual shape that
/// puts T5-11B at 11 B parameters).
fn t5_attention(name: &str, d_model: u64, inner: u64, seq: u64) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        class: LayerClass::Attention,
        params: 4 * d_model * inner,
        fwd_flops_per_sample: 8 * seq * d_model * inner + 4 * seq * seq * inner,
        out_elems_per_sample: seq * d_model,
        extra_stash_elems_per_sample: 128 * seq * seq + seq * inner,
        in_elems_per_sample: seq * d_model,
    }
}

fn t5_ff(name: &str, d_model: u64, d_ff: u64, seq: u64) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        class: LayerClass::FeedForward,
        params: 2 * d_model * d_ff,
        fwd_flops_per_sample: 4 * seq * d_model * d_ff,
        out_elems_per_sample: seq * d_model,
        extra_stash_elems_per_sample: seq * d_ff,
        in_elems_per_sample: seq * d_model,
    }
}

/// T5-11B (Raffel et al. '19): 24 encoder + 24 decoder blocks,
/// d_model 1024, d_ff 65536, attention inner dim 16384 (128 heads × 128).
/// Fig 1 lists it at 11 B parameters.
pub fn t5_11b() -> ModelSpec {
    let (d, inner, ff, v, seq) = (1024u64, 16_384u64, 65_536u64, 32_128u64, 512u64);
    let mut layers = vec![embedding("shared_embed", v, d, seq)];
    for i in 0..24 {
        layers.push(t5_attention(&format!("enc{i}.attn"), d, inner, seq));
        layers.push(t5_ff(&format!("enc{i}.ff"), d, ff, seq));
    }
    for i in 0..24 {
        layers.push(t5_attention(&format!("dec{i}.self_attn"), d, inner, seq));
        layers.push(t5_attention(&format!("dec{i}.cross_attn"), d, inner, seq));
        layers.push(t5_ff(&format!("dec{i}.ff"), d, ff, seq));
    }
    // T5 ties the output projection to the shared embedding; count it once.
    ModelSpec {
        name: "t5-11b".to_string(),
        layers,
        seq_len: seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn gnmt_matches_fig1_param_count() {
        let p = gnmt().total_params();
        let target = zoo::fig1_zoo()[2].params; // 278 M
        let tol = target / 5; // ±20%: published count includes attention MLP etc.
        assert!(
            p.abs_diff(target) < tol,
            "gnmt params {p} vs published {target}"
        );
    }

    #[test]
    fn t5_matches_fig1_param_count() {
        let p = t5_11b().total_params();
        let target = zoo::fig1_zoo()[5].params; // 11 B
        let tol = target / 10; // ±10%
        assert!(
            p.abs_diff(target) < tol,
            "t5 params {p} ({:.2}B) vs published {target}",
            p as f64 / 1e9
        );
    }

    #[test]
    fn t5_state_exceeds_even_an_8_gpu_server() {
        // The zoo's point: by 2019, W+dW+Adam alone (176 GB) no longer fits
        // 8 × 11 GB of aggregate GPU memory.
        let m = t5_11b();
        assert!(m.total_params() * 16 > 8 * 11 * (1u64 << 30));
    }

    #[test]
    fn gnmt_lstm_stash_is_per_timestep() {
        let m = gnmt();
        let l = m.layers.iter().find(|l| l.name == "enc_l1").unwrap();
        // 4 gate activations per step per hidden unit.
        assert_eq!(l.extra_stash_elems_per_sample, 4 * 64 * 1024);
    }
}
