//! # harmony-models
//!
//! DNN model descriptions at two levels of fidelity:
//!
//! * **Abstract specs** ([`ModelSpec`] / [`LayerSpec`]) — per-layer
//!   parameter counts, activation/stash footprints, and FLOP estimates as
//!   functions of batch and sequence length. These feed Harmony's task
//!   decomposer and the discrete-event simulator, which only needs *sizes
//!   and costs*, not numerics. This is how we model the paper's BERT
//!   workload (Fig 2) without CUDA.
//! * **Executable models** ([`exec`]) — small instantiations built from
//!   `harmony-tensor` layers for functional tests: real forward/backward/
//!   update with real floats, used to prove the scheduled execution is
//!   bit-identical to a sequential reference.
//!
//! It also carries the Fig-1 model zoo (LeNet → GPT-3 parameter growth).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnn;
pub mod data;
pub mod exec;
pub mod seq2seq;
pub mod spec;
pub mod transformer;
pub mod zoo;

pub use spec::{LayerClass, LayerSpec, ModelSpec};
pub use transformer::TransformerConfig;
