//! Synthetic dataset generators for functional training.
//!
//! The paper's evaluation uses real corpora (BERT pre-training data);
//! functional-mode tests and examples need small, deterministic tasks with
//! enough signal to show learning. These generators are shared by the
//! examples, the integration tests, and the benches.

use harmony_tensor::rng::SplitMix64;
use harmony_tensor::{Result, Tensor};

/// A labelled batch: inputs plus per-row class targets.
pub type Batch = (Tensor, Vec<usize>);

/// Classification blobs: class `c` brightens its own slice of the feature
/// vector (`dim` must be divisible by `classes`). Returns `[rows, dim]`
/// features with row `i` labelled `i % classes`.
pub fn classification_blobs(
    rng: &mut SplitMix64,
    rows: usize,
    dim: usize,
    classes: usize,
) -> Result<Batch> {
    let mut x = Tensor::randn([rows, dim], 0.5, rng);
    let slice = (dim / classes.max(1)).max(1);
    let targets: Vec<usize> = (0..rows).map(|i| i % classes).collect();
    for (i, &class) in targets.iter().enumerate() {
        for j in 0..slice {
            let idx = i * dim + (class * slice + j) % dim;
            x.data_mut()[idx] += 2.0;
        }
    }
    Ok((x, targets))
}

/// Copy task for language models: random token ids in `[0, vocab)`, target
/// = the input token at each position (identity LM). Ids are f32-encoded
/// as the embedding layer expects. Returns `[rows, seq]` ids.
pub fn copy_task_tokens(
    rng: &mut SplitMix64,
    rows: usize,
    seq: usize,
    vocab: usize,
) -> Result<Batch> {
    let ids: Vec<f32> = (0..rows * seq)
        .map(|_| rng.next_bounded(vocab) as f32)
        .collect();
    let targets = ids.iter().map(|&v| v as usize).collect();
    Ok((Tensor::from_vec([rows, seq], ids)?, targets))
}

/// Bright-quadrant images for convolutional models: `side × side`
/// single-channel images where class `c ∈ 0..4` is the bright quadrant
/// (plus Gaussian noise). Returns `[rows, 1, side, side]` images; `side`
/// must be even.
pub fn quadrant_images(rng: &mut SplitMix64, rows: usize, side: usize) -> Result<Batch> {
    let half = side / 2;
    let mut data = vec![0.0f32; rows * side * side];
    let mut targets = Vec::with_capacity(rows);
    for i in 0..rows {
        let class = i % 4;
        targets.push(class);
        let (qy, qx) = (class / 2, class % 2);
        for y in 0..side {
            for x in 0..side {
                let bright = (y >= qy * half && y < (qy + 1) * half)
                    && (x >= qx * half && x < (qx + 1) * half);
                data[i * side * side + y * side + x] =
                    if bright { 1.0 } else { 0.0 } + 0.1 * rng.normal();
            }
        }
    }
    Ok((Tensor::from_vec([rows, 1, side, side], data)?, targets))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_carry_signal() {
        let mut rng = SplitMix64::new(1);
        let (x, t) = classification_blobs(&mut rng, 8, 24, 4).unwrap();
        assert_eq!(x.shape().dims(), &[8, 24]);
        assert_eq!(t, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // The labelled slice's mean is well above the background's.
        let row0 = &x.data()[0..24];
        let fg: f32 = row0[0..6].iter().sum::<f32>() / 6.0;
        let bg: f32 = row0[6..24].iter().sum::<f32>() / 18.0;
        assert!(fg > bg + 1.0, "fg {fg} vs bg {bg}");
    }

    #[test]
    fn copy_tokens_are_valid_ids() {
        let mut rng = SplitMix64::new(2);
        let (x, t) = copy_task_tokens(&mut rng, 4, 6, 11).unwrap();
        assert_eq!(x.shape().dims(), &[4, 6]);
        for (&id, &tt) in x.data().iter().zip(&t) {
            assert_eq!(id as usize, tt);
            assert!(tt < 11);
            assert_eq!(id.fract(), 0.0);
        }
    }

    #[test]
    fn quadrants_are_bright_where_labelled() {
        let mut rng = SplitMix64::new(3);
        let (x, t) = quadrant_images(&mut rng, 4, 8).unwrap();
        assert_eq!(x.shape().dims(), &[4, 1, 8, 8]);
        for (i, &class) in t.iter().enumerate() {
            let (qy, qx) = (class / 2, class % 2);
            // Centre pixel of the bright quadrant vs the opposite corner.
            let bright = x.data()[i * 64 + (qy * 4 + 2) * 8 + qx * 4 + 2];
            let dark = x.data()[i * 64 + ((1 - qy) * 4 + 2) * 8 + (1 - qx) * 4 + 2];
            assert!(bright > dark + 0.3, "image {i}: {bright} vs {dark}");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let run = |seed| {
            let mut rng = SplitMix64::new(seed);
            let a = classification_blobs(&mut rng, 4, 8, 4).unwrap();
            let b = copy_task_tokens(&mut rng, 2, 4, 7).unwrap();
            let c = quadrant_images(&mut rng, 4, 4).unwrap();
            (a, b, c)
        };
        let (a1, b1, c1) = run(9);
        let (a2, b2, c2) = run(9);
        assert_eq!(a1.0, a2.0);
        assert_eq!(b1.0, b2.0);
        assert_eq!(c1.0, c2.0);
    }
}
