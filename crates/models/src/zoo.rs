//! The Fig-1 model zoo: two decades of model-size growth.
//!
//! Fig 1 of the paper plots parameter counts for image-classification and
//! language models from LeNet (1998, 60 K) to GPT-3 (2020, 175 B). The
//! `repro fig1` harness prints this table; tests assert the exponential
//! growth the paper's argument rests on.

/// Task family of a zoo entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFamily {
    /// Image classification.
    Vision,
    /// Language modelling / translation.
    Language,
}

/// One model in the Fig-1 growth chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZooEntry {
    /// Model name as labelled in Fig 1.
    pub name: &'static str,
    /// Publication year.
    pub year: u32,
    /// Parameter count.
    pub params: u64,
    /// Task family.
    pub family: TaskFamily,
}

/// The seven models of Fig 1, in chronological order.
pub fn fig1_zoo() -> Vec<ZooEntry> {
    vec![
        ZooEntry {
            name: "LeNet",
            year: 1998,
            params: 60_000,
            family: TaskFamily::Vision,
        },
        ZooEntry {
            name: "AlexNet",
            year: 2012,
            params: 61_000_000,
            family: TaskFamily::Vision,
        },
        ZooEntry {
            name: "GNMT",
            year: 2016,
            params: 278_000_000,
            family: TaskFamily::Language,
        },
        ZooEntry {
            name: "AmoebaNet",
            year: 2018,
            params: 557_000_000,
            family: TaskFamily::Vision,
        },
        ZooEntry {
            name: "GPT-2",
            year: 2019,
            params: 1_500_000_000,
            family: TaskFamily::Language,
        },
        ZooEntry {
            name: "T5",
            year: 2019,
            params: 11_000_000_000,
            family: TaskFamily::Language,
        },
        ZooEntry {
            name: "GPT-3",
            year: 2020,
            params: 175_000_000_000,
            family: TaskFamily::Language,
        },
    ]
}

/// fp32 weight bytes for a zoo entry (`params × 4`).
pub fn weight_bytes(entry: &ZooEntry) -> u64 {
    entry.params * crate::spec::BYTES_PER_ELEM
}

/// Conservative lower bound on the *training* footprint in bytes: weights,
/// gradients, and Adam state only (no activations). This is the "model
/// states" floor that ZeRO-style analyses use (16 bytes/param for
/// mixed-precision; we use fp32's 16 = 4×(W, dW, m, v)).
pub fn min_training_bytes(entry: &ZooEntry) -> u64 {
    entry.params * 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_matches_fig1_values() {
        let zoo = fig1_zoo();
        assert_eq!(zoo.len(), 7);
        assert_eq!(zoo[0].params, 60_000); // 60K LeNet
        assert_eq!(zoo[4].params, 1_500_000_000); // 1.5B GPT-2
        assert_eq!(zoo[6].params, 175_000_000_000); // 175B GPT-3
    }

    #[test]
    fn growth_is_monotonic_and_exponential() {
        let zoo = fig1_zoo();
        for pair in zoo.windows(2) {
            assert!(pair[1].params > pair[0].params);
            assert!(pair[1].year >= pair[0].year);
        }
        // Six orders of magnitude over the chart (paper: "grown
        // exponentially").
        assert!(zoo[6].params / zoo[0].params > 1_000_000);
    }

    #[test]
    fn even_gpt2_model_states_exceed_one_commodity_gpu() {
        // The paper's motivation: for modern language models even the
        // weights+grads+optimizer floor exceeds a single 11 GB GPU.
        let gpt2 = &fig1_zoo()[4];
        assert!(min_training_bytes(gpt2) > 11 * (1 << 30) as u64);
    }

    #[test]
    fn gpt3_weights_exceed_any_commodity_server_aggregate() {
        let gpt3 = &fig1_zoo()[6];
        // 8 × 11 GB of aggregate GPU memory.
        assert!(weight_bytes(gpt3) > 8 * 11 * (1 << 30) as u64);
    }
}
