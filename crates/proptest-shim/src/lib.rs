//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so this shim
//! provides exactly the subset of the proptest API the workspace's
//! property tests use: `Strategy` with `prop_map`, numeric range and
//! tuple strategies, `Just`, `any`, `prop_oneof!`, collection/option/
//! string-pattern strategies, and the `proptest!` / `prop_assert!`
//! macros. Generation is deterministic (seeded per test name and case
//! index) and there is **no shrinking** — a failing case panics with the
//! generated inputs available via the assertion message.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix RNG used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG seeded from a test name and case index.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e3779b97f4a7c15))
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Test-runner configuration (the only field the workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy producing a single cloned value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128 + 1) as u64;
                (s as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String-pattern strategy: supports the `[class]{min,max}` subset of
/// proptest's regex string strategies (character classes with literal
/// characters and `a-z` ranges).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern `{self}` (shim supports `[class]{{min,max}}`)")
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class_src, rest) = rest.split_at(close);
    let rest = rest.strip_prefix(']')?;
    let rest = rest.strip_prefix('{')?;
    let rest = rest.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let (min, max) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    let chars: Vec<char> = class_src.chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
            for c in a..=b {
                class.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() || min > max {
        return None;
    }
    Some((class, min, max))
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A boxed generator closure — one arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between boxed sub-strategies (`prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Builds a union from generator closures.
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a range or an exact length.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $({
                let arm = $arm;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::new_value(&arm, rng)) as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    }};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Error type returned by proptest bodies (`return Ok(())` early exits).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    // Bodies may `return Ok(())` to finish a case early, as
                    // with real proptest's `Result`-valued test closures.
                    #[allow(clippy::unused_unit, clippy::redundant_closure_call, unreachable_code)]
                    let __res: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __res {
                        panic!("proptest case {} failed: {:?}", case, e);
                    }
                }
            }
        )*
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop` (module aliases).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::new_value(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&w));
            let f = Strategy::new_value(&(-4.0f32..4.0), &mut rng);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = TestRng::for_case("det", seed);
            Strategy::new_value(&prop::collection::vec(0u64..100, 1..20), &mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn string_patterns_generate_from_class() {
        let mut rng = TestRng::for_case("pat", 1);
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-c ]{2,5}", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 5);
            assert!(s.chars().all(|c| c == ' ' || ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(v in prop::collection::vec((0u8..4, any::<bool>()), 0..8), x in 1u32..9) {
            prop_assert!(v.len() < 8);
            prop_assert!((1..9).contains(&x), "x = {}", x);
            for (a, _) in v {
                prop_assert!(a < 4);
            }
        }
    }
}
