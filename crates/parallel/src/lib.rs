//! # harmony-parallel
//!
//! A deterministic, order-preserving work pool for the workspace's
//! embarrassingly-parallel driver loops: the Performance Tuner's sweep,
//! the conformance/pinned matrices, and the `repro` sweep subcommands.
//!
//! Design constraints (DESIGN.md §7):
//!
//! * **Determinism.** [`par_map`] returns results in input order, and each
//!   item is processed by a pure function of that item alone — so the
//!   output is byte-identical whatever the worker count (1, 2, or N).
//!   Worker threads only decide *which* items they claim, never what a
//!   result contains or where it lands.
//! * **No added dependencies.** Built on `std::thread::scope` (stable
//!   scoped threads); items are claimed from an atomic cursor, so work is
//!   dynamically balanced without channels or unsafe code.
//!
//! Worker count resolution: an explicit [`with_workers`] override wins,
//! then the `HARMONY_WORKERS` environment variable, then
//! `std::thread::available_parallelism`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Process-wide worker override installed by [`with_workers`]
/// (0 = no override).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Whether a malformed `HARMONY_WORKERS` value has already been reported
/// (the warning is one-time per process, not per [`worker_count`] call).
static WORKERS_ENV_WARNED: AtomicBool = AtomicBool::new(false);

/// Parses a `HARMONY_WORKERS` value: a positive integer, or an error
/// message naming the rejected value. Split out of [`worker_count`] so
/// the rejection paths are unit-testable without mutating process-global
/// environment state.
fn parse_workers_env(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!(
            "HARMONY_WORKERS must be a positive worker count, got `{raw}`"
        )),
        Err(_) => Err(format!(
            "HARMONY_WORKERS must be a positive integer, got `{raw}`"
        )),
    }
}

/// Resolves the worker count: [`with_workers`] override, else the
/// `HARMONY_WORKERS` environment variable, else available parallelism
/// (at least 1). A set-but-malformed `HARMONY_WORKERS` (e.g. `abc` or
/// `0`) falls back to available parallelism with a one-time stderr
/// warning naming the rejected value — a misconfigured CI job must not
/// silently serialize or oversubscribe.
pub fn worker_count() -> usize {
    let o = WORKER_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("HARMONY_WORKERS") {
        match parse_workers_env(&v) {
            Ok(n) => return n,
            Err(msg) => {
                if !WORKERS_ENV_WARNED.swap(true, Ordering::Relaxed) {
                    eprintln!("warning: {msg}; falling back to available parallelism");
                }
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` with the worker count pinned to `n` (restoring the previous
/// override afterwards, including on panic). Used by the determinism
/// tests and the `repro bench` sequential-vs-parallel comparison.
pub fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let prev = WORKER_OVERRIDE.swap(n.max(1), Ordering::Relaxed);
    let _restore = Restore(prev);
    f()
}

/// Order-preserving parallel map with the resolved [`worker_count`].
///
/// Each worker claims the next unprocessed index from a shared cursor,
/// computes `f(index, &items[index])`, and the results are reassembled in
/// input order — so the returned vector is identical to
/// `items.iter().enumerate().map(...)` regardless of worker count or
/// claim interleaving. `f` must be deterministic per item for the
/// workspace's byte-identical guarantees to hold.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_workers(worker_count(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_workers<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut slots: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        mine.push((i, f(i, &items[i])));
                    }
                    mine
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for h in handles {
            // A worker panic propagates: the pool never swallows failures.
            for (i, r) in h.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
        slots
    });
    slots
        .iter_mut()
        .map(|s| s.take().expect("every index claimed exactly once"))
        .collect()
}

/// [`par_map`] with a lazily created per-worker state, for maps whose
/// items want to recycle expensive scratch (arenas, pools, sessions)
/// *within* a worker without sharing it *across* workers.
///
/// Each worker thread creates its own state with `init()` on first use
/// and threads it through every item that worker claims, so states never
/// contend. Determinism contract: `f` must produce the same result for an
/// item whatever state instance (fresh or reused) it receives — exactly
/// the byte-identity the pooled run path guarantees — so the output stays
/// identical at any worker count even though *which* state serves which
/// item varies with claim interleaving.
pub fn par_map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    par_map_workers_with(worker_count(), items, init, f)
}

/// [`par_map_with`] with an explicit worker count.
pub fn par_map_workers_with<T, R, S, I, F>(workers: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 || items.len() <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let init = &init;
    let f = &f;
    let cursor = &cursor;
    let mut slots: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        mine.push((i, f(&mut state, i, &items[i])));
                    }
                    mine
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for h in handles {
            // A worker panic propagates: the pool never swallows failures.
            for (i, r) in h.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
        slots
    });
    slots
        .iter_mut()
        .map(|s| s.take().expect("every index claimed exactly once"))
        .collect()
}

/// Runs every task on its own scoped thread **concurrently** and returns
/// the results in input order.
///
/// This is the primitive for *cooperating* tasks — ones that rendezvous
/// with each other through barriers or condvars, like the sharded
/// executor's per-shard event loops (DESIGN §12). [`par_map`] must not
/// be used for those: its workers claim items from a cursor, so with
/// fewer workers than items a blocked task waits forever for a peer that
/// was never started. Here the thread count equals the task count by
/// construction (the OS timeslices when that exceeds the core count),
/// so every peer is always live. A panicking task propagates the panic
/// after all threads have been joined.
pub fn join_all<R, F>(tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if tasks.is_empty() {
        return Vec::new();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks.into_iter().map(|t| scope.spawn(t)).collect();
        // Collect every join before unwrapping: a panic in one task must
        // not detach its siblings mid-rendezvous.
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        joined
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = par_map_workers(4, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_worker_counts() {
        let items: Vec<u64> = (0..53).collect();
        let run = |w| par_map_workers(w, &items, |_, &x| x.wrapping_mul(0x9E3779B97F4A7C15));
        let base = run(1);
        for w in [2, 3, 4, 8, 64] {
            assert_eq!(run(w), base, "worker count {w} changed results");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_workers(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_workers(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn with_workers_overrides_and_restores() {
        let before = worker_count();
        with_workers(3, || assert_eq!(worker_count(), 3));
        assert_eq!(worker_count(), before);
        with_workers(2, || {
            with_workers(5, || assert_eq!(worker_count(), 5));
            assert_eq!(worker_count(), 2);
        });
    }

    #[test]
    fn workers_exceeding_items_are_clamped() {
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(par_map_workers(100, &items, |_, &x| x * 2), vec![0, 2, 4]);
    }

    #[test]
    fn workers_env_rejects_non_numeric_and_zero() {
        assert_eq!(parse_workers_env("4"), Ok(4));
        assert_eq!(parse_workers_env(" 2 "), Ok(2));
        let zero = parse_workers_env("0").unwrap_err();
        assert!(zero.contains("`0`"), "message must name the value: {zero}");
        let junk = parse_workers_env("abc").unwrap_err();
        assert!(
            junk.contains("`abc`"),
            "message must name the value: {junk}"
        );
        assert!(parse_workers_env("-3").is_err());
        assert!(parse_workers_env("").is_err());
        assert!(parse_workers_env("4.5").is_err());
    }

    #[test]
    fn stateful_map_is_identical_across_worker_counts() {
        let items: Vec<u64> = (0..41).collect();
        // The state is reuse-invisible scratch: cleared before each item,
        // exactly the pooled-run discipline the real callers follow.
        let run = |w| {
            par_map_workers_with(w, &items, Vec::<u64>::new, |scratch, i, &x| {
                scratch.clear();
                scratch.extend(0..=x);
                (i as u64) + scratch.iter().sum::<u64>()
            })
        };
        let base = run(1);
        for w in [2, 3, 8, 64] {
            assert_eq!(run(w), base, "worker count {w} changed results");
        }
    }

    #[test]
    fn stateful_map_creates_at_most_one_state_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u32> = (0..100).collect();
        let inits = AtomicUsize::new(0);
        let out = par_map_workers_with(
            4,
            &items,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, _, &x| x,
        );
        assert_eq!(out, items);
        let n = inits.load(Ordering::Relaxed);
        assert!(n <= 4, "4 workers must not create {n} states");
    }

    #[test]
    fn join_all_preserves_order_and_runs_concurrently() {
        use std::sync::{Arc, Barrier};
        assert!(join_all(Vec::<Box<dyn FnOnce() -> u32 + Send>>::new()).is_empty());
        // All eight tasks meet at one barrier: only possible if every
        // task is live at once, whatever the host's core count.
        let barrier = Arc::new(Barrier::new(8));
        let tasks: Vec<_> = (0..8u32)
            .map(|i| {
                let b = Arc::clone(&barrier);
                move || {
                    b.wait();
                    i * 10
                }
            })
            .collect();
        let out = join_all(tasks);
        assert_eq!(out, (0..8u32).map(|i| i * 10).collect::<Vec<_>>());
    }
}
