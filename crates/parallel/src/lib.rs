//! # harmony-parallel
//!
//! A deterministic, order-preserving work pool for the workspace's
//! embarrassingly-parallel driver loops: the Performance Tuner's sweep,
//! the conformance/pinned matrices, and the `repro` sweep subcommands.
//!
//! Design constraints (DESIGN.md §7):
//!
//! * **Determinism.** [`par_map`] returns results in input order, and each
//!   item is processed by a pure function of that item alone — so the
//!   output is byte-identical whatever the worker count (1, 2, or N).
//!   Worker threads only decide *which* items they claim, never what a
//!   result contains or where it lands.
//! * **No added dependencies.** Built on `std::thread::scope` (stable
//!   scoped threads); items are claimed from an atomic cursor, so work is
//!   dynamically balanced without channels or unsafe code.
//!
//! Worker count resolution: an explicit [`with_workers`] override wins,
//! then the `HARMONY_WORKERS` environment variable, then
//! `std::thread::available_parallelism`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker override installed by [`with_workers`]
/// (0 = no override).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Resolves the worker count: [`with_workers`] override, else the
/// `HARMONY_WORKERS` environment variable, else available parallelism
/// (at least 1).
pub fn worker_count() -> usize {
    let o = WORKER_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("HARMONY_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` with the worker count pinned to `n` (restoring the previous
/// override afterwards, including on panic). Used by the determinism
/// tests and the `repro bench` sequential-vs-parallel comparison.
pub fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let prev = WORKER_OVERRIDE.swap(n.max(1), Ordering::Relaxed);
    let _restore = Restore(prev);
    f()
}

/// Order-preserving parallel map with the resolved [`worker_count`].
///
/// Each worker claims the next unprocessed index from a shared cursor,
/// computes `f(index, &items[index])`, and the results are reassembled in
/// input order — so the returned vector is identical to
/// `items.iter().enumerate().map(...)` regardless of worker count or
/// claim interleaving. `f` must be deterministic per item for the
/// workspace's byte-identical guarantees to hold.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_workers(worker_count(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_workers<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut slots: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        mine.push((i, f(i, &items[i])));
                    }
                    mine
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for h in handles {
            // A worker panic propagates: the pool never swallows failures.
            for (i, r) in h.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
        slots
    });
    slots
        .iter_mut()
        .map(|s| s.take().expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = par_map_workers(4, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_worker_counts() {
        let items: Vec<u64> = (0..53).collect();
        let run = |w| par_map_workers(w, &items, |_, &x| x.wrapping_mul(0x9E3779B97F4A7C15));
        let base = run(1);
        for w in [2, 3, 4, 8, 64] {
            assert_eq!(run(w), base, "worker count {w} changed results");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_workers(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_workers(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn with_workers_overrides_and_restores() {
        let before = worker_count();
        with_workers(3, || assert_eq!(worker_count(), 3));
        assert_eq!(worker_count(), before);
        with_workers(2, || {
            with_workers(5, || assert_eq!(worker_count(), 5));
            assert_eq!(worker_count(), 2);
        });
    }

    #[test]
    fn workers_exceeding_items_are_clamped() {
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(par_map_workers(100, &items, |_, &x| x * 2), vec![0, 2, 4]);
    }
}
