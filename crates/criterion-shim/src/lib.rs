//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides
//! just enough of criterion's API for the workspace's `[[bench]]`
//! targets to compile and run: each benchmark executes its closure a
//! small fixed number of iterations and reports mean wall time per
//! iteration. There is no statistical analysis, warm-up, or HTML
//! report — the goal is that `cargo bench` exercises the same code
//! paths the real harness would.

#![forbid(unsafe_code)]

use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_nanos: f64,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.samples,
            mean_nanos: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.mean_nanos);
        self
    }

    /// Runs a parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.samples,
            mean_nanos: 0.0,
        };
        f(&mut b, input);
        self.report(&id.id, b.mean_nanos);
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, mean_nanos: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / (mean_nanos / 1e9))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.0} B/s)", n as f64 / (mean_nanos / 1e9))
            }
            None => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.1} ns/iter{}",
            self.name, id, mean_nanos, rate
        );
    }
}

/// Benchmark driver (shim: fixed iteration counts, stdout reporting).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
