//! # harmony-simulator
//!
//! A deterministic discrete-event simulator of a multi-GPU server, the
//! substrate on which Harmony's schedules are evaluated (substituting for
//! the paper's physical 4×1080Ti testbed — see DESIGN.md §2).
//!
//! The engine models two resource classes:
//!
//! * **Compute streams** — one FIFO stream per GPU: a submitted kernel
//!   occupies its GPU exclusively for its duration (the CUDA stream model
//!   per device that frameworks use).
//! * **Bandwidth channels** — directed links from `harmony-topology`.
//!   Concurrent transfers sharing a channel receive a fair share of its
//!   capacity; a transfer's instantaneous rate is its *bottleneck share*
//!   `min_c (bw_c / active_c)` over the channels on its route (flow-level
//!   network simulation). This is what exposes the paper's
//!   oversubscribed-host-link collapse: four swapping GPUs each get a
//!   quarter of the uplink.
//!
//! ## Near-O(affected) event processing: route-class flights
//!
//! Two transfers with the same route always see the same bottleneck
//! share, so their rates are equal at every instant. The engine therefore
//! aggregates in-flight transfers into **flights** (route classes):
//!
//! * A per-channel **active count** is the fair-share denominator; a
//!   per-channel list of the flights crossing it is the index that turns
//!   an event on a route into its *affected flight set* — no walk over
//!   the whole in-flight population.
//! * Byte progress is **lazy and per flight**: a flight stores
//!   `(drained, rate, touch)` — cumulative bytes drained per member as of
//!   its last materialization — and is materialized only when its rate
//!   *value* changes. A member transfer stores a single immutable
//!   **departure threshold** `depart = bytes + drained(start)`: it
//!   completes exactly when the flight's drain reaches `depart`.
//! * Because departures never change after submission, each flight keeps
//!   its members in a plain min-heap ordered by `(depart, id)` with no
//!   invalidation: rate changes move predicted *times*, not departure
//!   *order*. Picking the next completion is a heap peek; the next
//!   network event is the minimum of the flights' cached predictions.
//!
//! Per-event cost is O(affected flights + log members + channels), versus
//! the previous engine's three full passes over every in-flight transfer
//! (progress advance, rate recompute, completion min-scan).
//!
//! A `dense_reference` mode (behind the `dense_reference` feature, and
//! always available to in-crate tests) ignores the channel→flight index
//! and re-derives **every** occupied flight's rate on every network event
//! — the full-rescan structure of the previous engine. Both modes share
//! the same per-flight arithmetic, and a flight whose re-derived rate is
//! bitwise unchanged is left untouched, so the rescan degenerates to a
//! no-op for unaffected flights and the two engines produce
//! **bit-identical traces**; the harness checks this differentially.
//!
//! The driver (a scheduler runtime) submits compute and transfers with
//! opaque `tag`s and repeatedly calls [`Simulator::next`] to advance
//! virtual time and receive completions — the structure of Harmony's
//! *online* task-and-swap scheduler.
//!
//! Determinism: same-instant events order canonically by
//! `(wave, lane, event-kind rank, submission seq)` — the wave counts
//! intra-instant causal phases (events spawned while the instant's own
//! handlers run join a later wave) and the lane is the driver's logical
//! lane (GPU index), so the cross-lane order at an instant is a
//! function of each lane's own causal history, never of global
//! submission interleaving. Simultaneous transfer completions resolve
//! lowest-`(wave, lane, id)`-first. No wall clock or randomness enters
//! the engine. The wave-major, then lane-major canonical order is what
//! lets the sharded executor (DESIGN §12) reproduce a whole run's event
//! order from per-shard simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};

use harmony_topology::{ChannelId, Topology};

pub use stats::{NetCounters, SimStats};

/// Virtual time in seconds.
pub type SimTime = f64;

/// Identifier of an in-flight transfer.
pub type TransferId = u64;

/// A completion delivered to the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completion {
    /// A compute kernel finished on `gpu`.
    Compute {
        /// GPU index.
        gpu: usize,
        /// Driver-supplied tag.
        tag: u64,
    },
    /// A transfer finished.
    Transfer {
        /// Transfer id returned by [`Simulator::start_transfer`].
        id: TransferId,
        /// Driver-supplied tag.
        tag: u64,
    },
    /// A timer fired.
    Timer {
        /// Driver-supplied tag.
        tag: u64,
    },
}

/// Simulator errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Referenced GPU does not exist.
    UnknownGpu(usize),
    /// Referenced channel does not exist.
    UnknownChannel(ChannelId),
    /// Negative or non-finite duration/byte count.
    InvalidParameter(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownGpu(g) => write!(f, "unknown gpu {g}"),
            SimError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            SimError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    ComputeDone { gpu: usize, tag: u64 },
    NetworkCheck { generation: u64 },
    Timer { tag: u64 },
}

impl EventKind {
    /// Canonical within-(time, lane) rank: timers fire first (fault
    /// injection precedes the work it perturbs, matching the old
    /// seq-order behaviour where fault timers carry the lowest seqs),
    /// then compute completions, then network deliveries (a kernel's
    /// completion is typically submitted before the network check that
    /// races it, so this also matches the common old order).
    fn rank(self) -> u8 {
        match self {
            EventKind::Timer { .. } => 0,
            EventKind::ComputeDone { .. } => 1,
            EventKind::NetworkCheck { .. } => 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: SimTime,
    /// Intra-instant causality wave (see [`Event::cmp`]): 0 for events
    /// scheduled from an earlier instant, `w + 1` for events spawned at
    /// the current instant while a wave-`w` event was being processed.
    /// Waves make the same-instant order *spawn-phased*: everything
    /// already due when the instant opens fires (lane-major) before
    /// anything the instant's own handlers create.
    wave: u32,
    /// Canonical ordering lane (see [`Event::cmp`]): the submitting
    /// driver's logical lane (GPU index for compute and lane-attributed
    /// transfers/timers; [`CONTROL_LANE`] for cross-lane control).
    lane: u32,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time first; same-instant events order by
        // (wave, lane, kind rank, seq). The wave/lane keys make the
        // same-instant order *canonical* — spawn-phase-major, then a
        // function of each lane's own history, never of global
        // submission interleaving — which is what lets a sharded run
        // (DESIGN §12) reproduce the whole run's event order from
        // per-shard simulations. `total_cmp` keeps the heap a total
        // order even for adversarial times; non-finite times are
        // rejected at every submission site so none can enter.
        other
            .time
            .total_cmp(&self.time)
            .then(other.wave.cmp(&self.wave))
            .then(other.lane.cmp(&self.lane))
            .then(other.kind.rank().cmp(&self.kind.rank()))
            .then(other.seq.cmp(&self.seq))
    }
}

/// Heap lane for events that belong to no single lane (used for
/// cross-lane control timers): sorts after every real lane at the same
/// instant.
pub const CONTROL_LANE: u32 = u32::MAX;

/// A flight member awaiting departure: `(departure threshold bits, id,
/// tag, lane)`. The threshold is a non-negative finite f64 whose raw
/// bit pattern preserves numeric order, so the derived lexicographic
/// `Ord` is exactly "earliest departure first, lowest id first" — ids
/// are unique, so `tag` and `lane` never decide. The lane rides along
/// for the cross-flight delivery order (see
/// [`Simulator::pick_candidate`]).
type Member = (u64, TransferId, u64, u32);

/// A route class: every in-flight transfer with this exact channel route.
/// All members share one fair-share rate at every instant, so byte
/// progress is accounted once per flight, not once per transfer.
#[derive(Debug)]
struct Flight {
    route: Vec<ChannelId>,
    /// Bytes drained per member as of `touch` (reset whenever the flight
    /// restarts from empty, bounding floating-point cancellation).
    drained: f64,
    /// Common bottleneck fair-share rate (bytes/sec) since `touch`.
    rate: f64,
    /// Virtual time of the last materialization.
    touch: SimTime,
    /// Cached predicted time of the earliest member departure (`+inf`
    /// when empty). Refreshed whenever the rate or the head changes.
    pred: SimTime,
    /// Wave at which a *due* prediction fires: 0 when `pred` lies in the
    /// future (it opens its own instant), the spawning wave + 1 when a
    /// refresh pinned `pred` to the current instant (the head became due
    /// mid-instant and must not outrun completions already due).
    pred_wave: u32,
    /// Members ordered by `(depart, id)`; departures are immutable, so
    /// entries are never invalidated or reordered.
    queue: BinaryHeap<Reverse<Member>>,
}

impl Flight {
    /// Credits byte progress under the current rate up to `now`.
    fn materialize(&mut self, now: SimTime) {
        let dt = now - self.touch;
        if dt > 0.0 {
            self.drained += self.rate * dt;
        }
        self.touch = now;
    }

    /// Refreshes the cached prediction. Must be called at `touch == now`
    /// (immediately after a materialization or an insert/removal).
    /// `due_wave` is the wave a due-right-now prediction belongs to
    /// (the caller's spawn wave); future predictions reset to wave 0.
    fn refresh_pred(&mut self, now: SimTime, due_wave: u32) {
        self.pred = match self.queue.peek() {
            None => f64::INFINITY,
            Some(&Reverse((bits, _, _, _))) => {
                let rem = f64::from_bits(bits) - self.drained;
                // A transfer carries whole bytes, so a sub-byte remainder
                // is floating-point residue of an already-finished
                // transfer: pin its departure to `now` so it completes
                // immediately and releases its bandwidth share.
                if rem <= RESIDUE_BYTES {
                    now
                } else if self.rate > 0.0 && self.rate.is_finite() {
                    now + rem / self.rate
                } else {
                    f64::INFINITY
                }
            }
        };
        self.pred_wave = if self.pred <= now { due_wave } else { 0 };
    }
}

// Sub-byte drain remainders are fp residue, not real payload.
const RESIDUE_BYTES: f64 = 0.5;

/// Bottleneck fair share over `route`: `min_c (bw_c / active_c)`.
fn derive_rate(channel_bw: &[f64], active: &[u32], route: &[ChannelId]) -> f64 {
    let mut rate = f64::INFINITY;
    for &c in route {
        rate = rate.min(channel_bw[c] / active[c].max(1) as f64);
    }
    rate
}

#[derive(Debug, Default)]
struct GpuStream {
    busy: bool,
    queue: VecDeque<(f64, u64)>, // (duration, tag)
}

/// What the network check delivers next: the due completion with the
/// lowest `(wave, lane, id)`, which is either a pending immediate (by
/// its map key) or the head of a due flight (by index).
#[derive(Debug, Clone, Copy)]
enum Candidate {
    Immediate((u32, u32, TransferId)),
    Flight(usize),
}

/// The discrete-event engine. See module docs.
#[derive(Debug)]
pub struct Simulator {
    /// `dense_reference` mode: every network event re-derives every
    /// occupied flight (full rescan, the previous engine's structure)
    /// instead of consulting the channel→flight index. Same arithmetic,
    /// same traces — the differential oracle.
    dense: bool,
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Event>,
    streams: Vec<GpuStream>,
    channel_bw: Vec<f64>,
    /// Per-channel count of in-flight routed transfers: the fair-share
    /// denominator, maintained incrementally.
    active: Vec<u32>,
    /// Route → flight index.
    class_of: HashMap<Vec<ChannelId>, usize>,
    flights: Vec<Flight>,
    /// Channel → flights whose route crosses it: the affected-set index.
    chan_flights: Vec<Vec<usize>>,
    /// Epoch marks for O(affected) flight-set dedup without sorting.
    flight_epoch: Vec<u32>,
    epoch: u32,
    /// Scratch buffers reused across events to avoid per-event allocation.
    affected_scratch: Vec<usize>,
    route_scratch: Vec<ChannelId>,
    /// Number of in-flight transfers with a non-empty route.
    routed: usize,
    /// Tags of pending zero-byte/empty-route transfers, keyed by
    /// `(wave, lane, id)` — the wave is the spawn wave at insertion.
    /// They are delivered through the network-check path: at any
    /// instant, all due completions — immediate or routed — are handed
    /// out in ascending `(wave, lane, id)`. That total order depends
    /// only on spawn phase and each lane's own issue order, never on
    /// event-heap sequence numbers or cross-lane interleaving, which is
    /// what lets a sharded run (DESIGN §12) reproduce the whole run's
    /// span order from per-shard simulations.
    immediates: BTreeMap<(u32, u32, TransferId), u64>,
    next_transfer_id: TransferId,
    net_generation: u64,
    /// Wave of the event currently being processed (the last pop);
    /// pushes at the same instant join wave `cur_wave + 1`.
    cur_wave: u32,
    /// Whether any event has been popped yet: pre-run submissions at
    /// `t == 0` are wave 0, not spawns of a phantom instant.
    popped: bool,
    /// Per-channel busy-accrual watermark: the last time each channel's
    /// own activity (start/finish/cancel/bandwidth change) was accounted.
    last_busy_update: Vec<SimTime>,
    stats: SimStats,
    counters: NetCounters,
}

impl Simulator {
    /// Creates a simulator over a topology's GPUs and channels.
    pub fn new(topology: &Topology) -> Self {
        Self::with_mode(topology, false)
    }

    /// Creates a simulator in `dense_reference` mode: the previous
    /// engine's full-rescan structure (every network event re-derives
    /// every occupied flight) with identical per-flight arithmetic, used
    /// as the differential oracle against the indexed fast path.
    #[cfg(any(test, feature = "dense_reference"))]
    pub fn new_dense_reference(topology: &Topology) -> Self {
        Self::with_mode(topology, true)
    }

    fn with_mode(topology: &Topology, dense: bool) -> Self {
        Simulator {
            dense,
            now: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            streams: (0..topology.num_gpus())
                .map(|_| GpuStream::default())
                .collect(),
            channel_bw: topology.channels().iter().map(|c| c.bandwidth).collect(),
            active: vec![0; topology.channels().len()],
            class_of: HashMap::new(),
            flights: Vec::new(),
            chan_flights: vec![Vec::new(); topology.channels().len()],
            flight_epoch: Vec::new(),
            epoch: 0,
            affected_scratch: Vec::new(),
            route_scratch: Vec::new(),
            routed: 0,
            immediates: BTreeMap::new(),
            next_transfer_id: 0,
            net_generation: 0,
            cur_wave: 0,
            popped: false,
            last_busy_update: vec![0.0; topology.channels().len()],
            stats: SimStats::new(topology.num_gpus(), topology.channels().len()),
            counters: NetCounters::default(),
        }
    }

    /// Rebinds a recycled simulator to `topology`, keeping allocated
    /// capacity (event heap, flight list, scratch buffers, per-channel
    /// vectors) while discarding all state. Equivalent to
    /// [`Simulator::new`] (or `new_dense_reference` — the engine mode is
    /// retained) for every observable output: virtual time, sequence
    /// numbers, waves, transfer ids, flight classes, stats, and counters
    /// all restart from the constructor's values, so a reset simulator's
    /// event stream is byte-identical to a fresh one's (the pooled-run
    /// contract, DESIGN §14).
    pub fn reset(&mut self, topology: &Topology) {
        let channels = topology.channels().len();
        self.now = 0.0;
        self.seq = 0;
        self.events.clear();
        self.streams.clear();
        self.streams
            .resize_with(topology.num_gpus(), GpuStream::default);
        self.channel_bw.clear();
        self.channel_bw
            .extend(topology.channels().iter().map(|c| c.bandwidth));
        self.active.clear();
        self.active.resize(channels, 0);
        // Lookup-only map (never iterated), so clearing cannot perturb
        // any observable order.
        self.class_of.clear();
        self.flights.clear();
        // Keep the per-channel flight-index vectors' capacity where the
        // channel count is unchanged (the common sweep shape).
        for v in &mut self.chan_flights {
            v.clear();
        }
        self.chan_flights.resize_with(channels, Vec::new);
        self.flight_epoch.clear();
        self.epoch = 0;
        self.affected_scratch.clear();
        self.route_scratch.clear();
        self.routed = 0;
        self.immediates.clear();
        self.next_transfer_id = 0;
        self.net_generation = 0;
        self.cur_wave = 0;
        self.popped = false;
        self.last_busy_update.clear();
        self.last_busy_update.resize(channels, 0.0);
        self.stats = SimStats::new(topology.num_gpus(), channels);
        self.counters = NetCounters::default();
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Intra-instant wave of the event behind the completion most
    /// recently returned by [`Self::next`] (0 before any pop). Drivers
    /// stamp trace spans with it: together with the span's end time and
    /// lane it reconstructs the global emission order from per-shard
    /// runs (see the trace crate's merge module).
    pub fn current_wave(&self) -> u32 {
        self.cur_wave
    }

    /// Number of bandwidth channels.
    pub fn num_channels(&self) -> usize {
        self.channel_bw.len()
    }

    /// Current bandwidth of a channel (bytes/sec).
    pub fn channel_bandwidth(&self, channel: ChannelId) -> Result<f64, SimError> {
        self.channel_bw
            .get(channel)
            .copied()
            .ok_or(SimError::UnknownChannel(channel))
    }

    /// Changes a channel's bandwidth at the current virtual time (fault
    /// injection: link degradation or recovery). In-flight transfers keep
    /// the bytes they have already moved; rates and completion
    /// predictions are recomputed for the flights routed over this
    /// channel only.
    pub fn set_channel_bandwidth(
        &mut self,
        channel: ChannelId,
        bandwidth: f64,
    ) -> Result<(), SimError> {
        if channel >= self.channel_bw.len() {
            return Err(SimError::UnknownChannel(channel));
        }
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(SimError::InvalidParameter(format!("bandwidth {bandwidth}")));
        }
        self.accrue_busy_time(&[channel]);
        self.channel_bw[channel] = bandwidth;
        let affected = self.collect_affected(&[channel]);
        self.recompute_flights(&affected);
        self.affected_scratch = affected;
        self.schedule_network_check();
        Ok(())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Diagnostic counters of the network core (per-flight rate
    /// derivations, queue traffic). These expose the O(affected)
    /// contract: an event on one route must not touch flights on
    /// disjoint routes, however many transfers they carry.
    pub fn net_counters(&self) -> &NetCounters {
        &self.counters
    }

    /// Wave that an event spawned at `time` belongs to: `cur_wave + 1`
    /// when spawned at the instant being processed, 0 when it opens an
    /// instant of its own.
    fn spawn_wave(&self, time: SimTime) -> u32 {
        if self.popped && time == self.now {
            self.cur_wave + 1
        } else {
            0
        }
    }

    fn push(&mut self, time: SimTime, lane: u32, kind: EventKind) {
        let wave = self.spawn_wave(time);
        self.push_at_wave(time, wave, lane, kind);
    }

    fn push_at_wave(&mut self, time: SimTime, wave: u32, lane: u32, kind: EventKind) {
        debug_assert!(time.is_finite(), "non-finite event time");
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event {
            time,
            wave,
            lane,
            seq,
            kind,
        });
    }

    /// Submits a compute kernel of `secs` duration to `gpu`'s FIFO stream.
    pub fn submit_compute(&mut self, gpu: usize, secs: f64, tag: u64) -> Result<(), SimError> {
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(SimError::InvalidParameter(format!("duration {secs}")));
        }
        let stream = self.streams.get_mut(gpu).ok_or(SimError::UnknownGpu(gpu))?;
        if stream.busy {
            stream.queue.push_back((secs, tag));
        } else {
            stream.busy = true;
            self.stats.gpu_busy_secs[gpu] += secs;
            let t = self.now + secs;
            self.push(t, gpu as u32, EventKind::ComputeDone { gpu, tag });
        }
        Ok(())
    }

    // Reserved ceiling for user timer tags (immediate transfers formerly
    // rode timer events above this bias; they now deliver through the
    // network-check path so same-instant completions stay id-ordered).
    const IMMEDIATE_BIAS: u64 = 1 << 62;

    /// Starts a transfer of `bytes` along `route` (ordered channels),
    /// attributed to ordering lane `lane` (the driver's logical lane —
    /// same-instant completions deliver in ascending `(wave, lane, id)`).
    /// Returns its id; completion carries `tag`. A zero-byte transfer or an
    /// empty route (same-device move) completes at the current time.
    pub fn start_transfer(
        &mut self,
        route: &[ChannelId],
        bytes: u64,
        tag: u64,
        lane: u32,
    ) -> Result<TransferId, SimError> {
        for &c in route {
            if c >= self.channel_bw.len() {
                return Err(SimError::UnknownChannel(c));
            }
        }
        let id = self.next_transfer_id;
        self.next_transfer_id += 1;
        if bytes == 0 || route.is_empty() {
            // Queue for the network-check path: it completes "now", but
            // in ascending-(wave, lane, id) order with every other due
            // completion.
            let wave = self.spawn_wave(self.now);
            self.immediates.insert((wave, lane, id), tag);
            self.schedule_network_check();
            return Ok(id);
        }
        self.accrue_busy_time(route);
        for &c in route {
            self.stats.channel_bytes[c] += bytes;
            self.active[c] += 1;
        }
        self.routed += 1;
        let k = self.flight_for(route);
        // Every occupied flight crossing one of these channels saw its
        // denominator grow, strictly lowering its share — including `k`
        // itself, whose materialization leaves it fresh for the insert.
        let affected = self.collect_affected(route);
        self.recompute_flights(&affected);
        self.affected_scratch = affected;
        let f = &mut self.flights[k];
        if f.queue.is_empty() {
            // Fresh drain epoch: nothing shares this route right now, so
            // the cumulative drain restarts at zero (bounds cancellation).
            f.drained = 0.0;
            f.touch = self.now;
            f.rate = derive_rate(&self.channel_bw, &self.active, &f.route);
            self.counters.rate_recomputes += 1;
        }
        debug_assert_eq!(f.touch, self.now, "flight must be fresh at insert");
        let depart = bytes as f64 + f.drained;
        debug_assert!(depart >= 0.0 && depart.is_finite());
        self.counters.queue_pushes += 1;
        f.queue.push(Reverse((depart.to_bits(), id, tag, lane)));
        let due_wave = self.spawn_wave(self.now);
        self.flights[k].refresh_pred(self.now, due_wave);
        self.schedule_network_check();
        Ok(id)
    }

    /// Pre-registers (or looks up) the flight class for `route`, so
    /// repeat senders can skip per-transfer route validation and the
    /// route-key hash via [`Simulator::start_transfer_on_class`]. The
    /// class is created exactly as the first non-empty
    /// [`Simulator::start_transfer`] over `route` would create it, so
    /// interleaving the two entry points never perturbs flight order.
    /// Empty routes have no flight (they complete immediately) and are
    /// rejected.
    pub fn register_route_class(&mut self, route: &[ChannelId]) -> Result<usize, SimError> {
        for &c in route {
            if c >= self.channel_bw.len() {
                return Err(SimError::UnknownChannel(c));
            }
        }
        if route.is_empty() {
            return Err(SimError::InvalidParameter(
                "empty route has no flight class".to_string(),
            ));
        }
        Ok(self.flight_for(route))
    }

    /// Starts a transfer of `bytes > 0` on a class previously returned by
    /// [`Simulator::register_route_class`]. Behaviour (ids, event order,
    /// accounting) is bit-identical to [`Simulator::start_transfer`] over
    /// the class's route; only the per-call route validation and hash
    /// lookup are skipped.
    pub fn start_transfer_on_class(
        &mut self,
        class: usize,
        bytes: u64,
        tag: u64,
        lane: u32,
    ) -> Result<TransferId, SimError> {
        if class >= self.flights.len() {
            return Err(SimError::InvalidParameter(format!(
                "unknown route class {class}"
            )));
        }
        if bytes == 0 {
            return Err(SimError::InvalidParameter(
                "zero-byte transfers take the immediate path of start_transfer".to_string(),
            ));
        }
        let id = self.next_transfer_id;
        self.next_transfer_id += 1;
        let mut route = std::mem::take(&mut self.route_scratch);
        route.clear();
        route.extend_from_slice(&self.flights[class].route);
        self.accrue_busy_time(&route);
        for &c in &route {
            self.stats.channel_bytes[c] += bytes;
            self.active[c] += 1;
        }
        self.routed += 1;
        let affected = self.collect_affected(&route);
        self.recompute_flights(&affected);
        self.affected_scratch = affected;
        self.route_scratch = route;
        let f = &mut self.flights[class];
        if f.queue.is_empty() {
            f.drained = 0.0;
            f.touch = self.now;
            f.rate = derive_rate(&self.channel_bw, &self.active, &f.route);
            self.counters.rate_recomputes += 1;
        }
        debug_assert_eq!(f.touch, self.now, "flight must be fresh at insert");
        let depart = bytes as f64 + f.drained;
        debug_assert!(depart >= 0.0 && depart.is_finite());
        self.counters.queue_pushes += 1;
        f.queue.push(Reverse((depart.to_bits(), id, tag, lane)));
        let due_wave = self.spawn_wave(self.now);
        self.flights[class].refresh_pred(self.now, due_wave);
        self.schedule_network_check();
        Ok(id)
    }

    /// Schedules a timer at absolute time `at` (clamped to now) on
    /// ordering lane `lane` ([`CONTROL_LANE`] sorts after every real
    /// lane at the same instant). `tag` must be below `2^62`.
    pub fn set_timer(&mut self, at: SimTime, tag: u64, lane: u32) -> Result<(), SimError> {
        if !at.is_finite() {
            return Err(SimError::InvalidParameter(format!("time {at}")));
        }
        if tag >= Self::IMMEDIATE_BIAS {
            return Err(SimError::InvalidParameter(format!(
                "timer tag {tag} too large"
            )));
        }
        let t = at.max(self.now);
        self.push(t, lane, EventKind::Timer { tag });
        Ok(())
    }

    /// Like [`Self::set_timer`], but pins the timer's intra-instant wave
    /// instead of deriving it from the spawning context. Sharded-run
    /// control timers use this to re-enter the wave the *whole* run
    /// would act at (the rendezvous carries `(time, wave)`), so the
    /// events they spawn get whole-run wave labels.
    pub fn set_timer_at_wave(
        &mut self,
        at: SimTime,
        tag: u64,
        lane: u32,
        wave: u32,
    ) -> Result<(), SimError> {
        if !at.is_finite() {
            return Err(SimError::InvalidParameter(format!("time {at}")));
        }
        if tag >= Self::IMMEDIATE_BIAS {
            return Err(SimError::InvalidParameter(format!(
                "timer tag {tag} too large"
            )));
        }
        let t = at.max(self.now);
        self.push_at_wave(t, wave, lane, EventKind::Timer { tag });
        Ok(())
    }

    /// Cancels an in-flight transfer at the current virtual time (the
    /// resilience layer's reroute path: a fault degraded a link and the
    /// driver re-issues the payload over another route). Returns
    /// `Ok(true)` when the transfer was found and removed, `Ok(false)`
    /// when it already completed (or never existed) — by the time a
    /// fault lands, its victim may legitimately have drained.
    ///
    /// The cancelled transfer's bytes stay in [`SimStats::channel_bytes`]:
    /// traffic is accounted at issue time (the bandwidth-conservation
    /// oracle tallies the same way), and the aborted attempt did occupy
    /// the links. Its bandwidth share is released immediately: sibling
    /// flights re-derive their rates exactly as on a completion.
    ///
    /// Cost is O(in-flight members) for the scan plus a heap rebuild of
    /// the victim's flight — a deliberate trade: cancellation happens
    /// only on the rare fault path, so the hot path carries no tombstone
    /// state for it.
    pub fn cancel_transfer(&mut self, id: TransferId) -> Result<bool, SimError> {
        if let Some(&key) = self.immediates.keys().find(|&&(_, _, i)| i == id) {
            // The pending network check simply finds one fewer candidate;
            // if none remain it reschedules itself away.
            self.immediates.remove(&key);
            return Ok(true);
        }
        let Some(k) = self
            .flights
            .iter()
            .position(|f| f.queue.iter().any(|&Reverse((_, m, _, _))| m == id))
        else {
            return Ok(false);
        };
        let mut route = std::mem::take(&mut self.route_scratch);
        route.clear();
        route.extend_from_slice(&self.flights[k].route);
        self.accrue_busy_time(&route);
        // Credit drain up to now under the old rate, then rebuild the
        // member heap without the victim. Departure thresholds are
        // immutable, so the survivors' order is untouched.
        self.flights[k].materialize(self.now);
        let members = std::mem::take(&mut self.flights[k].queue);
        self.flights[k].queue = members
            .into_iter()
            .filter(|&Reverse((_, m, _, _))| m != id)
            .collect();
        for &c in &route {
            self.active[c] -= 1;
        }
        self.routed -= 1;
        let affected = self.collect_affected(&route);
        self.recompute_flights(&affected);
        self.affected_scratch = affected;
        self.route_scratch = route;
        // The victim may have been the flight's head while the rate (and
        // hence `recompute_flights`' no-op check) is unchanged — e.g. the
        // flight's other channels still bottleneck it — so the cached
        // prediction must be refreshed unconditionally.
        let due_wave = self.spawn_wave(self.now);
        self.flights[k].refresh_pred(self.now, due_wave);
        self.schedule_network_check();
        Ok(true)
    }

    /// True if no events remain (all work delivered).
    pub fn idle(&self) -> bool {
        self.events.is_empty()
    }

    /// Flight index for `route`, created on first use. Flights persist —
    /// there are at most O(endpoint pairs) distinct routes — and an empty
    /// flight costs one skip per rescan in dense mode, nothing in fast
    /// mode.
    fn flight_for(&mut self, route: &[ChannelId]) -> usize {
        if let Some(&k) = self.class_of.get(route) {
            return k;
        }
        let k = self.flights.len();
        self.class_of.insert(route.to_vec(), k);
        self.flights.push(Flight {
            route: route.to_vec(),
            drained: 0.0,
            rate: 0.0,
            touch: self.now,
            pred: f64::INFINITY,
            pred_wave: 0,
            queue: BinaryHeap::new(),
        });
        self.flight_epoch.push(0);
        for &c in route {
            self.chan_flights[c].push(k);
        }
        self.counters.route_classes = self.flights.len() as u64;
        k
    }

    /// Advances busy-time accounting for `channels` to `now`. A channel
    /// is busy while any transfer uses it — exactly when its active count
    /// is nonzero. Accrual happens only at a channel's *own* transitions
    /// (a transfer starting, finishing or cancelling on it, or a
    /// bandwidth change), so each channel's floating-point accumulation
    /// order is a function of its own event times alone — activity on
    /// disjoint channels cannot re-partition the sum. That independence
    /// is what lets the sharded executor (DESIGN §12) reproduce the
    /// unsharded run's busy figures bit-for-bit from per-shard
    /// simulators. O(route length) per event.
    fn accrue_busy_time(&mut self, channels: &[ChannelId]) {
        for &c in channels {
            let dt = self.now - self.last_busy_update[c];
            if dt > 0.0 && self.active[c] > 0 {
                self.stats.channel_busy_secs[c] += dt;
            }
            self.last_busy_update[c] = self.now;
        }
    }

    /// The flights whose fair-share rate may have changed after an event
    /// on `channels`: the union of those channels' flight lists (fast
    /// mode, deduplicated by epoch marks), or every occupied flight
    /// (dense reference — the full rescan). The returned buffer is
    /// `affected_scratch`; callers put it back after
    /// [`Self::recompute_flights`].
    fn collect_affected(&mut self, channels: &[ChannelId]) -> Vec<usize> {
        let mut v = std::mem::take(&mut self.affected_scratch);
        v.clear();
        if self.dense {
            for (k, f) in self.flights.iter().enumerate() {
                if !f.queue.is_empty() {
                    v.push(k);
                }
            }
        } else {
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == 0 {
                self.flight_epoch.fill(0);
                self.epoch = 1;
            }
            for &c in channels {
                for &k in &self.chan_flights[c] {
                    if self.flight_epoch[k] != self.epoch && !self.flights[k].queue.is_empty() {
                        self.flight_epoch[k] = self.epoch;
                        v.push(k);
                    }
                }
            }
        }
        v
    }

    /// Re-derives the bottleneck fair-share rate of each flight. A flight
    /// whose rate value is unchanged is left untouched — its lazy drain
    /// tuple and cached prediction stay valid. (This is what makes the
    /// indexed and dense modes trace-identical: an unaffected flight's
    /// inputs are unchanged, so the dense rescan re-derives the same bits
    /// and also no-ops.) On a change the flight is materialized — drain
    /// credited under the old rate — then the new rate and prediction are
    /// installed.
    fn recompute_flights(&mut self, affected: &[usize]) {
        let due_wave = self.spawn_wave(self.now);
        for &k in affected {
            self.counters.rate_recomputes += 1;
            let f = &mut self.flights[k];
            let rate = derive_rate(&self.channel_bw, &self.active, &f.route);
            if rate == f.rate {
                continue;
            }
            f.materialize(self.now);
            f.rate = rate;
            f.refresh_pred(self.now, due_wave);
        }
    }

    /// Schedules the next network check at the earliest flight prediction
    /// (clamped to now), stamped with a fresh generation so checks
    /// scheduled before this recomputation are ignored. The event's heap
    /// lane mirrors the candidate [`Self::pick_candidate`] will deliver
    /// at that time — any later state change reschedules with a fresh
    /// generation, so the stamp cannot go stale. O(flights) in both
    /// modes — the flight count is bounded by distinct routes, not by
    /// in-flight transfers.
    fn schedule_network_check(&mut self) {
        self.net_generation += 1;
        let generation = self.net_generation;
        if self.routed == 0 && self.immediates.is_empty() {
            return;
        }
        // A pending immediate is due right away; routed flights at their
        // predicted head departure.
        let mut min_pred = if self.immediates.is_empty() {
            f64::INFINITY
        } else {
            self.now
        };
        for f in &self.flights {
            min_pred = min_pred.min(f.pred);
        }
        if min_pred.is_finite() {
            let at = min_pred.max(self.now);
            let mut best: Option<(u32, u32, TransferId)> = self.immediates.keys().next().copied();
            for f in &self.flights {
                if f.pred <= at {
                    if let Some(&Reverse((_, id, _, lane))) = f.queue.peek() {
                        let key = (f.pred_wave, lane, id);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
            }
            // The check rides the wave and lane of the candidate it will
            // deliver, so delivery never outruns (or lags) its phase.
            let (wave, lane) = best.map_or((0, 0), |(w, l, _)| (w, l));
            self.push_at_wave(at, wave, lane, EventKind::NetworkCheck { generation });
        }
    }

    /// The completion due at the current time with the lowest
    /// `(wave, lane, id)`, if any: the head of a due flight
    /// (`pred <= now`) or a pending immediate (always due). One
    /// completion per check event keeps ordering deterministic;
    /// remaining due completions are delivered by the rescheduled check
    /// at the same virtual time. Ascending-(wave, lane, id) delivery
    /// makes the same-instant order spawn-phase-major, then lane-major,
    /// with each lane's sub-order a function of its own issue order
    /// alone — the property the sharded merge (DESIGN §12) relies on.
    fn pick_candidate(&self) -> Option<Candidate> {
        let mut best: Option<((u32, u32, TransferId), usize)> = None;
        for (k, f) in self.flights.iter().enumerate() {
            if f.pred <= self.now {
                if let Some(&Reverse((_, id, _, lane))) = f.queue.peek() {
                    let key = (f.pred_wave, lane, id);
                    if best.is_none_or(|(b, _)| key < b) {
                        best = Some((key, k));
                    }
                }
            }
        }
        match (self.immediates.keys().next().copied(), best) {
            (Some(i), Some((b, _))) if i < b => Some(Candidate::Immediate(i)),
            (_, Some((_, k))) => Some(Candidate::Flight(k)),
            (Some(i), None) => Some(Candidate::Immediate(i)),
            (None, None) => None,
        }
    }

    /// Advances virtual time to the next completion and returns it, or
    /// `None` when no work remains.
    ///
    /// Named like — but deliberately not implementing — `Iterator::next`:
    /// drivers interleave `next()` with new submissions, which an
    /// `Iterator` cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, Completion)> {
        while let Some(ev) = self.events.pop() {
            debug_assert!(ev.time >= self.now - 1e-12, "time went backwards");
            match ev.kind {
                EventKind::ComputeDone { gpu, tag } => {
                    self.now = self.now.max(ev.time);
                    self.cur_wave = ev.wave;
                    self.popped = true;
                    // Start next queued kernel, if any.
                    let next = self.streams[gpu].queue.pop_front();
                    match next {
                        Some((secs, next_tag)) => {
                            self.stats.gpu_busy_secs[gpu] += secs;
                            let t = self.now + secs;
                            self.push(t, gpu as u32, EventKind::ComputeDone { gpu, tag: next_tag });
                        }
                        None => self.streams[gpu].busy = false,
                    }
                    return Some((self.now, Completion::Compute { gpu, tag }));
                }
                EventKind::Timer { tag } => {
                    self.now = self.now.max(ev.time);
                    self.cur_wave = ev.wave;
                    self.popped = true;
                    return Some((self.now, Completion::Timer { tag }));
                }
                EventKind::NetworkCheck { generation } => {
                    if generation != self.net_generation {
                        continue; // stale prediction
                    }
                    self.counters.network_checks += 1;
                    self.now = self.now.max(ev.time);
                    self.popped = true;
                    // The event's own wave only ordered the check in the
                    // heap; the wave the run observes is the *delivered
                    // candidate's* — the check may deliver a different
                    // completion than the one it was scheduled for.
                    match self.pick_candidate() {
                        Some(Candidate::Immediate(key)) => {
                            self.cur_wave = key.0;
                            let tag = self
                                .immediates
                                .remove(&key)
                                .expect("pick_candidate returned a pending immediate");
                            // No channel state to release (never routed);
                            // later due completions ride the reschedule.
                            self.schedule_network_check();
                            let (_, _, id) = key;
                            return Some((self.now, Completion::Transfer { id, tag }));
                        }
                        Some(Candidate::Flight(k)) => {
                            self.cur_wave = self.flights[k].pred_wave;
                            let f = &mut self.flights[k];
                            f.materialize(self.now);
                            let Reverse((_, id, tag, _)) = f.queue.pop().expect(
                                "invariant: pick_candidate only returns flights with a \
                                 finite pred, and pred is finite only while the \
                                 flight's transfer queue is non-empty",
                            );
                            if f.queue.is_empty() {
                                f.pred = f64::INFINITY;
                            }
                            // The head's share frees up on every channel of
                            // the route: sibling flights (including this
                            // one, if still occupied) re-derive their rates.
                            let mut route = std::mem::take(&mut self.route_scratch);
                            route.clear();
                            route.extend_from_slice(&self.flights[k].route);
                            self.accrue_busy_time(&route);
                            for &c in &route {
                                self.active[c] -= 1;
                            }
                            self.routed -= 1;
                            let affected = self.collect_affected(&route);
                            self.recompute_flights(&affected);
                            self.affected_scratch = affected;
                            self.route_scratch = route;
                            self.schedule_network_check();
                            return Some((self.now, Completion::Transfer { id, tag }));
                        }
                        None => {
                            // Defensive: a valid-generation check implies a
                            // due flight (its scheduled prediction has
                            // arrived), but reschedule rather than spin.
                            self.schedule_network_check();
                            continue;
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests;
