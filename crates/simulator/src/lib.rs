//! # harmony-simulator
//!
//! A deterministic discrete-event simulator of a multi-GPU server, the
//! substrate on which Harmony's schedules are evaluated (substituting for
//! the paper's physical 4×1080Ti testbed — see DESIGN.md §2).
//!
//! The engine models two resource classes:
//!
//! * **Compute streams** — one FIFO stream per GPU: a submitted kernel
//!   occupies its GPU exclusively for its duration (the CUDA stream model
//!   per device that frameworks use).
//! * **Bandwidth channels** — directed links from `harmony-topology`.
//!   Concurrent transfers sharing a channel receive a fair share of its
//!   capacity; a transfer's instantaneous rate is its *bottleneck share*
//!   `min_c (bw_c / active_c)` over the channels on its route (flow-level
//!   network simulation). This is what exposes the paper's
//!   oversubscribed-host-link collapse: four swapping GPUs each get a
//!   quarter of the uplink.
//!
//! ## Near-O(affected) event processing: route-class flights
//!
//! Two transfers with the same route always see the same bottleneck
//! share, so their rates are equal at every instant. The engine therefore
//! aggregates in-flight transfers into **flights** (route classes):
//!
//! * A per-channel **active count** is the fair-share denominator; a
//!   per-channel list of the flights crossing it is the index that turns
//!   an event on a route into its *affected flight set* — no walk over
//!   the whole in-flight population.
//! * Byte progress is **lazy and per flight**: a flight stores
//!   `(drained, rate, touch)` — cumulative bytes drained per member as of
//!   its last materialization — and is materialized only when its rate
//!   *value* changes. A member transfer stores a single immutable
//!   **departure threshold** `depart = bytes + drained(start)`: it
//!   completes exactly when the flight's drain reaches `depart`.
//! * Because departures never change after submission, each flight keeps
//!   its members in a plain min-heap ordered by `(depart, id)` with no
//!   invalidation: rate changes move predicted *times*, not departure
//!   *order*. Picking the next completion is a heap peek; the next
//!   network event is the minimum of the flights' cached predictions.
//!
//! Per-event cost is O(affected flights + log members + channels), versus
//! the previous engine's three full passes over every in-flight transfer
//! (progress advance, rate recompute, completion min-scan).
//!
//! A `dense_reference` mode (behind the `dense_reference` feature, and
//! always available to in-crate tests) ignores the channel→flight index
//! and re-derives **every** occupied flight's rate on every network event
//! — the full-rescan structure of the previous engine. Both modes share
//! the same per-flight arithmetic, and a flight whose re-derived rate is
//! bitwise unchanged is left untouched, so the rescan degenerates to a
//! no-op for unaffected flights and the two engines produce
//! **bit-identical traces**; the harness checks this differentially.
//!
//! The driver (a scheduler runtime) submits compute and transfers with
//! opaque `tag`s and repeatedly calls [`Simulator::next`] to advance
//! virtual time and receive completions — the structure of Harmony's
//! *online* task-and-swap scheduler.
//!
//! Determinism: ties in the event queue are broken by submission sequence
//! number, simultaneous transfer completions resolve lowest-id-first, and
//! no wall-clock or randomness enters the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap, VecDeque};

use harmony_topology::{ChannelId, Topology};

pub use stats::{NetCounters, SimStats};

/// Virtual time in seconds.
pub type SimTime = f64;

/// Identifier of an in-flight transfer.
pub type TransferId = u64;

/// A completion delivered to the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completion {
    /// A compute kernel finished on `gpu`.
    Compute {
        /// GPU index.
        gpu: usize,
        /// Driver-supplied tag.
        tag: u64,
    },
    /// A transfer finished.
    Transfer {
        /// Transfer id returned by [`Simulator::start_transfer`].
        id: TransferId,
        /// Driver-supplied tag.
        tag: u64,
    },
    /// A timer fired.
    Timer {
        /// Driver-supplied tag.
        tag: u64,
    },
}

/// Simulator errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Referenced GPU does not exist.
    UnknownGpu(usize),
    /// Referenced channel does not exist.
    UnknownChannel(ChannelId),
    /// Negative or non-finite duration/byte count.
    InvalidParameter(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownGpu(g) => write!(f, "unknown gpu {g}"),
            SimError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            SimError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    ComputeDone { gpu: usize, tag: u64 },
    NetworkCheck { generation: u64 },
    Timer { tag: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time first, then lower seq. `total_cmp` keeps
        // the heap a total order even for adversarial times; non-finite
        // times are rejected at every submission site so none can enter.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A flight member awaiting departure: `(departure threshold bits, id,
/// tag)`. The threshold is a non-negative finite f64 whose raw bit
/// pattern preserves numeric order, so the derived lexicographic `Ord`
/// is exactly "earliest departure first, lowest id first" — ids are
/// unique, so `tag` never decides.
type Member = (u64, TransferId, u64);

/// A route class: every in-flight transfer with this exact channel route.
/// All members share one fair-share rate at every instant, so byte
/// progress is accounted once per flight, not once per transfer.
#[derive(Debug)]
struct Flight {
    route: Vec<ChannelId>,
    /// Bytes drained per member as of `touch` (reset whenever the flight
    /// restarts from empty, bounding floating-point cancellation).
    drained: f64,
    /// Common bottleneck fair-share rate (bytes/sec) since `touch`.
    rate: f64,
    /// Virtual time of the last materialization.
    touch: SimTime,
    /// Cached predicted time of the earliest member departure (`+inf`
    /// when empty). Refreshed whenever the rate or the head changes.
    pred: SimTime,
    /// Members ordered by `(depart, id)`; departures are immutable, so
    /// entries are never invalidated or reordered.
    queue: BinaryHeap<Reverse<Member>>,
}

impl Flight {
    /// Credits byte progress under the current rate up to `now`.
    fn materialize(&mut self, now: SimTime) {
        let dt = now - self.touch;
        if dt > 0.0 {
            self.drained += self.rate * dt;
        }
        self.touch = now;
    }

    /// Refreshes the cached prediction. Must be called at `touch == now`
    /// (immediately after a materialization or an insert/removal).
    fn refresh_pred(&mut self, now: SimTime) {
        self.pred = match self.queue.peek() {
            None => f64::INFINITY,
            Some(&Reverse((bits, _, _))) => {
                let rem = f64::from_bits(bits) - self.drained;
                // A transfer carries whole bytes, so a sub-byte remainder
                // is floating-point residue of an already-finished
                // transfer: pin its departure to `now` so it completes
                // immediately and releases its bandwidth share.
                if rem <= RESIDUE_BYTES {
                    now
                } else if self.rate > 0.0 && self.rate.is_finite() {
                    now + rem / self.rate
                } else {
                    f64::INFINITY
                }
            }
        };
    }
}

// Sub-byte drain remainders are fp residue, not real payload.
const RESIDUE_BYTES: f64 = 0.5;

/// Bottleneck fair share over `route`: `min_c (bw_c / active_c)`.
fn derive_rate(channel_bw: &[f64], active: &[u32], route: &[ChannelId]) -> f64 {
    let mut rate = f64::INFINITY;
    for &c in route {
        rate = rate.min(channel_bw[c] / active[c].max(1) as f64);
    }
    rate
}

#[derive(Debug, Default)]
struct GpuStream {
    busy: bool,
    queue: VecDeque<(f64, u64)>, // (duration, tag)
}

/// The discrete-event engine. See module docs.
#[derive(Debug)]
pub struct Simulator {
    /// `dense_reference` mode: every network event re-derives every
    /// occupied flight (full rescan, the previous engine's structure)
    /// instead of consulting the channel→flight index. Same arithmetic,
    /// same traces — the differential oracle.
    dense: bool,
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Event>,
    streams: Vec<GpuStream>,
    channel_bw: Vec<f64>,
    /// Per-channel count of in-flight routed transfers: the fair-share
    /// denominator, maintained incrementally.
    active: Vec<u32>,
    /// Route → flight index.
    class_of: HashMap<Vec<ChannelId>, usize>,
    flights: Vec<Flight>,
    /// Channel → flights whose route crosses it: the affected-set index.
    chan_flights: Vec<Vec<usize>>,
    /// Epoch marks for O(affected) flight-set dedup without sorting.
    flight_epoch: Vec<u32>,
    epoch: u32,
    /// Scratch buffers reused across events to avoid per-event allocation.
    affected_scratch: Vec<usize>,
    route_scratch: Vec<ChannelId>,
    /// Number of in-flight transfers with a non-empty route.
    routed: usize,
    /// Tags of pending zero-byte/empty-route transfers, delivered through
    /// timer events at the current time.
    immediates: HashMap<TransferId, u64>,
    next_transfer_id: TransferId,
    net_generation: u64,
    last_net_update: SimTime,
    stats: SimStats,
    counters: NetCounters,
}

impl Simulator {
    /// Creates a simulator over a topology's GPUs and channels.
    pub fn new(topology: &Topology) -> Self {
        Self::with_mode(topology, false)
    }

    /// Creates a simulator in `dense_reference` mode: the previous
    /// engine's full-rescan structure (every network event re-derives
    /// every occupied flight) with identical per-flight arithmetic, used
    /// as the differential oracle against the indexed fast path.
    #[cfg(any(test, feature = "dense_reference"))]
    pub fn new_dense_reference(topology: &Topology) -> Self {
        Self::with_mode(topology, true)
    }

    fn with_mode(topology: &Topology, dense: bool) -> Self {
        Simulator {
            dense,
            now: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            streams: (0..topology.num_gpus())
                .map(|_| GpuStream::default())
                .collect(),
            channel_bw: topology.channels().iter().map(|c| c.bandwidth).collect(),
            active: vec![0; topology.channels().len()],
            class_of: HashMap::new(),
            flights: Vec::new(),
            chan_flights: vec![Vec::new(); topology.channels().len()],
            flight_epoch: Vec::new(),
            epoch: 0,
            affected_scratch: Vec::new(),
            route_scratch: Vec::new(),
            routed: 0,
            immediates: HashMap::new(),
            next_transfer_id: 0,
            net_generation: 0,
            last_net_update: 0.0,
            stats: SimStats::new(topology.num_gpus(), topology.channels().len()),
            counters: NetCounters::default(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of bandwidth channels.
    pub fn num_channels(&self) -> usize {
        self.channel_bw.len()
    }

    /// Current bandwidth of a channel (bytes/sec).
    pub fn channel_bandwidth(&self, channel: ChannelId) -> Result<f64, SimError> {
        self.channel_bw
            .get(channel)
            .copied()
            .ok_or(SimError::UnknownChannel(channel))
    }

    /// Changes a channel's bandwidth at the current virtual time (fault
    /// injection: link degradation or recovery). In-flight transfers keep
    /// the bytes they have already moved; rates and completion
    /// predictions are recomputed for the flights routed over this
    /// channel only.
    pub fn set_channel_bandwidth(
        &mut self,
        channel: ChannelId,
        bandwidth: f64,
    ) -> Result<(), SimError> {
        if channel >= self.channel_bw.len() {
            return Err(SimError::UnknownChannel(channel));
        }
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(SimError::InvalidParameter(format!("bandwidth {bandwidth}")));
        }
        self.advance_busy_time();
        self.channel_bw[channel] = bandwidth;
        let affected = self.collect_affected(&[channel]);
        self.recompute_flights(&affected);
        self.affected_scratch = affected;
        self.schedule_network_check();
        Ok(())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Diagnostic counters of the network core (per-flight rate
    /// derivations, queue traffic). These expose the O(affected)
    /// contract: an event on one route must not touch flights on
    /// disjoint routes, however many transfers they carry.
    pub fn net_counters(&self) -> &NetCounters {
        &self.counters
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time.is_finite(), "non-finite event time");
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event { time, seq, kind });
    }

    /// Submits a compute kernel of `secs` duration to `gpu`'s FIFO stream.
    pub fn submit_compute(&mut self, gpu: usize, secs: f64, tag: u64) -> Result<(), SimError> {
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(SimError::InvalidParameter(format!("duration {secs}")));
        }
        let stream = self.streams.get_mut(gpu).ok_or(SimError::UnknownGpu(gpu))?;
        if stream.busy {
            stream.queue.push_back((secs, tag));
        } else {
            stream.busy = true;
            self.stats.gpu_busy_secs[gpu] += secs;
            let t = self.now + secs;
            self.push(t, EventKind::ComputeDone { gpu, tag });
        }
        Ok(())
    }

    // Immediate (zero-byte) transfers are delivered through timer events
    // with tags above this bias; real timer tags must stay below it.
    const IMMEDIATE_BIAS: u64 = 1 << 62;

    /// Starts a transfer of `bytes` along `route` (ordered channels).
    /// Returns its id; completion carries `tag`. A zero-byte transfer or an
    /// empty route (same-device move) completes at the current time.
    pub fn start_transfer(
        &mut self,
        route: &[ChannelId],
        bytes: u64,
        tag: u64,
    ) -> Result<TransferId, SimError> {
        for &c in route {
            if c >= self.channel_bw.len() {
                return Err(SimError::UnknownChannel(c));
            }
        }
        let id = self.next_transfer_id;
        self.next_transfer_id += 1;
        if bytes == 0 || route.is_empty() {
            self.immediates.insert(id, tag);
            self.push(
                self.now,
                EventKind::Timer {
                    tag: Self::IMMEDIATE_BIAS + id,
                },
            );
            return Ok(id);
        }
        self.advance_busy_time();
        for &c in route {
            self.stats.channel_bytes[c] += bytes;
            self.active[c] += 1;
        }
        self.routed += 1;
        let k = self.flight_for(route);
        // Every occupied flight crossing one of these channels saw its
        // denominator grow, strictly lowering its share — including `k`
        // itself, whose materialization leaves it fresh for the insert.
        let affected = self.collect_affected(route);
        self.recompute_flights(&affected);
        self.affected_scratch = affected;
        let f = &mut self.flights[k];
        if f.queue.is_empty() {
            // Fresh drain epoch: nothing shares this route right now, so
            // the cumulative drain restarts at zero (bounds cancellation).
            f.drained = 0.0;
            f.touch = self.now;
            f.rate = derive_rate(&self.channel_bw, &self.active, &f.route);
            self.counters.rate_recomputes += 1;
        }
        debug_assert_eq!(f.touch, self.now, "flight must be fresh at insert");
        let depart = bytes as f64 + f.drained;
        debug_assert!(depart >= 0.0 && depart.is_finite());
        self.counters.queue_pushes += 1;
        f.queue.push(Reverse((depart.to_bits(), id, tag)));
        f.refresh_pred(self.now);
        self.schedule_network_check();
        Ok(id)
    }

    /// Pre-registers (or looks up) the flight class for `route`, so
    /// repeat senders can skip per-transfer route validation and the
    /// route-key hash via [`Simulator::start_transfer_on_class`]. The
    /// class is created exactly as the first non-empty
    /// [`Simulator::start_transfer`] over `route` would create it, so
    /// interleaving the two entry points never perturbs flight order.
    /// Empty routes have no flight (they complete immediately) and are
    /// rejected.
    pub fn register_route_class(&mut self, route: &[ChannelId]) -> Result<usize, SimError> {
        for &c in route {
            if c >= self.channel_bw.len() {
                return Err(SimError::UnknownChannel(c));
            }
        }
        if route.is_empty() {
            return Err(SimError::InvalidParameter(
                "empty route has no flight class".to_string(),
            ));
        }
        Ok(self.flight_for(route))
    }

    /// Starts a transfer of `bytes > 0` on a class previously returned by
    /// [`Simulator::register_route_class`]. Behaviour (ids, event order,
    /// accounting) is bit-identical to [`Simulator::start_transfer`] over
    /// the class's route; only the per-call route validation and hash
    /// lookup are skipped.
    pub fn start_transfer_on_class(
        &mut self,
        class: usize,
        bytes: u64,
        tag: u64,
    ) -> Result<TransferId, SimError> {
        if class >= self.flights.len() {
            return Err(SimError::InvalidParameter(format!(
                "unknown route class {class}"
            )));
        }
        if bytes == 0 {
            return Err(SimError::InvalidParameter(
                "zero-byte transfers take the immediate path of start_transfer".to_string(),
            ));
        }
        let id = self.next_transfer_id;
        self.next_transfer_id += 1;
        self.advance_busy_time();
        let mut route = std::mem::take(&mut self.route_scratch);
        route.clear();
        route.extend_from_slice(&self.flights[class].route);
        for &c in &route {
            self.stats.channel_bytes[c] += bytes;
            self.active[c] += 1;
        }
        self.routed += 1;
        let affected = self.collect_affected(&route);
        self.recompute_flights(&affected);
        self.affected_scratch = affected;
        self.route_scratch = route;
        let f = &mut self.flights[class];
        if f.queue.is_empty() {
            f.drained = 0.0;
            f.touch = self.now;
            f.rate = derive_rate(&self.channel_bw, &self.active, &f.route);
            self.counters.rate_recomputes += 1;
        }
        debug_assert_eq!(f.touch, self.now, "flight must be fresh at insert");
        let depart = bytes as f64 + f.drained;
        debug_assert!(depart >= 0.0 && depart.is_finite());
        self.counters.queue_pushes += 1;
        f.queue.push(Reverse((depart.to_bits(), id, tag)));
        f.refresh_pred(self.now);
        self.schedule_network_check();
        Ok(id)
    }

    /// Schedules a timer at absolute time `at` (clamped to now).
    /// `tag` must be below `2^62`.
    pub fn set_timer(&mut self, at: SimTime, tag: u64) -> Result<(), SimError> {
        if !at.is_finite() {
            return Err(SimError::InvalidParameter(format!("time {at}")));
        }
        if tag >= Self::IMMEDIATE_BIAS {
            return Err(SimError::InvalidParameter(format!(
                "timer tag {tag} too large"
            )));
        }
        let t = at.max(self.now);
        self.push(t, EventKind::Timer { tag });
        Ok(())
    }

    /// Cancels an in-flight transfer at the current virtual time (the
    /// resilience layer's reroute path: a fault degraded a link and the
    /// driver re-issues the payload over another route). Returns
    /// `Ok(true)` when the transfer was found and removed, `Ok(false)`
    /// when it already completed (or never existed) — by the time a
    /// fault lands, its victim may legitimately have drained.
    ///
    /// The cancelled transfer's bytes stay in [`SimStats::channel_bytes`]:
    /// traffic is accounted at issue time (the bandwidth-conservation
    /// oracle tallies the same way), and the aborted attempt did occupy
    /// the links. Its bandwidth share is released immediately: sibling
    /// flights re-derive their rates exactly as on a completion.
    ///
    /// Cost is O(in-flight members) for the scan plus a heap rebuild of
    /// the victim's flight — a deliberate trade: cancellation happens
    /// only on the rare fault path, so the hot path carries no tombstone
    /// state for it.
    pub fn cancel_transfer(&mut self, id: TransferId) -> Result<bool, SimError> {
        if self.immediates.remove(&id).is_some() {
            // Its queued immediate-delivery event finds no entry and is
            // skipped (the same inert-event pattern `next` already uses).
            return Ok(true);
        }
        let Some(k) = self
            .flights
            .iter()
            .position(|f| f.queue.iter().any(|&Reverse((_, m, _))| m == id))
        else {
            return Ok(false);
        };
        self.advance_busy_time();
        // Credit drain up to now under the old rate, then rebuild the
        // member heap without the victim. Departure thresholds are
        // immutable, so the survivors' order is untouched.
        self.flights[k].materialize(self.now);
        let members = std::mem::take(&mut self.flights[k].queue);
        self.flights[k].queue = members
            .into_iter()
            .filter(|&Reverse((_, m, _))| m != id)
            .collect();
        let mut route = std::mem::take(&mut self.route_scratch);
        route.clear();
        route.extend_from_slice(&self.flights[k].route);
        for &c in &route {
            self.active[c] -= 1;
        }
        self.routed -= 1;
        let affected = self.collect_affected(&route);
        self.recompute_flights(&affected);
        self.affected_scratch = affected;
        self.route_scratch = route;
        // The victim may have been the flight's head while the rate (and
        // hence `recompute_flights`' no-op check) is unchanged — e.g. the
        // flight's other channels still bottleneck it — so the cached
        // prediction must be refreshed unconditionally.
        self.flights[k].refresh_pred(self.now);
        self.schedule_network_check();
        Ok(true)
    }

    /// True if no events remain (all work delivered).
    pub fn idle(&self) -> bool {
        self.events.is_empty()
    }

    /// Flight index for `route`, created on first use. Flights persist —
    /// there are at most O(endpoint pairs) distinct routes — and an empty
    /// flight costs one skip per rescan in dense mode, nothing in fast
    /// mode.
    fn flight_for(&mut self, route: &[ChannelId]) -> usize {
        if let Some(&k) = self.class_of.get(route) {
            return k;
        }
        let k = self.flights.len();
        self.class_of.insert(route.to_vec(), k);
        self.flights.push(Flight {
            route: route.to_vec(),
            drained: 0.0,
            rate: 0.0,
            touch: self.now,
            pred: f64::INFINITY,
            queue: BinaryHeap::new(),
        });
        self.flight_epoch.push(0);
        for &c in route {
            self.chan_flights[c].push(k);
        }
        self.counters.route_classes = self.flights.len() as u64;
        k
    }

    /// Advances per-channel busy-time accounting to `now`. A channel is
    /// busy while any transfer uses it — exactly when its active count is
    /// nonzero. O(channels), independent of in-flight transfer count.
    fn advance_busy_time(&mut self) {
        let dt = self.now - self.last_net_update;
        if dt > 0.0 && self.routed > 0 {
            for (c, &n) in self.active.iter().enumerate() {
                if n > 0 {
                    self.stats.channel_busy_secs[c] += dt;
                }
            }
        }
        self.last_net_update = self.now;
    }

    /// The flights whose fair-share rate may have changed after an event
    /// on `channels`: the union of those channels' flight lists (fast
    /// mode, deduplicated by epoch marks), or every occupied flight
    /// (dense reference — the full rescan). The returned buffer is
    /// `affected_scratch`; callers put it back after
    /// [`Self::recompute_flights`].
    fn collect_affected(&mut self, channels: &[ChannelId]) -> Vec<usize> {
        let mut v = std::mem::take(&mut self.affected_scratch);
        v.clear();
        if self.dense {
            for (k, f) in self.flights.iter().enumerate() {
                if !f.queue.is_empty() {
                    v.push(k);
                }
            }
        } else {
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == 0 {
                self.flight_epoch.fill(0);
                self.epoch = 1;
            }
            for &c in channels {
                for &k in &self.chan_flights[c] {
                    if self.flight_epoch[k] != self.epoch && !self.flights[k].queue.is_empty() {
                        self.flight_epoch[k] = self.epoch;
                        v.push(k);
                    }
                }
            }
        }
        v
    }

    /// Re-derives the bottleneck fair-share rate of each flight. A flight
    /// whose rate value is unchanged is left untouched — its lazy drain
    /// tuple and cached prediction stay valid. (This is what makes the
    /// indexed and dense modes trace-identical: an unaffected flight's
    /// inputs are unchanged, so the dense rescan re-derives the same bits
    /// and also no-ops.) On a change the flight is materialized — drain
    /// credited under the old rate — then the new rate and prediction are
    /// installed.
    fn recompute_flights(&mut self, affected: &[usize]) {
        for &k in affected {
            self.counters.rate_recomputes += 1;
            let f = &mut self.flights[k];
            let rate = derive_rate(&self.channel_bw, &self.active, &f.route);
            if rate == f.rate {
                continue;
            }
            f.materialize(self.now);
            f.rate = rate;
            f.refresh_pred(self.now);
        }
    }

    /// Schedules the next network check at the earliest flight prediction
    /// (clamped to now), stamped with a fresh generation so checks
    /// scheduled before this recomputation are ignored. O(flights) in
    /// both modes — the flight count is bounded by distinct routes, not
    /// by in-flight transfers.
    fn schedule_network_check(&mut self) {
        self.net_generation += 1;
        let generation = self.net_generation;
        if self.routed == 0 {
            return;
        }
        let mut min_pred = f64::INFINITY;
        for f in &self.flights {
            min_pred = min_pred.min(f.pred);
        }
        if min_pred.is_finite() {
            let at = min_pred.max(self.now);
            self.push(at, EventKind::NetworkCheck { generation });
        }
    }

    /// The flight whose head departs at the current time, if any: among
    /// due flights (`pred <= now`), the one with the lowest head transfer
    /// id. One completion per check event keeps ordering deterministic;
    /// remaining due heads are delivered by the rescheduled check at the
    /// same virtual time.
    fn pick_candidate(&self) -> Option<usize> {
        let mut best: Option<(TransferId, usize)> = None;
        for (k, f) in self.flights.iter().enumerate() {
            if f.pred <= self.now {
                if let Some(&Reverse((_, id, _))) = f.queue.peek() {
                    if best.is_none_or(|(bid, _)| id < bid) {
                        best = Some((id, k));
                    }
                }
            }
        }
        best.map(|(_, k)| k)
    }

    /// Advances virtual time to the next completion and returns it, or
    /// `None` when no work remains.
    ///
    /// Named like — but deliberately not implementing — `Iterator::next`:
    /// drivers interleave `next()` with new submissions, which an
    /// `Iterator` cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, Completion)> {
        while let Some(ev) = self.events.pop() {
            debug_assert!(ev.time >= self.now - 1e-12, "time went backwards");
            match ev.kind {
                EventKind::ComputeDone { gpu, tag } => {
                    self.now = self.now.max(ev.time);
                    // Start next queued kernel, if any.
                    let next = self.streams[gpu].queue.pop_front();
                    match next {
                        Some((secs, next_tag)) => {
                            self.stats.gpu_busy_secs[gpu] += secs;
                            let t = self.now + secs;
                            self.push(t, EventKind::ComputeDone { gpu, tag: next_tag });
                        }
                        None => self.streams[gpu].busy = false,
                    }
                    return Some((self.now, Completion::Compute { gpu, tag }));
                }
                EventKind::Timer { tag } => {
                    self.now = self.now.max(ev.time);
                    if tag >= Self::IMMEDIATE_BIAS {
                        let id = tag - Self::IMMEDIATE_BIAS;
                        if let Some(user_tag) = self.immediates.remove(&id) {
                            return Some((self.now, Completion::Transfer { id, tag: user_tag }));
                        }
                        continue;
                    }
                    return Some((self.now, Completion::Timer { tag }));
                }
                EventKind::NetworkCheck { generation } => {
                    if generation != self.net_generation {
                        continue; // stale prediction
                    }
                    self.counters.network_checks += 1;
                    self.now = self.now.max(ev.time);
                    self.advance_busy_time();
                    match self.pick_candidate() {
                        Some(k) => {
                            let f = &mut self.flights[k];
                            f.materialize(self.now);
                            let Reverse((_, id, tag)) = f.queue.pop().expect(
                                "invariant: pick_candidate only returns flights with a \
                                 finite pred, and pred is finite only while the \
                                 flight's transfer queue is non-empty",
                            );
                            if f.queue.is_empty() {
                                f.pred = f64::INFINITY;
                            }
                            // The head's share frees up on every channel of
                            // the route: sibling flights (including this
                            // one, if still occupied) re-derive their rates.
                            let mut route = std::mem::take(&mut self.route_scratch);
                            route.clear();
                            route.extend_from_slice(&self.flights[k].route);
                            for &c in &route {
                                self.active[c] -= 1;
                            }
                            self.routed -= 1;
                            let affected = self.collect_affected(&route);
                            self.recompute_flights(&affected);
                            self.affected_scratch = affected;
                            self.route_scratch = route;
                            self.schedule_network_check();
                            return Some((self.now, Completion::Transfer { id, tag }));
                        }
                        None => {
                            // Defensive: a valid-generation check implies a
                            // due flight (its scheduled prediction has
                            // arrived), but reschedule rather than spin.
                            self.schedule_network_check();
                            continue;
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests;
