//! # harmony-simulator
//!
//! A deterministic discrete-event simulator of a multi-GPU server, the
//! substrate on which Harmony's schedules are evaluated (substituting for
//! the paper's physical 4×1080Ti testbed — see DESIGN.md §2).
//!
//! The engine models two resource classes:
//!
//! * **Compute streams** — one FIFO stream per GPU: a submitted kernel
//!   occupies its GPU exclusively for its duration (the CUDA stream model
//!   per device that frameworks use).
//! * **Bandwidth channels** — directed links from `harmony-topology`.
//!   Concurrent transfers sharing a channel receive a fair share of its
//!   capacity; a transfer's instantaneous rate is its *bottleneck share*
//!   `min_c (bw_c / active_c)` over the channels on its route. Rates are
//!   recomputed whenever a transfer starts or completes (flow-level network
//!   simulation). This is what exposes the paper's oversubscribed-host-link
//!   collapse: four swapping GPUs each get a quarter of the uplink.
//!
//! The driver (a scheduler runtime) submits compute and transfers with
//! opaque `tag`s and repeatedly calls [`Simulator::next`] to advance
//! virtual time and receive completions — the structure of Harmony's
//! *online* task-and-swap scheduler.
//!
//! Determinism: ties in the event queue are broken by submission sequence
//! number; no wall-clock or randomness enters the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use harmony_topology::{ChannelId, Topology};

pub use stats::SimStats;

/// Virtual time in seconds.
pub type SimTime = f64;

/// Identifier of an in-flight transfer.
pub type TransferId = u64;

/// A completion delivered to the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completion {
    /// A compute kernel finished on `gpu`.
    Compute {
        /// GPU index.
        gpu: usize,
        /// Driver-supplied tag.
        tag: u64,
    },
    /// A transfer finished.
    Transfer {
        /// Transfer id returned by [`Simulator::start_transfer`].
        id: TransferId,
        /// Driver-supplied tag.
        tag: u64,
    },
    /// A timer fired.
    Timer {
        /// Driver-supplied tag.
        tag: u64,
    },
}

/// Simulator errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Referenced GPU does not exist.
    UnknownGpu(usize),
    /// Referenced channel does not exist.
    UnknownChannel(ChannelId),
    /// Negative or non-finite duration/byte count.
    InvalidParameter(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownGpu(g) => write!(f, "unknown gpu {g}"),
            SimError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            SimError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    ComputeDone { gpu: usize, tag: u64 },
    NetworkCheck { generation: u64 },
    Timer { tag: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time first, then lower seq.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone)]
struct Transfer {
    id: TransferId,
    tag: u64,
    route: Vec<ChannelId>,
    remaining: f64,
    rate: f64,
}

#[derive(Debug, Default)]
struct GpuStream {
    busy: bool,
    queue: VecDeque<(f64, u64)>, // (duration, tag)
}

/// The discrete-event engine. See module docs.
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Event>,
    streams: Vec<GpuStream>,
    channel_bw: Vec<f64>,
    transfers: HashMap<TransferId, Transfer>,
    /// Per-channel count of routed in-flight transfers, maintained
    /// incrementally at transfer start/finish. This is the fair-share
    /// denominator; keeping it up to date here replaces the former
    /// O(transfers × route) rescan on every network event.
    active: Vec<u32>,
    /// Number of in-flight transfers with a non-empty route.
    routed: usize,
    next_transfer_id: TransferId,
    net_generation: u64,
    last_net_update: SimTime,
    stats: SimStats,
}

impl Simulator {
    /// Creates a simulator over a topology's GPUs and channels.
    pub fn new(topology: &Topology) -> Self {
        Simulator {
            now: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            streams: (0..topology.num_gpus())
                .map(|_| GpuStream::default())
                .collect(),
            channel_bw: topology.channels().iter().map(|c| c.bandwidth).collect(),
            transfers: HashMap::new(),
            active: vec![0; topology.channels().len()],
            routed: 0,
            next_transfer_id: 0,
            net_generation: 0,
            last_net_update: 0.0,
            stats: SimStats::new(topology.num_gpus(), topology.channels().len()),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of bandwidth channels.
    pub fn num_channels(&self) -> usize {
        self.channel_bw.len()
    }

    /// Current bandwidth of a channel (bytes/sec).
    pub fn channel_bandwidth(&self, channel: ChannelId) -> Result<f64, SimError> {
        self.channel_bw
            .get(channel)
            .copied()
            .ok_or(SimError::UnknownChannel(channel))
    }

    /// Changes a channel's bandwidth at the current virtual time (fault
    /// injection: link degradation or recovery). In-flight transfers keep
    /// the bytes they have already moved; their rates and completion
    /// times are recomputed under the new capacity.
    pub fn set_channel_bandwidth(
        &mut self,
        channel: ChannelId,
        bandwidth: f64,
    ) -> Result<(), SimError> {
        if channel >= self.channel_bw.len() {
            return Err(SimError::UnknownChannel(channel));
        }
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(SimError::InvalidParameter(format!("bandwidth {bandwidth}")));
        }
        // Credit progress under the old rates before switching.
        self.advance_network_progress();
        self.channel_bw[channel] = bandwidth;
        self.recompute_rates_and_schedule();
        Ok(())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event { time, seq, kind });
    }

    /// Submits a compute kernel of `secs` duration to `gpu`'s FIFO stream.
    pub fn submit_compute(&mut self, gpu: usize, secs: f64, tag: u64) -> Result<(), SimError> {
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(SimError::InvalidParameter(format!("duration {secs}")));
        }
        let stream = self.streams.get_mut(gpu).ok_or(SimError::UnknownGpu(gpu))?;
        if stream.busy {
            stream.queue.push_back((secs, tag));
        } else {
            stream.busy = true;
            self.stats.gpu_busy_secs[gpu] += secs;
            let t = self.now + secs;
            self.push(t, EventKind::ComputeDone { gpu, tag });
        }
        Ok(())
    }

    /// Starts a transfer of `bytes` along `route` (ordered channels).
    /// Returns its id; completion carries `tag`. A zero-byte transfer or an
    /// empty route (same-device move) completes at the current time.
    pub fn start_transfer(
        &mut self,
        route: &[ChannelId],
        bytes: u64,
        tag: u64,
    ) -> Result<TransferId, SimError> {
        for &c in route {
            if c >= self.channel_bw.len() {
                return Err(SimError::UnknownChannel(c));
            }
        }
        let id = self.next_transfer_id;
        self.next_transfer_id += 1;
        if bytes == 0 || route.is_empty() {
            // Completes "immediately": delivered through a timer event at
            // the current time (tagged above IMMEDIATE_BIAS).
            self.push(
                self.now,
                EventKind::Timer {
                    tag: Self::immediate_tag(id),
                },
            );
            self.transfers.insert(
                id,
                Transfer {
                    id,
                    tag,
                    route: Vec::new(),
                    remaining: 0.0,
                    rate: 0.0,
                },
            );
            return Ok(id);
        }
        self.advance_network_progress();
        for &c in route {
            self.stats.channel_bytes[c] += bytes;
            self.active[c] += 1;
        }
        self.routed += 1;
        self.transfers.insert(
            id,
            Transfer {
                id,
                tag,
                route: route.to_vec(),
                remaining: bytes as f64,
                rate: 0.0,
            },
        );
        self.recompute_rates_and_schedule();
        Ok(id)
    }

    // Immediate (zero-byte) transfers are delivered through timer events
    // with tags above this bias; real timer tags must stay below it.
    const IMMEDIATE_BIAS: u64 = 1 << 62;

    fn immediate_tag(id: TransferId) -> u64 {
        Self::IMMEDIATE_BIAS + id
    }

    /// Schedules a timer at absolute time `at` (clamped to now).
    /// `tag` must be below `2^62`.
    pub fn set_timer(&mut self, at: SimTime, tag: u64) -> Result<(), SimError> {
        if !at.is_finite() {
            return Err(SimError::InvalidParameter(format!("time {at}")));
        }
        if tag >= Self::IMMEDIATE_BIAS {
            return Err(SimError::InvalidParameter(format!(
                "timer tag {tag} too large"
            )));
        }
        let t = at.max(self.now);
        self.push(t, EventKind::Timer { tag });
        Ok(())
    }

    /// True if no events remain (all work delivered).
    pub fn idle(&self) -> bool {
        self.events.is_empty()
    }

    /// Removes a transfer, releasing its fair-share slot on every channel
    /// of its route (the start/finish bookkeeping that keeps
    /// [`Self::recompute_rates_and_schedule`] scan-free).
    fn remove_transfer(&mut self, id: TransferId) -> Option<Transfer> {
        let t = self.transfers.remove(&id)?;
        if !t.route.is_empty() {
            for &c in &t.route {
                debug_assert!(self.active[c] > 0, "active-count underflow on channel {c}");
                self.active[c] -= 1;
            }
            self.routed -= 1;
        }
        Some(t)
    }

    // A transfer carries whole bytes, so any `remaining` at or below this
    // threshold is floating-point residue of an already-finished transfer.
    const RESIDUE_BYTES: f64 = 0.5;

    /// Advances remaining-byte counters of all active transfers to `now`.
    fn advance_network_progress(&mut self) {
        let dt = self.now - self.last_net_update;
        if dt > 0.0 && self.routed > 0 {
            for t in self.transfers.values_mut() {
                if !t.route.is_empty() {
                    let advanced = t.remaining - t.rate * dt;
                    // Clamp float drift: progress may overshoot the byte
                    // count by rounding, but never by a meaningful amount.
                    // (A clamped transfer is completed by the check event
                    // the next recompute schedules at `now`; it must not
                    // keep holding fair-share bandwidth — see
                    // `recompute_rates_and_schedule`.)
                    debug_assert!(
                        advanced > -1.0,
                        "transfer {} overshot by {} bytes — drift beyond fp residue",
                        t.id,
                        -advanced
                    );
                    t.remaining = advanced.max(0.0);
                }
            }
            // Channel busy time: a channel is busy while any transfer
            // uses it — exactly when its active count is nonzero.
            for (c, &n) in self.active.iter().enumerate() {
                if n > 0 {
                    self.stats.channel_busy_secs[c] += dt;
                }
            }
        }
        self.last_net_update = self.now;
    }

    /// Recomputes fair-share rates and schedules the next network check.
    /// The per-channel share denominators are maintained incrementally
    /// ([`Self::start_transfer`] / [`Self::remove_transfer`]), so this
    /// touches each in-flight transfer's route once with no counting
    /// rescan.
    fn recompute_rates_and_schedule(&mut self) {
        self.net_generation += 1;
        let generation = self.net_generation;
        if self.routed == 0 {
            return;
        }
        let mut earliest: Option<SimTime> = None;
        for t in self.transfers.values_mut() {
            if t.route.is_empty() {
                continue;
            }
            t.rate = t
                .route
                .iter()
                .map(|&c| self.channel_bw[c] / self.active[c].max(1) as f64)
                .fold(f64::INFINITY, f64::min);
            // Sub-byte residue means the transfer already finished (drift
            // clamped it early): force its check to `now` so it releases
            // its bandwidth share immediately instead of sitting on the
            // channel until a drifted later ETA.
            let eta = if t.remaining <= Self::RESIDUE_BYTES {
                self.now
            } else if t.rate > 0.0 {
                self.now + t.remaining / t.rate
            } else {
                f64::INFINITY
            };
            earliest = Some(match earliest {
                Some(e) => e.min(eta),
                None => eta,
            });
        }
        if let Some(e) = earliest {
            if e.is_finite() {
                self.push(e, EventKind::NetworkCheck { generation });
            }
        }
    }

    /// Advances virtual time to the next completion and returns it, or
    /// `None` when no work remains.
    ///
    /// Named like — but deliberately not implementing — `Iterator::next`:
    /// drivers interleave `next()` with new submissions, which an
    /// `Iterator` cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, Completion)> {
        while let Some(ev) = self.events.pop() {
            debug_assert!(ev.time >= self.now - 1e-12, "time went backwards");
            match ev.kind {
                EventKind::ComputeDone { gpu, tag } => {
                    self.now = self.now.max(ev.time);
                    // Start next queued kernel, if any.
                    let next = self.streams[gpu].queue.pop_front();
                    match next {
                        Some((secs, next_tag)) => {
                            self.stats.gpu_busy_secs[gpu] += secs;
                            let t = self.now + secs;
                            self.push(t, EventKind::ComputeDone { gpu, tag: next_tag });
                        }
                        None => self.streams[gpu].busy = false,
                    }
                    return Some((self.now, Completion::Compute { gpu, tag }));
                }
                EventKind::Timer { tag } => {
                    self.now = self.now.max(ev.time);
                    if tag >= Self::IMMEDIATE_BIAS {
                        let id = tag - Self::IMMEDIATE_BIAS;
                        if let Some(t) = self.remove_transfer(id) {
                            return Some((self.now, Completion::Transfer { id, tag: t.tag }));
                        }
                        continue;
                    }
                    return Some((self.now, Completion::Timer { tag }));
                }
                EventKind::NetworkCheck { generation } => {
                    if generation != self.net_generation {
                        continue; // stale prediction
                    }
                    self.now = self.now.max(ev.time);
                    self.advance_network_progress();
                    // Complete exactly one finished transfer per event for
                    // deterministic ordering (lowest id first). Transfers
                    // carry whole bytes, so anything under half a byte is
                    // floating-point residue.
                    let done_id = self
                        .transfers
                        .values()
                        .filter(|t| !t.route.is_empty() && t.remaining <= Self::RESIDUE_BYTES)
                        .map(|t| t.id)
                        .min();
                    // Guard against fp stalls: this event fired at the
                    // predicted completion time of *some* transfer, so if
                    // none crossed the threshold (eta - now rounded to
                    // zero), force the nearest-to-done transfer through —
                    // otherwise the engine would respin this event forever.
                    let done_id = done_id.or_else(|| {
                        self.transfers
                            .values()
                            .filter(|t| !t.route.is_empty() && t.rate > 0.0)
                            .min_by(|a, b| {
                                (a.remaining / a.rate)
                                    .partial_cmp(&(b.remaining / b.rate))
                                    .unwrap_or(std::cmp::Ordering::Equal)
                                    .then(a.id.cmp(&b.id))
                            })
                            .filter(|t| self.now + t.remaining / t.rate <= self.now)
                            .map(|t| t.id)
                    });
                    match done_id {
                        Some(id) => {
                            let t = self.remove_transfer(id).expect("id from scan");
                            self.recompute_rates_and_schedule();
                            return Some((self.now, Completion::Transfer { id, tag: t.tag }));
                        }
                        None => {
                            // Rounding: nothing actually done; reschedule.
                            self.recompute_rates_and_schedule();
                            continue;
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_topology::presets::{commodity_4x1080ti, GBPS};
    use harmony_topology::Endpoint;

    fn sim() -> (Simulator, harmony_topology::Topology) {
        let t = commodity_4x1080ti();
        (Simulator::new(&t), t)
    }

    #[test]
    fn compute_is_fifo_per_gpu() {
        let (mut s, _) = sim();
        s.submit_compute(0, 2.0, 1).unwrap();
        s.submit_compute(0, 3.0, 2).unwrap();
        s.submit_compute(1, 1.0, 3).unwrap();
        let (t1, c1) = s.next().unwrap();
        assert_eq!(c1, Completion::Compute { gpu: 1, tag: 3 });
        assert!((t1 - 1.0).abs() < 1e-9);
        let (t2, c2) = s.next().unwrap();
        assert_eq!(c2, Completion::Compute { gpu: 0, tag: 1 });
        assert!((t2 - 2.0).abs() < 1e-9);
        let (t3, c3) = s.next().unwrap();
        assert_eq!(c3, Completion::Compute { gpu: 0, tag: 2 });
        assert!((t3 - 5.0).abs() < 1e-9, "queued kernel starts after first");
        assert!(s.next().is_none());
    }

    #[test]
    fn single_transfer_runs_at_bottleneck_rate() {
        let (mut s, topo) = sim();
        let route = topo.route(Endpoint::Gpu(0), Endpoint::Host).unwrap();
        // 12 GB over a 12 GB/s path → 1 s.
        s.start_transfer(route, (12.0 * GBPS) as u64, 7).unwrap();
        let (t, c) = s.next().unwrap();
        assert!(matches!(c, Completion::Transfer { tag: 7, .. }));
        assert!((t - 1.0).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn shared_uplink_halves_rates() {
        let (mut s, topo) = sim();
        let r0 = topo
            .route(Endpoint::Gpu(0), Endpoint::Host)
            .unwrap()
            .to_vec();
        let r1 = topo
            .route(Endpoint::Gpu(1), Endpoint::Host)
            .unwrap()
            .to_vec();
        // Two 12 GB swap-outs share the single 12 GB/s uplink → 2 s each.
        s.start_transfer(&r0, (12.0 * GBPS) as u64, 1).unwrap();
        s.start_transfer(&r1, (12.0 * GBPS) as u64, 2).unwrap();
        let (t1, _) = s.next().unwrap();
        let (t2, _) = s.next().unwrap();
        assert!((t1 - 2.0).abs() < 1e-6, "t1 = {t1}");
        assert!((t2 - 2.0).abs() < 1e-6, "t2 = {t2}");
    }

    #[test]
    fn p2p_does_not_contend_with_host_swap() {
        let (mut s, topo) = sim();
        let host = topo
            .route(Endpoint::Gpu(0), Endpoint::Host)
            .unwrap()
            .to_vec();
        let p2p = topo
            .route(Endpoint::Gpu(2), Endpoint::Gpu(3))
            .unwrap()
            .to_vec();
        s.start_transfer(&host, (12.0 * GBPS) as u64, 1).unwrap();
        s.start_transfer(&p2p, (12.0 * GBPS) as u64, 2).unwrap();
        // Disjoint channels → both finish at 1 s.
        let (t1, _) = s.next().unwrap();
        let (t2, _) = s.next().unwrap();
        assert!((t1 - 1.0).abs() < 1e-6);
        assert!((t2 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rates_rise_when_a_competitor_finishes() {
        let (mut s, topo) = sim();
        let r0 = topo
            .route(Endpoint::Gpu(0), Endpoint::Host)
            .unwrap()
            .to_vec();
        let r1 = topo
            .route(Endpoint::Gpu(1), Endpoint::Host)
            .unwrap()
            .to_vec();
        // 6 GB and 12 GB share the uplink: first finishes at 1 s (6 GB/s
        // each); the second then speeds up: remaining 6 GB at 12 GB/s →
        // total 1.5 s.
        s.start_transfer(&r0, (6.0 * GBPS) as u64, 1).unwrap();
        s.start_transfer(&r1, (12.0 * GBPS) as u64, 2).unwrap();
        let (t1, c1) = s.next().unwrap();
        assert!(matches!(c1, Completion::Transfer { tag: 1, .. }));
        assert!((t1 - 1.0).abs() < 1e-6, "t1 = {t1}");
        let (t2, c2) = s.next().unwrap();
        assert!(matches!(c2, Completion::Transfer { tag: 2, .. }));
        assert!((t2 - 1.5).abs() < 1e-6, "t2 = {t2}");
    }

    #[test]
    fn zero_byte_transfer_completes_now() {
        let (mut s, topo) = sim();
        let route = topo.route(Endpoint::Gpu(0), Endpoint::Host).unwrap();
        s.start_transfer(route, 0, 9).unwrap();
        let (t, c) = s.next().unwrap();
        assert_eq!(t, 0.0);
        assert!(matches!(c, Completion::Transfer { tag: 9, .. }));
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut s, _) = sim();
        s.set_timer(5.0, 1).unwrap();
        s.set_timer(2.0, 2).unwrap();
        assert_eq!(s.next().unwrap().1, Completion::Timer { tag: 2 });
        assert_eq!(s.next().unwrap().1, Completion::Timer { tag: 1 });
        assert!(s.idle());
    }

    #[test]
    fn invalid_params_are_rejected() {
        let (mut s, _) = sim();
        assert!(s.submit_compute(99, 1.0, 0).is_err());
        assert!(s.submit_compute(0, f64::NAN, 0).is_err());
        assert!(s.start_transfer(&[9999], 10, 0).is_err());
        assert!(s.set_timer(f64::INFINITY, 0).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, topo) = sim();
        let route = topo
            .route(Endpoint::Gpu(0), Endpoint::Host)
            .unwrap()
            .to_vec();
        s.submit_compute(0, 2.0, 1).unwrap();
        s.start_transfer(&route, (12.0 * GBPS) as u64, 2).unwrap();
        while s.next().is_some() {}
        assert!((s.stats().gpu_busy_secs[0] - 2.0).abs() < 1e-9);
        let total_bytes: u64 = s.stats().channel_bytes.iter().sum();
        assert_eq!(total_bytes, 2 * (12.0 * GBPS) as u64); // 2 channels on route
    }

    /// Epsilon-drift regression: two equal transfers share the uplink at a
    /// rate whose product with the shared ETA overshoots the byte count in
    /// floating point. The first completion clamps the second's
    /// `remaining` to 0 *before* its own ETA recomputation — the residue
    /// path must complete it immediately (releasing its bandwidth share)
    /// rather than leaving a ghost transfer holding half the channel.
    #[test]
    fn drift_residue_completes_and_releases_bandwidth() {
        let (mut s, topo) = sim();
        let r0 = topo
            .route(Endpoint::Gpu(0), Endpoint::Host)
            .unwrap()
            .to_vec();
        let r1 = topo
            .route(Endpoint::Gpu(1), Endpoint::Host)
            .unwrap()
            .to_vec();
        let uplink = *r0.iter().find(|c| r1.contains(c)).expect("shared uplink");
        // 3 B/s uplink shared two ways → 1.5 B/s each; 10 B → ETA 20/3 s,
        // and 1.5 × fl(20/3) > 10 in f64: guaranteed sub-byte overshoot.
        s.set_channel_bandwidth(uplink, 3.0).unwrap();
        s.start_transfer(&r0, 10, 1).unwrap();
        s.start_transfer(&r1, 10, 2).unwrap();
        let (t1, c1) = s.next().unwrap();
        let (t2, c2) = s.next().unwrap();
        assert!(matches!(c1, Completion::Transfer { tag: 1, .. }));
        assert!(matches!(c2, Completion::Transfer { tag: 2, .. }));
        assert!((t1 - 20.0 / 3.0).abs() < 1e-6, "t1 = {t1}");
        assert!((t2 - 20.0 / 3.0).abs() < 1e-6, "t2 = {t2}");
        assert!(s.next().is_none(), "no respinning ghost events");
        // The ghost released its share: a fresh transfer gets the full
        // 3 B/s uplink (30 B → 10 s), not a drifted half share.
        s.start_transfer(&r0, 30, 3).unwrap();
        let (t3, c3) = s.next().unwrap();
        assert!(matches!(c3, Completion::Transfer { tag: 3, .. }));
        assert!((t3 - (t2 + 10.0)).abs() < 1e-6, "t3 = {t3}");
    }

    /// The incrementally maintained fair-share denominators must return to
    /// zero once all work (routed, zero-byte, and queued-behind-busy) has
    /// drained — underflow or leaks here would silently skew every
    /// subsequent rate.
    #[test]
    fn active_counts_drain_to_zero() {
        let (mut s, topo) = sim();
        for g in 0..4 {
            let r = topo
                .route(Endpoint::Gpu(g), Endpoint::Host)
                .unwrap()
                .to_vec();
            s.start_transfer(&r, 1_000_000 * (g as u64 + 1), g as u64)
                .unwrap();
            s.start_transfer(&r, 0, 100 + g as u64).unwrap();
        }
        assert_eq!(s.routed, 4);
        assert!(s.active.iter().any(|&n| n > 0));
        while s.next().is_some() {}
        assert_eq!(s.routed, 0, "routed count leaked");
        assert!(
            s.active.iter().all(|&n| n == 0),
            "active counts leaked: {:?}",
            s.active
        );
    }

    #[test]
    fn determinism_same_script_same_trace() {
        let run = || {
            let topo = commodity_4x1080ti();
            let mut s = Simulator::new(&topo);
            for g in 0..4 {
                s.submit_compute(g, 1.0 + g as f64 * 0.1, g as u64).unwrap();
                let r = topo
                    .route(Endpoint::Gpu(g), Endpoint::Host)
                    .unwrap()
                    .to_vec();
                s.start_transfer(&r, 1_000_000_000 * (g as u64 + 1), 100 + g as u64)
                    .unwrap();
            }
            let mut trace = Vec::new();
            while let Some((t, c)) = s.next() {
                trace.push((t.to_bits(), format!("{c:?}")));
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
