use super::*;
use harmony_topology::presets::{commodity_4x1080ti, GBPS};
use harmony_topology::Endpoint;

fn sim() -> (Simulator, harmony_topology::Topology) {
    let t = commodity_4x1080ti();
    (Simulator::new(&t), t)
}

#[test]
fn compute_is_fifo_per_gpu() {
    let (mut s, _) = sim();
    s.submit_compute(0, 2.0, 1).unwrap();
    s.submit_compute(0, 3.0, 2).unwrap();
    s.submit_compute(1, 1.0, 3).unwrap();
    let (t1, c1) = s.next().unwrap();
    assert_eq!(c1, Completion::Compute { gpu: 1, tag: 3 });
    assert!((t1 - 1.0).abs() < 1e-9);
    let (t2, c2) = s.next().unwrap();
    assert_eq!(c2, Completion::Compute { gpu: 0, tag: 1 });
    assert!((t2 - 2.0).abs() < 1e-9);
    let (t3, c3) = s.next().unwrap();
    assert_eq!(c3, Completion::Compute { gpu: 0, tag: 2 });
    assert!((t3 - 5.0).abs() < 1e-9, "queued kernel starts after first");
    assert!(s.next().is_none());
}

#[test]
fn single_transfer_runs_at_bottleneck_rate() {
    let (mut s, topo) = sim();
    let route = topo.route(Endpoint::Gpu(0), Endpoint::Host).unwrap();
    // 12 GB over a 12 GB/s path → 1 s.
    s.start_transfer(route, (12.0 * GBPS) as u64, 7, 0).unwrap();
    let (t, c) = s.next().unwrap();
    assert!(matches!(c, Completion::Transfer { tag: 7, .. }));
    assert!((t - 1.0).abs() < 1e-6, "t = {t}");
}

#[test]
fn shared_uplink_halves_rates() {
    let (mut s, topo) = sim();
    let r0 = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    let r1 = topo
        .route(Endpoint::Gpu(1), Endpoint::Host)
        .unwrap()
        .to_vec();
    // Two 12 GB swap-outs share the single 12 GB/s uplink → 2 s each.
    s.start_transfer(&r0, (12.0 * GBPS) as u64, 1, 0).unwrap();
    s.start_transfer(&r1, (12.0 * GBPS) as u64, 2, 0).unwrap();
    let (t1, _) = s.next().unwrap();
    let (t2, _) = s.next().unwrap();
    assert!((t1 - 2.0).abs() < 1e-6, "t1 = {t1}");
    assert!((t2 - 2.0).abs() < 1e-6, "t2 = {t2}");
}

#[test]
fn p2p_does_not_contend_with_host_swap() {
    let (mut s, topo) = sim();
    let host = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    let p2p = topo
        .route(Endpoint::Gpu(2), Endpoint::Gpu(3))
        .unwrap()
        .to_vec();
    s.start_transfer(&host, (12.0 * GBPS) as u64, 1, 0).unwrap();
    s.start_transfer(&p2p, (12.0 * GBPS) as u64, 2, 0).unwrap();
    // Disjoint channels → both finish at 1 s.
    let (t1, _) = s.next().unwrap();
    let (t2, _) = s.next().unwrap();
    assert!((t1 - 1.0).abs() < 1e-6);
    assert!((t2 - 1.0).abs() < 1e-6);
}

#[test]
fn rates_rise_when_a_competitor_finishes() {
    let (mut s, topo) = sim();
    let r0 = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    let r1 = topo
        .route(Endpoint::Gpu(1), Endpoint::Host)
        .unwrap()
        .to_vec();
    // 6 GB and 12 GB share the uplink: first finishes at 1 s (6 GB/s
    // each); the second then speeds up: remaining 6 GB at 12 GB/s →
    // total 1.5 s.
    s.start_transfer(&r0, (6.0 * GBPS) as u64, 1, 0).unwrap();
    s.start_transfer(&r1, (12.0 * GBPS) as u64, 2, 0).unwrap();
    let (t1, c1) = s.next().unwrap();
    assert!(matches!(c1, Completion::Transfer { tag: 1, .. }));
    assert!((t1 - 1.0).abs() < 1e-6, "t1 = {t1}");
    let (t2, c2) = s.next().unwrap();
    assert!(matches!(c2, Completion::Transfer { tag: 2, .. }));
    assert!((t2 - 1.5).abs() < 1e-6, "t2 = {t2}");
}

#[test]
fn zero_byte_transfer_completes_now() {
    let (mut s, topo) = sim();
    let route = topo.route(Endpoint::Gpu(0), Endpoint::Host).unwrap();
    s.start_transfer(route, 0, 9, 0).unwrap();
    let (t, c) = s.next().unwrap();
    assert_eq!(t, 0.0);
    assert!(matches!(c, Completion::Transfer { tag: 9, .. }));
}

#[test]
fn timers_fire_in_order() {
    let (mut s, _) = sim();
    s.set_timer(5.0, 1, 0).unwrap();
    s.set_timer(2.0, 2, 0).unwrap();
    assert_eq!(s.next().unwrap().1, Completion::Timer { tag: 2 });
    assert_eq!(s.next().unwrap().1, Completion::Timer { tag: 1 });
    assert!(s.idle());
}

#[test]
fn invalid_params_are_rejected() {
    let (mut s, _) = sim();
    assert!(s.submit_compute(99, 1.0, 0).is_err());
    assert!(s.submit_compute(0, f64::NAN, 0).is_err());
    assert!(s.start_transfer(&[9999], 10, 0, 0).is_err());
    assert!(s.set_timer(f64::INFINITY, 0, 0).is_err());
}

/// NaN/∞ times are rejected at every submission site, so the event
/// heap's `total_cmp` ordering never sees one and cannot be corrupted by
/// `partial_cmp`-style incomparability (the tuner argmax fix of PR 2,
/// applied to the event queue).
#[test]
fn nan_times_rejected_at_submission() {
    let (mut s, topo) = sim();
    assert!(s.submit_compute(0, f64::NAN, 1).is_err());
    assert!(s.submit_compute(0, f64::INFINITY, 1).is_err());
    assert!(s.submit_compute(0, -1.0, 1).is_err());
    assert!(s.set_timer(f64::NAN, 1, 0).is_err());
    assert!(s.set_timer(f64::NEG_INFINITY, 1, 0).is_err());
    assert!(s.set_channel_bandwidth(0, f64::NAN).is_err());
    assert!(s.set_channel_bandwidth(0, 0.0).is_err());
    assert!(s.set_channel_bandwidth(0, -3.0).is_err());
    // The engine stays consistent after the rejections: a normal script
    // still runs to completion in order.
    let route = topo.route(Endpoint::Gpu(0), Endpoint::Host).unwrap();
    s.set_timer(0.5, 2, 0).unwrap();
    s.start_transfer(route, (12.0 * GBPS) as u64, 3, 0).unwrap();
    assert_eq!(s.next().unwrap().1, Completion::Timer { tag: 2 });
    assert!(matches!(
        s.next().unwrap().1,
        Completion::Transfer { tag: 3, .. }
    ));
    assert!(s.next().is_none());
}

#[test]
fn stats_accumulate() {
    let (mut s, topo) = sim();
    let route = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    s.submit_compute(0, 2.0, 1).unwrap();
    s.start_transfer(&route, (12.0 * GBPS) as u64, 2, 0)
        .unwrap();
    while s.next().is_some() {}
    assert!((s.stats().gpu_busy_secs[0] - 2.0).abs() < 1e-9);
    let total_bytes: u64 = s.stats().channel_bytes.iter().sum();
    assert_eq!(total_bytes, 2 * (12.0 * GBPS) as u64); // 2 channels on route
}

/// Epsilon-drift regression: two transfers share the uplink at a rate
/// whose product with the shared departure time overshoots the byte
/// count in floating point. The residue rule must complete the drifted
/// remainder immediately (releasing its bandwidth share) rather than
/// leaving a ghost transfer holding half the channel.
#[test]
fn drift_residue_completes_and_releases_bandwidth() {
    let (mut s, topo) = sim();
    let r0 = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    let r1 = topo
        .route(Endpoint::Gpu(1), Endpoint::Host)
        .unwrap()
        .to_vec();
    let uplink = *r0.iter().find(|c| r1.contains(c)).expect("shared uplink");
    // 3 B/s uplink shared two ways → 1.5 B/s each; 10 B → departure at
    // 20/3 s, and 1.5 × fl(20/3) > 10 in f64: guaranteed sub-byte
    // overshoot when the second flight is materialized.
    s.set_channel_bandwidth(uplink, 3.0).unwrap();
    s.start_transfer(&r0, 10, 1, 0).unwrap();
    s.start_transfer(&r1, 10, 2, 0).unwrap();
    let (t1, c1) = s.next().unwrap();
    let (t2, c2) = s.next().unwrap();
    assert!(matches!(c1, Completion::Transfer { tag: 1, .. }));
    assert!(matches!(c2, Completion::Transfer { tag: 2, .. }));
    assert!((t1 - 20.0 / 3.0).abs() < 1e-6, "t1 = {t1}");
    assert!((t2 - 20.0 / 3.0).abs() < 1e-6, "t2 = {t2}");
    assert!(s.next().is_none(), "no respinning ghost events");
    // The ghost released its share: a fresh transfer gets the full
    // 3 B/s uplink (30 B → 10 s), not a drifted half share.
    s.start_transfer(&r0, 30, 3, 0).unwrap();
    let (t3, c3) = s.next().unwrap();
    assert!(matches!(c3, Completion::Transfer { tag: 3, .. }));
    assert!((t3 - (t2 + 10.0)).abs() < 1e-6, "t3 = {t3}");
}

/// The fair-share denominators and flight queues must drain to empty once
/// all work (routed, zero-byte, queued-behind-busy) has completed — leaks
/// here would silently skew every subsequent rate.
#[test]
fn active_counts_drain_to_zero() {
    let (mut s, topo) = sim();
    for g in 0..4 {
        let r = topo
            .route(Endpoint::Gpu(g), Endpoint::Host)
            .unwrap()
            .to_vec();
        s.start_transfer(&r, 1_000_000 * (g as u64 + 1), g as u64, 0)
            .unwrap();
        s.start_transfer(&r, 0, 100 + g as u64, 0).unwrap();
    }
    assert_eq!(s.routed, 4);
    assert!(s.active.iter().any(|&n| n > 0));
    while s.next().is_some() {}
    assert_eq!(s.routed, 0, "routed count leaked");
    assert!(
        s.active.iter().all(|&n| n == 0),
        "active counts leaked: {:?}",
        s.active
    );
    assert!(
        s.flights.iter().all(|f| f.queue.is_empty()),
        "flight queues leaked"
    );
    assert!(s.immediates.is_empty(), "immediate tags leaked");
}

/// O(affected) contract: starting and finishing a transfer on a route
/// disjoint from a standing population must not touch the population's
/// flight, no matter how many transfers it carries.
#[test]
fn unrelated_routes_do_not_rescan_the_flight() {
    let (mut s, topo) = sim();
    let host = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    let p2p = topo
        .route(Endpoint::Gpu(2), Endpoint::Gpu(3))
        .unwrap()
        .to_vec();
    let population = 64;
    for i in 0..population {
        s.start_transfer(&host, 1 << 30, i, 0).unwrap();
    }
    let before = s.net_counters().rate_recomputes;
    // Start + drain one transfer on a disjoint route.
    s.start_transfer(&p2p, 1 << 20, 999, 0).unwrap();
    let (_, c) = s.next().unwrap();
    assert!(matches!(c, Completion::Transfer { tag: 999, .. }));
    let delta = s.net_counters().rate_recomputes - before;
    assert!(
        delta <= 2,
        "start+finish on a disjoint route did {delta} rate derivations \
         (population {population}) — affected-set indexing is broken"
    );
}

/// A mid-flight bandwidth fault invalidates (and re-derives) only the
/// flights routed over the changed channel.
#[test]
fn set_channel_bandwidth_touches_only_affected_transfers() {
    let (mut s, topo) = sim();
    let host = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    let p2p = topo
        .route(Endpoint::Gpu(2), Endpoint::Gpu(3))
        .unwrap()
        .to_vec();
    for i in 0..8 {
        s.start_transfer(&host, 1 << 30, i, 0).unwrap();
    }
    s.start_transfer(&p2p, 1 << 30, 100, 0).unwrap();
    s.start_transfer(&p2p, 1 << 30, 101, 0).unwrap();
    let before = s.net_counters().rate_recomputes;
    // Degrade the p2p link: only the p2p flight crosses it.
    s.set_channel_bandwidth(p2p[0], GBPS).unwrap();
    let delta = s.net_counters().rate_recomputes - before;
    assert_eq!(
        delta, 1,
        "bandwidth fault re-derived {delta} flights, expected only the p2p \
         flight (the 8-transfer host flight is unaffected)"
    );
}

/// The fast engine and the dense full-rescan reference must produce
/// bit-identical traces (the harness proptest drives this much harder;
/// this is the smoke version).
#[test]
fn fast_matches_dense_reference() {
    let run = |dense: bool| {
        let topo = commodity_4x1080ti();
        let mut s = if dense {
            Simulator::new_dense_reference(&topo)
        } else {
            Simulator::new(&topo)
        };
        let mut trace = Vec::new();
        for g in 0..4 {
            s.submit_compute(g, 0.3 + g as f64 * 0.1, g as u64).unwrap();
            let r = topo
                .route(Endpoint::Gpu(g), Endpoint::Host)
                .unwrap()
                .to_vec();
            s.start_transfer(&r, 3_000_000_000 * (g as u64 + 1), 100 + g as u64, 0)
                .unwrap();
        }
        for _ in 0..3 {
            let (t, c) = s.next().unwrap();
            trace.push((t.to_bits(), format!("{c:?}")));
        }
        let uplink = topo
            .route(Endpoint::Gpu(0), Endpoint::Host)
            .unwrap()
            .to_vec()[1];
        s.set_channel_bandwidth(uplink, 3.0 * GBPS).unwrap();
        while let Some((t, c)) = s.next() {
            trace.push((t.to_bits(), format!("{c:?}")));
        }
        for (c, busy) in s.stats().channel_busy_secs.iter().enumerate() {
            trace.push((busy.to_bits(), format!("busy[{c}]")));
        }
        trace
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn determinism_same_script_same_trace() {
    let run = || {
        let topo = commodity_4x1080ti();
        let mut s = Simulator::new(&topo);
        for g in 0..4 {
            s.submit_compute(g, 1.0 + g as f64 * 0.1, g as u64).unwrap();
            let r = topo
                .route(Endpoint::Gpu(g), Endpoint::Host)
                .unwrap()
                .to_vec();
            s.start_transfer(&r, 1_000_000_000 * (g as u64 + 1), 100 + g as u64, 0)
                .unwrap();
        }
        let mut trace = Vec::new();
        while let Some((t, c)) = s.next() {
            trace.push((t.to_bits(), format!("{c:?}")));
        }
        trace
    };
    assert_eq!(run(), run());
}

#[test]
fn cancel_releases_bandwidth_share() {
    let (mut s, topo) = sim();
    let r0 = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    let r1 = topo
        .route(Endpoint::Gpu(1), Endpoint::Host)
        .unwrap()
        .to_vec();
    // Two 12 GB swap-outs share the 12 GB/s uplink; cancelling one at
    // t=0 restores the survivor's full share → it completes at 1 s, not
    // the contended 2 s.
    let victim = s.start_transfer(&r0, (12.0 * GBPS) as u64, 1, 0).unwrap();
    s.start_transfer(&r1, (12.0 * GBPS) as u64, 2, 0).unwrap();
    assert!(s.cancel_transfer(victim).unwrap());
    let (t, c) = s.next().unwrap();
    assert!(matches!(c, Completion::Transfer { tag: 2, .. }));
    assert!((t - 1.0).abs() < 1e-6, "t = {t}");
    // The cancelled transfer never completes.
    assert!(s.next().is_none());
    // Attempted traffic stays accounted on its channels.
    assert!(s.stats().channel_bytes[r0[0]] >= (12.0 * GBPS) as u64);
}

#[test]
fn cancel_mid_flight_keeps_survivor_progress() {
    let (mut s, topo) = sim();
    let r = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    // Same route → same flight. 6 GB each on the 12 GB/s path: the pair
    // drains at 6 GB/s per member. Park a timer at 0.5 s so we can
    // cancel mid-flight: 3 GB each moved, 3 GB left for the survivor at
    // a restored 12 GB/s → completion at 0.75 s.
    let victim = s.start_transfer(&r, (6.0 * GBPS) as u64, 1, 0).unwrap();
    s.start_transfer(&r, (6.0 * GBPS) as u64, 2, 0).unwrap();
    s.set_timer(0.5, 9, 0).unwrap();
    let (t, c) = s.next().unwrap();
    assert_eq!(c, Completion::Timer { tag: 9 });
    assert!((t - 0.5).abs() < 1e-9);
    assert!(s.cancel_transfer(victim).unwrap());
    let (t, c) = s.next().unwrap();
    assert!(matches!(c, Completion::Transfer { tag: 2, .. }));
    assert!((t - 0.75).abs() < 1e-6, "t = {t}");
}

#[test]
fn cancel_immediate_and_unknown_transfers() {
    let (mut s, _) = sim();
    // Zero-byte transfers are queued as immediates: cancellable until
    // delivered, and their queued event becomes inert.
    let id = s.start_transfer(&[], 0, 5, 0).unwrap();
    assert!(s.cancel_transfer(id).unwrap());
    assert!(s.next().is_none(), "cancelled immediate must not deliver");
    // A completed transfer is no longer cancellable.
    let id = s.start_transfer(&[], 0, 6, 0).unwrap();
    let (_, c) = s.next().unwrap();
    assert!(matches!(c, Completion::Transfer { tag: 6, .. }));
    assert!(!s.cancel_transfer(id).unwrap());
    // Never-issued ids are unknown, not an error.
    assert!(!s.cancel_transfer(999).unwrap());
}

/// Cancellation must be mode-invariant: the dense reference and the fast
/// indexed engine see identical post-cancel traces.
#[test]
fn cancel_matches_dense_reference() {
    let run = |dense: bool| {
        let topo = commodity_4x1080ti();
        let mut s = if dense {
            Simulator::new_dense_reference(&topo)
        } else {
            Simulator::new(&topo)
        };
        let mut ids = Vec::new();
        for g in 0..4 {
            let r = topo
                .route(Endpoint::Gpu(g), Endpoint::Host)
                .unwrap()
                .to_vec();
            ids.push(
                s.start_transfer(&r, 2_000_000_000 * (g as u64 + 1), 100 + g as u64, 0)
                    .unwrap(),
            );
        }
        s.set_timer(0.2, 50, 0).unwrap();
        let mut trace = Vec::new();
        let (t, c) = s.next().unwrap();
        trace.push((t.to_bits(), format!("{c:?}")));
        s.cancel_transfer(ids[2]).unwrap();
        while let Some((t, c)) = s.next() {
            trace.push((t.to_bits(), format!("{c:?}")));
        }
        for (c, busy) in s.stats().channel_busy_secs.iter().enumerate() {
            trace.push((busy.to_bits(), format!("busy[{c}]")));
        }
        trace
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn reset_simulator_replays_byte_identically() {
    // Drive a mixed script (transfers, timers, compute, a cancel) and
    // record the exact completion stream bit-for-bit; a reset simulator
    // must reproduce it, including stats and counters, from any dirty
    // prior state — even mid-flight.
    let topo = commodity_4x1080ti();
    let script = |s: &mut Simulator| -> Vec<(u64, String)> {
        let mut ids = Vec::new();
        for g in 0..4 {
            let r = topo
                .route(Endpoint::Gpu(g), Endpoint::Host)
                .unwrap()
                .to_vec();
            ids.push(
                s.start_transfer(&r, 1_500_000_000 * (g as u64 + 1), 10 + g as u64, g as u32)
                    .unwrap(),
            );
        }
        s.set_timer(0.1, 77, 0).unwrap();
        s.submit_compute(1, 0.05, 88).unwrap();
        let mut trace = Vec::new();
        let (t, c) = s.next().unwrap();
        trace.push((t.to_bits(), format!("{c:?}")));
        s.cancel_transfer(ids[3]).unwrap();
        while let Some((t, c)) = s.next() {
            trace.push((t.to_bits(), format!("{c:?}")));
        }
        for (ch, busy) in s.stats().channel_busy_secs.iter().enumerate() {
            trace.push((busy.to_bits(), format!("busy[{ch}]")));
        }
        trace
    };
    let mut fresh = Simulator::new(&topo);
    let want = script(&mut fresh);
    // Dirty the recycled instance: leave transfers in flight, then reset.
    let mut pooled = Simulator::new(&topo);
    let r = topo
        .route(Endpoint::Gpu(0), Endpoint::Host)
        .unwrap()
        .to_vec();
    pooled.start_transfer(&r, 5_000_000_000, 999, 0).unwrap();
    pooled.set_timer(9.0, 998, 0).unwrap();
    let _ = pooled.next();
    pooled.reset(&topo);
    assert_eq!(script(&mut pooled), want);
    // And again, proving repeated recycling stays stable.
    pooled.reset(&topo);
    assert_eq!(script(&mut pooled), want);
}
