//! Simulation statistics.

/// Aggregate counters maintained by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Seconds each GPU spent executing kernels.
    pub gpu_busy_secs: Vec<f64>,
    /// Bytes moved over each channel (per channel on every route hop).
    pub channel_bytes: Vec<u64>,
    /// Seconds each channel had at least one active transfer.
    pub channel_busy_secs: Vec<f64>,
}

impl SimStats {
    /// Creates zeroed stats for `gpus` devices and `channels` channels.
    pub fn new(gpus: usize, channels: usize) -> Self {
        SimStats {
            gpu_busy_secs: vec![0.0; gpus],
            channel_bytes: vec![0u64; channels],
            channel_busy_secs: vec![0.0; channels],
        }
    }

    /// Utilisation of GPU `g` over a horizon of `total_secs`.
    pub fn gpu_utilisation(&self, g: usize, total_secs: f64) -> f64 {
        if total_secs <= 0.0 {
            return 0.0;
        }
        self.gpu_busy_secs.get(g).copied().unwrap_or(0.0) / total_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let s = SimStats::new(2, 3);
        assert_eq!(s.gpu_busy_secs, vec![0.0, 0.0]);
        assert_eq!(s.channel_bytes, vec![0, 0, 0]);
    }

    #[test]
    fn utilisation_handles_edges() {
        let mut s = SimStats::new(1, 0);
        s.gpu_busy_secs[0] = 2.0;
        assert_eq!(s.gpu_utilisation(0, 4.0), 0.5);
        assert_eq!(s.gpu_utilisation(0, 0.0), 0.0);
        assert_eq!(s.gpu_utilisation(9, 4.0), 0.0);
    }
}
