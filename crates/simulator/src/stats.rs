//! Simulation statistics.

/// Aggregate counters maintained by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Seconds each GPU spent executing kernels.
    pub gpu_busy_secs: Vec<f64>,
    /// Bytes moved over each channel (per channel on every route hop).
    pub channel_bytes: Vec<u64>,
    /// Seconds each channel had at least one active transfer.
    pub channel_busy_secs: Vec<f64>,
}

impl SimStats {
    /// Creates zeroed stats for `gpus` devices and `channels` channels.
    pub fn new(gpus: usize, channels: usize) -> Self {
        SimStats {
            gpu_busy_secs: vec![0.0; gpus],
            channel_bytes: vec![0u64; channels],
            channel_busy_secs: vec![0.0; channels],
        }
    }

    /// Utilisation of GPU `g` over a horizon of `total_secs`.
    pub fn gpu_utilisation(&self, g: usize, total_secs: f64) -> f64 {
        if total_secs <= 0.0 {
            return 0.0;
        }
        self.gpu_busy_secs.get(g).copied().unwrap_or(0.0) / total_secs
    }
}

/// Diagnostic counters of the network core. These are *structural*
/// measurements (how many per-transfer rate derivations, how much heap
/// traffic), not wall-clock timings, so tests can assert the
/// O(affected) complexity contract deterministically: an event on one
/// route must not re-derive rates for transfers on disjoint routes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Per-flight bottleneck-rate derivations (one per affected flight
    /// per network event, plus one for each flight restart from empty).
    pub rate_recomputes: u64,
    /// Departure-queue entries pushed (exactly one per routed transfer).
    pub queue_pushes: u64,
    /// Network-check events processed with a valid generation.
    pub network_checks: u64,
    /// Route classes (flights) created so far — a gauge, bounded by the
    /// number of distinct routes ever used, not by in-flight transfers.
    pub route_classes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_counters_default_is_zeroed() {
        let c = NetCounters::default();
        assert_eq!(c.rate_recomputes, 0);
        assert_eq!(c.queue_pushes, 0);
        assert_eq!(c.network_checks, 0);
        assert_eq!(c.route_classes, 0);
    }

    #[test]
    fn new_is_zeroed() {
        let s = SimStats::new(2, 3);
        assert_eq!(s.gpu_busy_secs, vec![0.0, 0.0]);
        assert_eq!(s.channel_bytes, vec![0, 0, 0]);
    }

    #[test]
    fn utilisation_handles_edges() {
        let mut s = SimStats::new(1, 0);
        s.gpu_busy_secs[0] = 2.0;
        assert_eq!(s.gpu_utilisation(0, 4.0), 0.5);
        assert_eq!(s.gpu_utilisation(0, 0.0), 0.0);
        assert_eq!(s.gpu_utilisation(9, 4.0), 0.0);
    }
}
