//! Network hot-path stress: many concurrent transfers over shared
//! channels, timed in wall clock. Used to measure the cost of the
//! fair-share rate recomputation (`repro bench` records the same figure).
//!
//! Usage: `cargo run --release -p harmony-simulator --example net_stress
//! [transfers] [waves]`

use harmony_simulator::Simulator;
use harmony_topology::presets::{commodity_server, CommodityParams, GBPS};
use harmony_topology::Endpoint;

fn main() {
    let transfers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let waves: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let gpus = 8;
    let topo = commodity_server(CommodityParams {
        num_gpus: gpus,
        gpus_per_switch: 4,
        pcie_bw: 12.0 * GBPS,
        host_uplink_bw: 12.0 * GBPS,
        gpu_mem: 11 << 30,
        gpu_flops: 11e12,
    })
    .expect("topology");
    let routes: Vec<Vec<usize>> = (0..gpus)
        .map(|g| {
            topo.route(Endpoint::Gpu(g), Endpoint::Host)
                .expect("route")
                .to_vec()
        })
        .collect();

    let start = std::time::Instant::now();
    let mut s = Simulator::new(&topo);
    let mut events: u64 = 0;
    for wave in 0..waves {
        for i in 0..transfers {
            let g = i % gpus;
            // Varied sizes so completions interleave and every arrival /
            // departure re-shares the bottleneck uplink.
            let bytes = (1 + (i as u64 % 17)) * 100_000_000;
            s.start_transfer(&routes[g], bytes, (wave * transfers + i) as u64, g as u32)
                .expect("transfer");
        }
        while s.next().is_some() {
            events += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "net_stress: {} transfers x {} waves, {} completions, {:.3} s wall, {:.0} events/s",
        transfers,
        waves,
        events,
        secs,
        events as f64 / secs
    );
    println!("counters: {:?}", s.net_counters());
}
