//! Property-based tests on the discrete-event engine: conservation,
//! bandwidth bounds, and determinism for arbitrary event mixes.

use harmony_simulator::{Completion, Simulator};
use harmony_topology::presets::{commodity_server, CommodityParams, GBPS};
use harmony_topology::Endpoint;
use proptest::prelude::*;

fn topo(n: usize) -> harmony_topology::Topology {
    commodity_server(CommodityParams {
        num_gpus: n,
        gpus_per_switch: n,
        pcie_bw: 2.0 * GBPS,
        host_uplink_bw: GBPS,
        gpu_mem: 1 << 30,
        gpu_flops: 1e12,
    })
    .expect("valid")
}

#[derive(Debug, Clone)]
enum Job {
    Compute { gpu: usize, millis: u16 },
    ToHost { gpu: usize, mb: u16 },
    FromHost { gpu: usize, mb: u16 },
    P2p { src: usize, dst: usize, mb: u16 },
}

fn job_strategy(n: usize) -> impl Strategy<Value = Job> {
    prop_oneof![
        ((0..n), 1u16..200).prop_map(|(gpu, millis)| Job::Compute { gpu, millis }),
        ((0..n), 1u16..64).prop_map(|(gpu, mb)| Job::ToHost { gpu, mb }),
        ((0..n), 1u16..64).prop_map(|(gpu, mb)| Job::FromHost { gpu, mb }),
        ((0..n), (0..n), 1u16..64).prop_map(|(src, dst, mb)| Job::P2p { src, dst, mb }),
    ]
}

fn run(jobs: &[Job], n: usize) -> (Vec<(u64, String)>, f64, u64) {
    let t = topo(n);
    let mut sim = Simulator::new(&t);
    let mut expected = 0usize;
    let mut issued_bytes = 0u64;
    for (i, job) in jobs.iter().enumerate() {
        match *job {
            Job::Compute { gpu, millis } => {
                sim.submit_compute(gpu, millis as f64 / 1000.0, i as u64)
                    .unwrap();
                expected += 1;
            }
            Job::ToHost { gpu, mb } => {
                let route = t
                    .route(Endpoint::Gpu(gpu), Endpoint::Host)
                    .unwrap()
                    .to_vec();
                let b = mb as u64 * 1_000_000;
                issued_bytes += b * route.len() as u64;
                sim.start_transfer(&route, b, i as u64, 0).unwrap();
                expected += 1;
            }
            Job::FromHost { gpu, mb } => {
                let route = t
                    .route(Endpoint::Host, Endpoint::Gpu(gpu))
                    .unwrap()
                    .to_vec();
                let b = mb as u64 * 1_000_000;
                issued_bytes += b * route.len() as u64;
                sim.start_transfer(&route, b, i as u64, 0).unwrap();
                expected += 1;
            }
            Job::P2p { src, dst, mb } => {
                if src != dst {
                    let route = t
                        .route(Endpoint::Gpu(src), Endpoint::Gpu(dst))
                        .unwrap()
                        .to_vec();
                    let b = mb as u64 * 1_000_000;
                    issued_bytes += b * route.len() as u64;
                    sim.start_transfer(&route, b, i as u64, 0).unwrap();
                    expected += 1;
                }
            }
        }
    }
    let mut events = Vec::new();
    let mut last_t = 0.0f64;
    while let Some((t_now, c)) = sim.next() {
        assert!(t_now >= last_t - 1e-9, "time went backwards");
        last_t = t_now;
        events.push((t_now.to_bits(), format!("{c:?}")));
    }
    assert_eq!(events.len(), expected, "every job completes exactly once");
    let moved: u64 = sim.stats().channel_bytes.iter().sum();
    assert_eq!(moved, issued_bytes, "byte conservation per channel hop");
    (events, last_t, issued_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_work_completes_and_is_deterministic(
        jobs in prop::collection::vec(job_strategy(3), 1..40)
    ) {
        let a = run(&jobs, 3);
        let b = run(&jobs, 3);
        prop_assert_eq!(a.0, b.0, "identical scripts must replay identically");
    }

    #[test]
    fn transfers_never_beat_zero_contention_time(
        gpu in 0usize..3,
        mb in 1u16..128,
        extra in prop::collection::vec((0usize..3, 1u16..128), 0..6),
    ) {
        let t = topo(3);
        let mut sim = Simulator::new(&t);
        let route = t.route(Endpoint::Gpu(gpu), Endpoint::Host).unwrap().to_vec();
        let bytes = mb as u64 * 1_000_000;
        sim.start_transfer(&route, bytes, 999, 0).unwrap();
        for (i, (g, emb)) in extra.iter().enumerate() {
            let r = t.route(Endpoint::Gpu(*g), Endpoint::Host).unwrap().to_vec();
            sim.start_transfer(&r, *emb as u64 * 1_000_000, i as u64, 0).unwrap();
        }
        let ideal = t
            .ideal_transfer_secs(Endpoint::Gpu(gpu), Endpoint::Host, bytes)
            .unwrap();
        while let Some((t_done, c)) = sim.next() {
            if matches!(c, Completion::Transfer { tag: 999, .. }) {
                prop_assert!(
                    t_done >= ideal - 1e-9,
                    "finished at {} < ideal {}", t_done, ideal
                );
                return Ok(());
            }
        }
        prop_assert!(false, "tagged transfer never completed");
    }

    #[test]
    fn compute_streams_serialize_per_gpu(
        durations in prop::collection::vec(1u16..100, 1..10),
    ) {
        let t = topo(1);
        let mut sim = Simulator::new(&t);
        let total: f64 = durations.iter().map(|&d| d as f64 / 1000.0).sum();
        for (i, &d) in durations.iter().enumerate() {
            sim.submit_compute(0, d as f64 / 1000.0, i as u64).unwrap();
        }
        let mut last = 0.0;
        let mut count = 0;
        while let Some((t_now, _)) = sim.next() {
            last = t_now;
            count += 1;
        }
        prop_assert_eq!(count, durations.len());
        prop_assert!((last - total).abs() < 1e-9, "FIFO stream: {} vs {}", last, total);
    }
}
