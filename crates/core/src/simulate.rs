//! High-level simulation front-end: pick a scheme, a model, a server, a
//! workload — get the numbers the paper plots.

use harmony_models::ModelSpec;
use harmony_sched::{
    plan_baseline_dp, plan_baseline_pp, plan_harmony_dp, plan_harmony_pp, plan_pipe_1f1b,
    ExecError, ExecutionPlan, SimExecutor, WorkloadConfig,
};
use harmony_topology::Topology;
use harmony_trace::{summary::RunSummary, Trace};

/// The training schemes of the paper's analytical comparison, plus the
/// PipeDream 1F1B-with-weight-stashing extension (ROADMAP item 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Data parallelism + per-GPU memory virtualization.
    BaselineDp,
    /// Pipeline parallelism (1F1B) + per-GPU memory virtualization.
    BaselinePp,
    /// Harmony data parallelism.
    HarmonyDp,
    /// Harmony pipeline parallelism.
    HarmonyPp,
    /// 1F1B with PipeDream weight stashing: per-GPU virtualization plus
    /// one stashed weight version per in-flight microbatch, so backward
    /// sees the weights its forward used.
    Pipe1F1B,
}

impl SchemeKind {
    /// Every scheme, baselines first, extensions last.
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::BaselineDp,
        SchemeKind::BaselinePp,
        SchemeKind::HarmonyDp,
        SchemeKind::HarmonyPp,
        SchemeKind::Pipe1F1B,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::BaselineDp => "baseline-dp",
            SchemeKind::BaselinePp => "baseline-pp",
            SchemeKind::HarmonyDp => "harmony-dp",
            SchemeKind::HarmonyPp => "harmony-pp",
            SchemeKind::Pipe1F1B => "pipe-1f1b",
        }
    }

    /// Parses a display name back into a scheme (the `--scheme` grid
    /// filters of `repro`). Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<SchemeKind> {
        SchemeKind::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The matching analytical-model scheme.
    pub fn analytical(&self) -> harmony_analytical::Scheme {
        match self {
            SchemeKind::BaselineDp => harmony_analytical::Scheme::BaselineDp,
            SchemeKind::BaselinePp => harmony_analytical::Scheme::BaselinePp,
            SchemeKind::HarmonyDp => harmony_analytical::Scheme::HarmonyDp,
            SchemeKind::HarmonyPp => harmony_analytical::Scheme::HarmonyPp,
            SchemeKind::Pipe1F1B => harmony_analytical::Scheme::Pipe1F1B,
        }
    }
}

/// Lowers a scheme into an execution plan for `topo.num_gpus()` GPUs.
pub fn plan(
    scheme: SchemeKind,
    model: &ModelSpec,
    topo: &Topology,
    workload: &WorkloadConfig,
) -> Result<ExecutionPlan, ExecError> {
    let n = topo.num_gpus();
    let p = match scheme {
        SchemeKind::BaselineDp => plan_baseline_dp(model, n, workload),
        SchemeKind::BaselinePp => plan_baseline_pp(model, n, workload),
        SchemeKind::HarmonyDp => plan_harmony_dp(model, n, workload),
        SchemeKind::HarmonyPp => plan_harmony_pp(model, n, workload),
        SchemeKind::Pipe1F1B => plan_pipe_1f1b(model, n, workload),
    };
    p.map_err(|e| ExecError::Plan(e.to_string()))
}

/// Plans and simulates one training iteration of `scheme`.
pub fn run(
    scheme: SchemeKind,
    model: &ModelSpec,
    topo: &Topology,
    workload: &WorkloadConfig,
) -> Result<(RunSummary, Trace), ExecError> {
    let plan_start = std::time::Instant::now();
    let plan = plan(scheme, model, topo, workload)?;
    let plan_secs = plan_start.elapsed().as_secs_f64();
    let mut exec = SimExecutor::new(topo, model, &plan)?;
    exec.add_setup_secs(plan_secs);
    exec.run()
}

/// Like [`run`], but hands the executor to `configure` before starting
/// it, so callers can attach memory/executor observers, inject timed
/// faults, or set an event budget without re-implementing the
/// plan-then-execute dance (the executor borrows the plan, so the plan
/// must be owned by this frame). This is the entry point the conformance
/// harness (`harmony-harness`) builds its oracle-instrumented runs on.
pub fn run_configured(
    scheme: SchemeKind,
    model: &ModelSpec,
    topo: &Topology,
    workload: &WorkloadConfig,
    configure: impl FnOnce(&mut SimExecutor<'_>) -> Result<(), ExecError>,
) -> Result<(RunSummary, Trace), ExecError> {
    let plan_start = std::time::Instant::now();
    let plan = plan(scheme, model, topo, workload)?;
    let plan_secs = plan_start.elapsed().as_secs_f64();
    let mut exec = SimExecutor::new(topo, model, &plan)?;
    exec.add_setup_secs(plan_secs);
    configure(&mut exec)?;
    exec.run()
}

/// Like [`run`], but replays the plan `iterations` times back-to-back
/// (fresh transients per iteration, shared persistent state) so that
/// totals divided by `iterations` approach steady-state per-iteration
/// figures without cold-start edges.
pub fn run_iterations(
    scheme: SchemeKind,
    model: &ModelSpec,
    topo: &Topology,
    workload: &WorkloadConfig,
    iterations: u32,
) -> Result<(RunSummary, Trace), ExecError> {
    let plan_start = std::time::Instant::now();
    let plan = plan(scheme, model, topo, workload)?;
    let plan_secs = plan_start.elapsed().as_secs_f64();
    let mut exec = SimExecutor::with_iterations(topo, model, &plan, iterations)?;
    exec.add_setup_secs(plan_secs);
    exec.run()
}

/// Like [`run`], but with prefetch/double-buffering enabled: each GPU
/// overlaps the next task's swap-ins with the current kernel, trading
/// extra resident memory for critical-path latency (the §4 trade-off).
pub fn run_with_prefetch(
    scheme: SchemeKind,
    model: &ModelSpec,
    topo: &Topology,
    workload: &WorkloadConfig,
) -> Result<(RunSummary, Trace), ExecError> {
    let plan_start = std::time::Instant::now();
    let mut plan = plan(scheme, model, topo, workload)?;
    plan.scheme = plan.scheme.clone().with_prefetch();
    plan.name = format!("{}+prefetch", plan.name);
    let plan_secs = plan_start.elapsed().as_secs_f64();
    let mut exec = SimExecutor::new(topo, model, &plan)?;
    exec.add_setup_secs(plan_secs);
    exec.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_models::TransformerConfig;
    use harmony_topology::presets::{commodity_server, CommodityParams, GBPS};

    #[test]
    fn names_and_analytical_mapping_are_consistent() {
        for s in SchemeKind::ALL {
            assert!(!s.name().is_empty());
        }
        assert_eq!(
            SchemeKind::HarmonyPp.analytical(),
            harmony_analytical::Scheme::HarmonyPp
        );
    }

    #[test]
    fn run_executes_all_schemes_on_a_small_server() {
        let model = TransformerConfig::tiny().build();
        let topo = commodity_server(CommodityParams {
            num_gpus: 2,
            gpus_per_switch: 2,
            pcie_bw: GBPS,
            host_uplink_bw: GBPS,
            gpu_mem: 10 * 1024 * 1024,
            gpu_flops: 1e9,
        })
        .unwrap();
        let w = WorkloadConfig {
            microbatches: 2,
            ubatch_size: 1,
            pack_size: 1,
            opt_slots: 2,
            group_size: None,
            recompute: false,
        };
        for scheme in SchemeKind::ALL {
            let (summary, trace) = run(scheme, &model, &topo, &w).unwrap();
            assert!(summary.sim_secs > 0.0, "{}", scheme.name());
            assert!(!trace.spans.is_empty());
        }
    }

    #[test]
    fn run_configured_applies_the_configuration() {
        let model = TransformerConfig::tiny().build();
        let topo = commodity_server(CommodityParams {
            num_gpus: 2,
            gpus_per_switch: 2,
            pcie_bw: GBPS,
            host_uplink_bw: GBPS,
            gpu_mem: 10 * 1024 * 1024,
            gpu_flops: 1e9,
        })
        .unwrap();
        let w = WorkloadConfig {
            microbatches: 2,
            ubatch_size: 1,
            pack_size: 1,
            opt_slots: 0,
            group_size: None,
            recompute: false,
        };
        // An absurdly small event budget must surface as Stuck, proving
        // the closure ran against the executor before the run started.
        let starved = run_configured(SchemeKind::HarmonyDp, &model, &topo, &w, |exec| {
            exec.set_event_budget(3);
            Ok(())
        });
        assert!(
            matches!(starved, Err(ExecError::Stuck(_))),
            "expected Stuck, got {starved:?}"
        );
        // And a no-op configuration behaves exactly like `run`.
        let (summary, _) =
            run_configured(SchemeKind::HarmonyDp, &model, &topo, &w, |_| Ok(())).unwrap();
        assert!(summary.sim_secs > 0.0);
    }
}
