//! # harmony
//!
//! A reproduction of **"Doing more with less: Training large DNN models on
//! commodity servers for the masses"** (Li, Phanishayee, Murray, Kim —
//! HotOS '21): the *Harmony* system for training models whose footprint
//! exceeds the aggregate GPU memory of a commodity multi-GPU server.
//!
//! Harmony gives the user the illusion of **one virtual accelerator with
//! practically unbounded memory**. Under the hood it decomposes training
//! into fine-grained tasks, late-binds them to physical devices, and
//! coordinates a coherent virtual memory across all CPU and GPU memory,
//! applying four optimizations: input-batch grouping, just-in-time
//! scheduling, p2p transfers, and task packing/load balancing.
//!
//! This crate is the user-facing façade over the workspace:
//!
//! * [`simulate`] — run any of the four training schemes (baseline
//!   DP/PP, Harmony-DP/PP) on the discrete-event simulator of a commodity
//!   server and obtain throughput, swap volumes, memory peaks, and an
//!   execution trace. This is the substrate for every figure/table
//!   reproduction (see `harmony-bench`).
//! * [`functional`] — *actually train* a real (small) model through
//!   Harmony's decomposed, grouped, JIT schedule on capacity-limited
//!   virtual devices with real tensor swapping, and verify bit-identical
//!   parameters against the user's sequential program.
//! * [`sweep`] — run whole *grids* of simulations through a
//!   [`sweep::SweepSession`]: plans are memoized across cells and
//!   executor arenas recycled, byte-identically to fresh runs.
//!
//! ```
//! use harmony::prelude::*;
//!
//! // Simulate the paper's Fig 2(a) point: baseline DP on 4 × 11 GB GPUs.
//! let model = TransformerConfig::bert_xxl().build();
//! let topo = presets::commodity_4x1080ti();
//! let workload = WorkloadConfig { microbatches: 2, ubatch_size: 5, ..Default::default() };
//! let (summary, _trace) = simulate::run(simulate::SchemeKind::BaselineDp, &model, &topo, &workload).unwrap();
//! assert!(summary.global_swap() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod functional;
pub mod simulate;
pub mod sweep;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::functional::{FunctionalSession, SessionConfig, StepReport};
    pub use crate::simulate;
    pub use crate::sweep::{CellSpec, SweepSession};
    pub use harmony_analytical as analytical;
    pub use harmony_models::exec::{mlp, tiny_transformer, ExecModel};
    pub use harmony_models::{zoo, LayerClass, LayerSpec, ModelSpec, TransformerConfig};
    pub use harmony_sched::{SchemeConfig, WorkloadConfig};
    pub use harmony_tensor::optim::Optimizer;
    pub use harmony_tensor::rng::SplitMix64;
    pub use harmony_tensor::Tensor;
    pub use harmony_topology::{presets, Topology};
    pub use harmony_trace::table::{f2, gb};
    pub use harmony_trace::{gantt, summary::RunSummary, table::Table, Span, SpanKind, Trace};
}

pub use functional::{FunctionalSession, SessionConfig, StepReport};
