//! Functional execution: really train a model through Harmony's decomposed
//! schedule on capacity-limited virtual devices.
//!
//! This is the mode that proves the *semantics* of the system: a
//! [`FunctionalSession`] takes the user's sequential model (an
//! [`ExecModel`]) and executes each training step the Harmony way —
//!
//! * the minibatch is split into microbatches (task decomposition),
//! * layers are placed across virtual devices (late binding / packing),
//! * execution is **layer-major** (input-batch grouping): each layer runs
//!   all microbatches back-to-back while its weights are resident,
//! * weight updates run **just-in-time**, immediately after a layer's last
//!   backward microbatch,
//! * tensors move between host and device arenas under *hard capacity
//!   enforcement* — a model whose training footprint exceeds every
//!   device's memory still trains, with evictions and swap-ins tracked by
//!   the same `harmony-memory` manager the simulator uses, and real
//!   payloads moving through a [`TensorStore`],
//!
//! and the resulting parameters are **bit-identical** to the user's
//! sequential gradient-accumulation program
//! ([`ExecModel::train_step_accum`]) — the paper's "illusion of a single
//! virtual device with practically unbounded memory".

use harmony_memory::{Lru, MemError, MemoryManager, Residency, TensorClass, TensorId, TensorStore};
use harmony_models::exec::{ExecModel, SkipSource};
use harmony_tensor::nn::{cross_entropy, Layer};
use harmony_tensor::ops;
use harmony_tensor::optim::Optimizer;
use harmony_tensor::{Tensor, TensorError};

/// Errors from functional execution.
#[derive(Debug)]
pub enum HarmonyError {
    /// Numeric/shape error from the tensor engine.
    Tensor(TensorError),
    /// Memory-management error (e.g. one layer's working set exceeds the
    /// device capacity — the model is too large even for virtualization).
    Mem(MemError),
    /// Invalid configuration.
    Config(String),
}

impl std::fmt::Display for HarmonyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarmonyError::Tensor(e) => write!(f, "tensor: {e}"),
            HarmonyError::Mem(e) => write!(f, "memory: {e}"),
            HarmonyError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for HarmonyError {}

impl From<TensorError> for HarmonyError {
    fn from(e: TensorError) -> Self {
        HarmonyError::Tensor(e)
    }
}
impl From<MemError> for HarmonyError {
    fn from(e: MemError) -> Self {
        HarmonyError::Mem(e)
    }
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Byte capacity of each virtual device.
    pub device_capacities: Vec<u64>,
    /// Microbatches per training step.
    pub microbatches: usize,
    /// Optimizer.
    pub optimizer: Optimizer,
    /// Parameter-initialisation seed.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            device_capacities: vec![u64::MAX / 4],
            microbatches: 1,
            optimizer: Optimizer::adam(1e-3),
            seed: 0,
        }
    }
}

/// Result of one training step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Mean loss across microbatches.
    pub loss: f32,
    /// Host→device bytes swapped during this step.
    pub swap_in_bytes: u64,
    /// Device→host bytes swapped during this step.
    pub swap_out_bytes: u64,
    /// Device→device bytes moved during this step.
    pub p2p_bytes: u64,
    /// Peak resident bytes per device so far.
    pub peak_bytes: Vec<u64>,
}

/// A live Harmony training session over virtual devices. See module docs.
pub struct FunctionalSession {
    model: ExecModel,
    cfg: SessionConfig,
    mm: MemoryManager,
    store: TensorStore,
    param_ids: Vec<Vec<TensorId>>,
    grad_ids: Vec<Vec<TensorId>>,
    opt_ids: Vec<Vec<Vec<TensorId>>>,
    placement: Vec<usize>,
    step: u64,
}

impl FunctionalSession {
    /// Creates a session: initialises parameters (host-resident), zeroed
    /// gradient buffers and optimizer state, and places layers across
    /// devices in contiguous blocks balanced by parameter bytes.
    pub fn new(model: ExecModel, cfg: SessionConfig) -> Result<Self, HarmonyError> {
        if cfg.device_capacities.is_empty() {
            return Err(HarmonyError::Config("need at least one device".to_string()));
        }
        if cfg.microbatches == 0 {
            return Err(HarmonyError::Config(
                "microbatches must be positive".to_string(),
            ));
        }
        let mut mm = MemoryManager::new(cfg.device_capacities.clone());
        let mut store = TensorStore::new();
        let params = model.init_params(cfg.seed);
        let mut param_ids = Vec::new();
        let mut grad_ids = Vec::new();
        let mut opt_ids = Vec::new();
        for (l, pset) in params.into_iter().enumerate() {
            let mut pids = Vec::new();
            let mut gids = Vec::new();
            let mut oids = Vec::new();
            for (pi, p) in pset.into_iter().enumerate() {
                let gid =
                    mm.register_on_host(format!("L{l}.dW{pi}"), p.size_bytes(), TensorClass::Grad);
                store.put(gid, Tensor::zeros(p.shape().clone()));
                gids.push(gid);
                let mut slot_ids = Vec::new();
                for (si, s) in cfg.optimizer.init_state(&p).into_iter().enumerate() {
                    let sid = mm.register_on_host(
                        format!("L{l}.K{pi}.{si}"),
                        s.size_bytes(),
                        TensorClass::OptState,
                    );
                    store.put(sid, s);
                    slot_ids.push(sid);
                }
                oids.push(slot_ids);
                let pid =
                    mm.register_on_host(format!("L{l}.W{pi}"), p.size_bytes(), TensorClass::Weight);
                store.put(pid, p);
                pids.push(pid);
            }
            param_ids.push(pids);
            grad_ids.push(gids);
            opt_ids.push(oids);
        }
        let placement = place_layers(&model, cfg.device_capacities.len());
        Ok(FunctionalSession {
            model,
            cfg,
            mm,
            store,
            param_ids,
            grad_ids,
            opt_ids,
            placement,
            step: 0,
        })
    }

    /// The model being trained.
    pub fn model(&self) -> &ExecModel {
        &self.model
    }

    /// Device each layer is bound to.
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// Current parameter tensors, copied out (host view).
    pub fn params(&self) -> Result<Vec<Vec<Tensor>>, HarmonyError> {
        self.param_ids
            .iter()
            .map(|pids| {
                pids.iter()
                    .map(|&id| self.store.get(id).cloned().map_err(HarmonyError::from))
                    .collect()
            })
            .collect()
    }

    /// Makes `id` resident on `dev` (swap-in or p2p move, evicting as
    /// needed) and pins it; pushes onto `pins`.
    fn fetch_pin(
        &mut self,
        id: TensorId,
        dev: usize,
        pins: &mut Vec<TensorId>,
    ) -> Result<(), HarmonyError> {
        match self.mm.info(id)?.residency {
            Residency::OnDevice(d) if d == dev => {}
            Residency::OnDevice(_) => {
                self.make_room(dev, self.mm.info(id)?.bytes)?;
                self.mm.begin_p2p(id, dev)?;
                self.mm.finish_move_to_device(id)?;
            }
            Residency::OnHost => {
                self.make_room(dev, self.mm.info(id)?.bytes)?;
                self.mm.begin_swap_in(id, dev)?;
                self.mm.finish_move_to_device(id)?;
            }
            ref other => {
                return Err(HarmonyError::Mem(MemError::InvalidState {
                    id,
                    op: "fetch",
                    state: format!("{other:?}"),
                }))
            }
        }
        self.mm.touch(id)?;
        self.mm.pin(id)?;
        pins.push(id);
        Ok(())
    }

    /// Evicts until `bytes` fit on `dev` (clean tensors drop for free —
    /// functional mode always runs the full Harmony scheme).
    fn make_room(&mut self, dev: usize, bytes: u64) -> Result<(), HarmonyError> {
        let victims = self.mm.make_room(dev, bytes, &Lru)?;
        for v in victims {
            if self.mm.can_drop(v)? {
                self.mm.drop_to_host(v)?;
            } else {
                self.mm.begin_swap_out(v)?;
                self.mm.finish_swap_out(v)?;
            }
        }
        Ok(())
    }

    /// Allocates a fresh tensor on `dev` with `payload`, evicting as needed.
    fn alloc(
        &mut self,
        name: String,
        payload: Tensor,
        class: TensorClass,
        dev: usize,
    ) -> Result<TensorId, HarmonyError> {
        let bytes = payload.size_bytes();
        self.make_room(dev, bytes)?;
        let id = self.mm.alloc_on_device(name, bytes, class, dev)?;
        self.store.put(id, payload);
        Ok(id)
    }

    fn unpin_all(&mut self, pins: &mut Vec<TensorId>) -> Result<(), HarmonyError> {
        for id in pins.drain(..) {
            self.mm.unpin(id)?;
        }
        Ok(())
    }

    /// Runs one Harmony training step (see module docs) and returns the
    /// report. `targets` are per-row class labels for the whole minibatch.
    pub fn train_step(
        &mut self,
        input: &Tensor,
        targets: &[usize],
    ) -> Result<StepReport, HarmonyError> {
        self.step += 1;
        let m = self.cfg.microbatches;
        let n_layers = self.model.layers.len();
        let swap_in_before: u64 = self.global_swap(harmony_memory::Direction::In);
        let swap_out_before: u64 = self.global_swap(harmony_memory::Direction::Out);
        let p2p_before = self.mm.stats().p2p_bytes;

        let chunks = ops::chunk_dim0(input, m)?;
        let rows = targets.len() / m;
        let scale = 1.0 / m as f32;

        // Input tensors live on the first layer's device.
        let mut input_ids = Vec::with_capacity(m);
        for (u, c) in chunks.iter().enumerate() {
            input_ids.push(self.alloc(
                format!("input.u{u}"),
                c.clone(),
                TensorClass::Activation,
                self.placement[0],
            )?);
        }

        // Forward, layer-major (input-batch grouping).
        let mut out_ids: Vec<Vec<TensorId>> = vec![Vec::new(); n_layers];
        let mut stash_ids: Vec<Vec<Vec<TensorId>>> = vec![Vec::new(); n_layers];
        let mut pins: Vec<TensorId> = Vec::new();
        for l in 0..n_layers {
            let dev = self.placement[l];
            let pids = self.param_ids[l].clone();
            for &pid in &pids {
                self.fetch_pin(pid, dev, &mut pins)?;
            }
            for u in 0..m {
                let x_id = if l == 0 {
                    input_ids[u]
                } else {
                    out_ids[l - 1][u]
                };
                self.fetch_pin(x_id, dev, &mut pins)?;
                let skip_id = match (&self.model.layers[l].op, self.model.layers[l].skip_from) {
                    (Layer::ResidualAdd, Some(SkipSource::Input)) => Some(input_ids[u]),
                    (Layer::ResidualAdd, Some(SkipSource::LayerOutput(j))) => Some(out_ids[j][u]),
                    (Layer::ResidualAdd, None) => {
                        return Err(HarmonyError::Config(format!(
                            "layer {l} residual without skip edge"
                        )))
                    }
                    _ => None,
                };
                if let Some(sid) = skip_id {
                    self.fetch_pin(sid, dev, &mut pins)?;
                }
                let params: Vec<Tensor> = self.param_ids[l]
                    .iter()
                    .map(|&id| self.store.get(id).cloned())
                    .collect::<Result<_, _>>()?;
                let x = self.store.get(x_id)?.clone();
                let out = match skip_id {
                    Some(sid) => {
                        let skip = self.store.get(sid)?.clone();
                        self.model.layers[l]
                            .op
                            .forward_with_skip(&params, &x, &skip)?
                    }
                    None => self.model.layers[l].op.forward(&params, &x)?,
                };
                self.unpin_all(&mut pins)?;
                // Re-pin weights for the remaining microbatches of this
                // layer (grouping keeps them resident).
                for &pid in &self.param_ids[l] {
                    self.mm.pin(pid)?;
                    pins.push(pid);
                }
                let oid = self.alloc(
                    format!("L{l}.Y.u{u}"),
                    out.output,
                    TensorClass::Activation,
                    dev,
                )?;
                out_ids[l].push(oid);
                let mut sids = Vec::new();
                for (si, s) in out.stash.tensors.into_iter().enumerate() {
                    sids.push(self.alloc(
                        format!("L{l}.stash{si}.u{u}"),
                        s,
                        TensorClass::Stash,
                        dev,
                    )?);
                }
                stash_ids[l].push(sids);
            }
            self.unpin_all(&mut pins)?;
        }

        // Loss (per microbatch), seeding the output gradients.
        let last = n_layers - 1;
        let last_dev = self.placement[last];
        let mut loss_sum = 0.0f32;
        // outgrad[l][u]: gradient w.r.t. layer l's output; `Some` once any
        // contribution has arrived (first contribution copies, later ones
        // accumulate — bit-compatible with the reference's slot logic).
        let mut outgrad: Vec<Vec<Option<TensorId>>> = vec![vec![None; m]; n_layers];
        let mut ingrad_seen = vec![false; m];
        for u in 0..m {
            let logits_id = out_ids[last][u];
            self.fetch_pin(logits_id, last_dev, &mut pins)?;
            let logits = self.store.get(logits_id)?;
            let tgt = &targets[u * rows..(u + 1) * rows];
            let (loss, dlogits) = cross_entropy(logits, tgt)?;
            loss_sum += loss;
            let dlogits = ops::scale(&dlogits, scale);
            self.unpin_all(&mut pins)?;
            let gid = self.alloc(
                format!("L{last}.dY.u{u}"),
                dlogits,
                TensorClass::Activation,
                last_dev,
            )?;
            outgrad[last][u] = Some(gid);
        }

        // Backward, layer-major reversed, with JIT updates.
        for l in (0..n_layers).rev() {
            let dev = self.placement[l];
            for u in 0..m {
                let Some(dy_id) = outgrad[l][u] else {
                    // Output never used downstream — nothing to propagate.
                    continue;
                };
                for pid in self.param_ids[l].clone() {
                    self.fetch_pin(pid, dev, &mut pins)?;
                }
                self.fetch_pin(dy_id, dev, &mut pins)?;
                for &sid in &stash_ids[l][u] {
                    self.fetch_pin(sid, dev, &mut pins)?;
                }
                let params: Vec<Tensor> = self.param_ids[l]
                    .iter()
                    .map(|&id| self.store.get(id).cloned())
                    .collect::<Result<_, _>>()?;
                let stash = harmony_tensor::nn::Stash {
                    tensors: stash_ids[l][u]
                        .iter()
                        .map(|&id| self.store.get(id).cloned())
                        .collect::<Result<_, _>>()?,
                };
                let dy = self.store.get(dy_id)?.clone();
                let (dx, grads) = self.model.layers[l].op.backward(&params, &stash, &dy)?;
                self.unpin_all(&mut pins)?;
                // Accumulate parameter gradients (dW += g), in place.
                let gids = self.grad_ids[l].clone();
                for (&gid, g) in gids.iter().zip(&grads.tensors) {
                    self.fetch_pin(gid, dev, &mut pins)?;
                    ops::axpy(self.store.get_mut(gid)?, 1.0, g)?;
                    self.mm.mark_dirty(gid)?;
                }
                self.unpin_all(&mut pins)?;
                // Propagate dx to the previous layer's output slot.
                if l > 0 {
                    self.add_outgrad(&mut outgrad, l - 1, u, dx, dev)?;
                } else {
                    ingrad_seen[u] = true; // input gradient: discarded
                }
                // Residual: duplicate dy to the skip source.
                if let (Layer::ResidualAdd, Some(src)) =
                    (&self.model.layers[l].op, self.model.layers[l].skip_from)
                {
                    match src {
                        SkipSource::Input => {}
                        SkipSource::LayerOutput(j) => {
                            self.add_outgrad(&mut outgrad, j, u, dy, dev)?;
                        }
                    }
                }
                // Dead after backward: this layer's stash and its dy.
                for &sid in &stash_ids[l][u] {
                    self.free_tensor(sid)?;
                }
                self.free_tensor(dy_id)?;
                outgrad[l][u] = None;
            }
            // JIT update: gradients just accumulated, weights resident.
            if !self.param_ids[l].is_empty() {
                for group in [self.param_ids[l].clone(), self.grad_ids[l].clone()] {
                    for id in group {
                        self.fetch_pin(id, dev, &mut pins)?;
                    }
                }
                for slots in self.opt_ids[l].clone() {
                    for sid in slots {
                        self.fetch_pin(sid, dev, &mut pins)?;
                    }
                }
                for pi in 0..self.param_ids[l].len() {
                    let g = self.store.get(self.grad_ids[l][pi])?.clone();
                    let mut state: Vec<Tensor> = self.opt_ids[l][pi]
                        .iter()
                        .map(|&id| self.store.get(id).cloned())
                        .collect::<Result<_, _>>()?;
                    let p = self.store.get_mut(self.param_ids[l][pi])?;
                    self.cfg.optimizer.step(p, &g, &mut state, self.step)?;
                    for (&sid, s) in self.opt_ids[l][pi].iter().zip(state) {
                        self.store.put(sid, s);
                        self.mm.mark_dirty(sid)?;
                    }
                    self.mm.mark_dirty(self.param_ids[l][pi])?;
                    // Reset dW' (Fig 5a update output).
                    self.store.get_mut(self.grad_ids[l][pi])?.zero_();
                    self.mm.mark_dirty(self.grad_ids[l][pi])?;
                }
                self.unpin_all(&mut pins)?;
            }
        }

        // Free remaining per-step tensors (inputs and layer outputs).
        for id in input_ids {
            self.free_tensor(id)?;
        }
        for ids in out_ids.iter().flatten() {
            self.free_tensor(*ids)?;
        }

        Ok(StepReport {
            loss: loss_sum * scale,
            swap_in_bytes: self.global_swap(harmony_memory::Direction::In) - swap_in_before,
            swap_out_bytes: self.global_swap(harmony_memory::Direction::Out) - swap_out_before,
            p2p_bytes: self.mm.stats().p2p_bytes - p2p_before,
            peak_bytes: (0..self.cfg.device_capacities.len())
                .map(|d| self.mm.peak_used(d).unwrap_or(0))
                .collect(),
        })
    }

    /// Forward-only inference: runs the input through the model under the
    /// same capacity-enforced, layer-major execution as training, but
    /// without stashing, gradients, or updates. Returns the final logits.
    pub fn evaluate(&mut self, input: &Tensor) -> Result<Tensor, HarmonyError> {
        let n_layers = self.model.layers.len();
        let mut pins: Vec<TensorId> = Vec::new();
        let mut x_id = self.alloc(
            "eval.input".to_string(),
            input.clone(),
            TensorClass::Activation,
            self.placement[0],
        )?;
        // Outputs of layers that later residuals still need.
        let mut retained: Vec<Option<TensorId>> = vec![None; n_layers];
        let input_id = x_id;
        for l in 0..n_layers {
            let dev = self.placement[l];
            for pid in self.param_ids[l].clone() {
                self.fetch_pin(pid, dev, &mut pins)?;
            }
            self.fetch_pin(x_id, dev, &mut pins)?;
            let skip_id = match (&self.model.layers[l].op, self.model.layers[l].skip_from) {
                (Layer::ResidualAdd, Some(SkipSource::Input)) => Some(input_id),
                (Layer::ResidualAdd, Some(SkipSource::LayerOutput(j))) => retained[j],
                (Layer::ResidualAdd, None) => {
                    return Err(HarmonyError::Config(format!(
                        "layer {l} residual without skip edge"
                    )))
                }
                _ => None,
            };
            if let Some(sid) = skip_id {
                self.fetch_pin(sid, dev, &mut pins)?;
            }
            let params: Vec<Tensor> = self.param_ids[l]
                .iter()
                .map(|&id| self.store.get(id).cloned())
                .collect::<Result<_, _>>()?;
            let x = self.store.get(x_id)?.clone();
            let out = match skip_id {
                Some(sid) => {
                    let skip = self.store.get(sid)?.clone();
                    self.model.layers[l]
                        .op
                        .forward_with_skip(&params, &x, &skip)?
                }
                None => self.model.layers[l].op.forward(&params, &x)?,
            };
            self.unpin_all(&mut pins)?;
            let needed_later =
                self.model.layers.iter().skip(l + 1).any(
                    |later| matches!(later.skip_from, Some(SkipSource::LayerOutput(j)) if j == l),
                );
            let oid = self.alloc(
                format!("eval.L{l}.Y"),
                out.output,
                TensorClass::Activation,
                dev,
            )?;
            // The previous chain value is dead unless a residual retains
            // it (or it is the model input, freed at the end).
            if x_id != input_id && retained.iter().flatten().all(|&r| r != x_id) {
                self.free_tensor(x_id)?;
            }
            if needed_later {
                retained[l] = Some(oid);
            }
            x_id = oid;
        }
        let logits = self.store.get(x_id)?.clone();
        // Clean up everything this evaluation allocated.
        self.free_tensor(x_id)?;
        self.free_tensor(input_id)?;
        for r in retained.into_iter().flatten() {
            self.free_tensor(r)?;
        }
        Ok(logits)
    }

    fn add_outgrad(
        &mut self,
        outgrad: &mut [Vec<Option<TensorId>>],
        layer: usize,
        u: usize,
        g: Tensor,
        dev: usize,
    ) -> Result<(), HarmonyError> {
        match outgrad[layer][u] {
            Some(id) => {
                let mut pins = Vec::new();
                self.fetch_pin(id, dev, &mut pins)?;
                ops::axpy(self.store.get_mut(id)?, 1.0, &g)?;
                self.mm.mark_dirty(id)?;
                self.unpin_all(&mut pins)?;
            }
            None => {
                let id =
                    self.alloc(format!("L{layer}.dY.u{u}"), g, TensorClass::Activation, dev)?;
                outgrad[layer][u] = Some(id);
            }
        }
        Ok(())
    }

    fn free_tensor(&mut self, id: TensorId) -> Result<(), HarmonyError> {
        // Freeing an in-flight or pinned tensor is a bug; dead is fine.
        if !matches!(self.mm.info(id)?.residency, Residency::Dead) {
            self.mm.free(id)?;
            let _ = self.store.take(id);
        }
        Ok(())
    }

    fn global_swap(&self, dir: harmony_memory::Direction) -> u64 {
        (0..self.cfg.device_capacities.len())
            .map(|d| self.mm.stats().device_total(d, dir))
            .sum()
    }
}

/// Contiguous layer placement balanced by parameter bytes (a simple
/// instance of Harmony's task-packing/load-balancing).
fn place_layers(model: &ExecModel, n_devices: usize) -> Vec<usize> {
    let total: u64 = model
        .layers
        .iter()
        .map(|l| l.op.param_count() as u64 * 4 + 1)
        .sum();
    let per_dev = total.div_ceil(n_devices as u64).max(1);
    let mut placement = Vec::with_capacity(model.layers.len());
    let mut acc = 0u64;
    let mut dev = 0usize;
    for l in &model.layers {
        let sz = l.op.param_count() as u64 * 4 + 1;
        if acc + sz > per_dev && dev + 1 < n_devices {
            dev += 1;
            acc = 0;
        }
        acc += sz;
        placement.push(dev);
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_models::exec::{mlp, tiny_transformer};
    use harmony_tensor::rng::SplitMix64;

    fn batch(rng: &mut SplitMix64, n: usize, d: usize, classes: usize) -> (Tensor, Vec<usize>) {
        let x = Tensor::randn([n, d], 1.0, rng);
        let t = (0..n).map(|i| i % classes).collect();
        (x, t)
    }

    #[test]
    fn placement_covers_devices_contiguously() {
        let model = mlp(&[4, 8, 8, 8, 3]);
        let p = place_layers(&model, 3);
        assert_eq!(p.len(), model.layers.len());
        assert_eq!(p[0], 0);
        for w in p.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
        assert!(*p.last().unwrap() < 3);
    }

    #[test]
    fn rejects_bad_config() {
        let model = mlp(&[2, 2]);
        assert!(FunctionalSession::new(
            model.clone(),
            SessionConfig {
                device_capacities: vec![],
                ..Default::default()
            }
        )
        .is_err());
        assert!(FunctionalSession::new(
            model,
            SessionConfig {
                microbatches: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn matches_reference_bit_for_bit_mlp() {
        let model = mlp(&[8, 16, 4]);
        let opt = Optimizer::adam(0.01);
        let mut session = FunctionalSession::new(
            model.clone(),
            SessionConfig {
                device_capacities: vec![1 << 20],
                microbatches: 2,
                optimizer: opt,
                seed: 42,
            },
        )
        .unwrap();
        let mut ref_params = model.init_params(42);
        let mut ref_state = model.init_opt_state(&ref_params, &opt);
        let mut rng = SplitMix64::new(7);
        for step in 1..=5 {
            let (x, t) = batch(&mut rng, 8, 8, 4);
            let ref_loss = model
                .train_step_accum(&mut ref_params, &opt, &mut ref_state, &x, &t, 2, step)
                .unwrap();
            let report = session.train_step(&x, &t).unwrap();
            assert_eq!(report.loss, ref_loss, "step {step}");
        }
        assert_eq!(session.params().unwrap(), ref_params);
    }

    #[test]
    fn matches_reference_bit_for_bit_transformer_multi_device() {
        let model = tiny_transformer(11, 8, 2, 2, false).unwrap();
        let opt = Optimizer::adam(0.005);
        let mut session = FunctionalSession::new(
            model.clone(),
            SessionConfig {
                device_capacities: vec![1 << 20; 3],
                microbatches: 2,
                optimizer: opt,
                seed: 3,
            },
        )
        .unwrap();
        // Multi-device placement must actually split the model.
        let devs: std::collections::HashSet<_> = session.placement().iter().copied().collect();
        assert!(devs.len() > 1, "placement {:?}", session.placement());

        let mut ref_params = model.init_params(3);
        let mut ref_state = model.init_opt_state(&ref_params, &opt);
        let mut rng = SplitMix64::new(8);
        for step in 1..=4 {
            let ids: Vec<f32> = (0..4 * 6).map(|_| rng.next_bounded(11) as f32).collect();
            let x = Tensor::from_vec([4, 6], ids.clone()).unwrap();
            let t: Vec<usize> = ids.iter().map(|&v| v as usize).collect();
            let ref_loss = model
                .train_step_accum(&mut ref_params, &opt, &mut ref_state, &x, &t, 2, step)
                .unwrap();
            let report = session.train_step(&x, &t).unwrap();
            assert_eq!(report.loss, ref_loss, "step {step}");
            assert!(report.p2p_bytes > 0, "stage handoffs must move p2p");
        }
        assert_eq!(session.params().unwrap(), ref_params);
    }

    #[test]
    fn trains_model_larger_than_device_memory() {
        // Model state ≈ (40×64 + 64 + 64×40 + 40) weights ≈ 5264 params →
        // ~21 KB + grads + 2×Adam ≈ 84 KB. Device capacity 48 KB: the
        // total footprint exceeds memory (but a single layer's update
        // working set of ~42 KB still fits), so training must proceed by
        // swapping.
        let model = mlp(&[40, 64, 40]);
        let opt = Optimizer::adam(0.01);
        let capacity = 48 * 1024u64;
        let state_bytes = (model.param_count() * 4 * 4) as u64;
        assert!(state_bytes > capacity, "test premise: model exceeds device");
        let mut session = FunctionalSession::new(
            model.clone(),
            SessionConfig {
                device_capacities: vec![capacity],
                microbatches: 2,
                optimizer: opt,
                seed: 11,
            },
        )
        .unwrap();
        let mut rng = SplitMix64::new(12);
        let mut first = None;
        let mut last = 0.0;
        let mut swapped = 0u64;
        for _ in 0..30 {
            let (x, t) = batch(&mut rng, 8, 40, 4);
            let report = session.train_step(&x, &t).unwrap();
            if first.is_none() {
                first = Some(report.loss);
            }
            last = report.loss;
            swapped += report.swap_in_bytes + report.swap_out_bytes;
            for (&peak, &cap) in report.peak_bytes.iter().zip(&session.cfg.device_capacities) {
                assert!(peak <= cap, "capacity violated: {peak} > {cap}");
            }
        }
        assert!(swapped > 0, "must have swapped under pressure");
        assert!(
            last < first.unwrap() * 0.7,
            "loss did not drop: {first:?} -> {last}"
        );
    }

    #[test]
    fn microbatch_grouping_reduces_weight_swap_traffic() {
        // With grouping, each layer's weights swap in once per phase per
        // step regardless of m; the same model with more microbatches must
        // not swap proportionally more weight bytes.
        let model = mlp(&[40, 64, 40]);
        let run = |m: usize| {
            let mut session = FunctionalSession::new(
                model.clone(),
                SessionConfig {
                    device_capacities: vec![32 * 1024],
                    microbatches: m,
                    optimizer: Optimizer::Sgd { lr: 0.01 },
                    seed: 1,
                },
            )
            .unwrap();
            let mut rng = SplitMix64::new(2);
            let (x, t) = batch(&mut rng, 8, 40, 4);
            let r = session.train_step(&x, &t).unwrap();
            r.swap_in_bytes + r.swap_out_bytes
        };
        let s1 = run(1);
        let s4 = run(4);
        // Activations/stash grow with m, weights don't; total must grow
        // far slower than 4×.
        assert!(
            (s4 as f64) < (s1 as f64) * 2.5,
            "grouping failed: m=1 swaps {s1}, m=4 swaps {s4}"
        );
    }
}

#[cfg(test)]
mod eval_tests {
    use super::*;
    use harmony_models::exec::{mlp, tiny_transformer};
    use harmony_tensor::rng::SplitMix64;

    #[test]
    fn evaluate_matches_reference_forward() {
        let model = tiny_transformer(11, 8, 2, 2, true).unwrap();
        let mut session = FunctionalSession::new(
            model.clone(),
            SessionConfig {
                device_capacities: vec![1 << 20; 2],
                microbatches: 1,
                optimizer: Optimizer::adam(0.01),
                seed: 21,
            },
        )
        .unwrap();
        let mut rng = SplitMix64::new(4);
        let ids: Vec<f32> = (0..2 * 5).map(|_| rng.next_bounded(11) as f32).collect();
        let x = Tensor::from_vec([2, 5], ids).unwrap();
        let logits = session.evaluate(&x).unwrap();
        let params = model.init_params(21);
        let trace = model.forward(&params, &x).unwrap();
        assert_eq!(&logits, trace.outputs.last().unwrap());
    }

    #[test]
    fn evaluate_is_repeatable_and_leak_free() {
        let model = mlp(&[6, 12, 3]);
        let mut session = FunctionalSession::new(
            model,
            SessionConfig {
                device_capacities: vec![64 * 1024],
                microbatches: 1,
                optimizer: Optimizer::Sgd { lr: 0.1 },
                seed: 2,
            },
        )
        .unwrap();
        let mut rng = SplitMix64::new(9);
        let x = Tensor::randn([4, 6], 1.0, &mut rng);
        let a = session.evaluate(&x).unwrap();
        let used_after_first: Vec<u64> = (0..1).map(|d| session.mm.used(d).unwrap()).collect();
        let b = session.evaluate(&x).unwrap();
        assert_eq!(a, b);
        // No transient leaks: device usage stable across evaluations.
        for (d, &u) in used_after_first.iter().enumerate() {
            assert_eq!(session.mm.used(d).unwrap(), u);
        }
    }

    #[test]
    fn evaluate_reflects_training_progress() {
        let model = mlp(&[4, 8, 2]);
        let mut session = FunctionalSession::new(
            model,
            SessionConfig {
                device_capacities: vec![1 << 20],
                microbatches: 2,
                optimizer: Optimizer::adam(0.05),
                seed: 13,
            },
        )
        .unwrap();
        let mut rng = SplitMix64::new(14);
        let x = Tensor::randn([4, 4], 1.0, &mut rng);
        let before = session.evaluate(&x).unwrap();
        let targets = vec![0usize, 1, 0, 1];
        for _ in 0..5 {
            session.train_step(&x, &targets).unwrap();
        }
        let after = session.evaluate(&x).unwrap();
        assert!(
            before.max_abs_diff(&after).unwrap() > 1e-4,
            "training must change outputs"
        );
    }
}
