//! Sweep sessions: amortising per-cell setup across a grid of runs.
//!
//! Every figure/table reproduction in `harmony-bench` is a *sweep*: the
//! same model/topology simulated across a grid of schemes and workload
//! knobs, each cell an independent plan-then-execute run. Two per-cell
//! costs dominate outside the event loop and repeat across cells:
//!
//! 1. **Planning.** Grid cells frequently share their plan-relevant
//!    inputs (e.g. the prefetch ablation runs the same plan twice, once
//!    per prefetch setting; repeated knob values collide outright), and
//!    the planners are pure functions of those inputs.
//! 2. **Construction.** Each [`SimExecutor`] build allocates arenas
//!    proportional to the plan (key space, queues, dependency bitsets)
//!    plus a simulator, memory manager and trace — all of which the
//!    previous cell just dropped.
//!
//! A [`SweepSession`] eliminates both: a **plan cache** keyed by the
//! exact inputs that reach [`simulate::plan`] (scheme, model, topology
//! *shape* — the planners consume only the GPU count — and workload
//! knobs, plus the session-applied policy/prefetch overrides) memoizes
//! `Arc<ExecutionPlan>`s, and a pooled run path recycles every executor
//! arena through an [`ExecPool`] (DESIGN §14). Both are byte-invisible:
//! a pooled cell's summary, trace and error are identical to a fresh
//! run's — the `reusediff` differential in `harmony-harness` proves it
//! over random cell sequences.
//!
//! Sessions are deliberately *not* shared across threads: a sharded
//! sweep gives each worker its own session
//! (`harmony_parallel::par_map_with(cells, SweepSession::new, ..)`), so
//! pools never contend and results stay identical at any worker count.

use std::collections::HashMap;
use std::sync::Arc;

use harmony_models::ModelSpec;
use harmony_sched::{ExecError, ExecPool, ExecutionPlan, PolicyKind, SimExecutor, WorkloadConfig};
use harmony_topology::Topology;
use harmony_trace::{summary::RunSummary, Trace};

use crate::simulate::{self, SchemeKind};

/// One sweep cell: everything (besides the shared model and topology)
/// that determines a run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellSpec {
    /// Training scheme to plan.
    pub scheme: SchemeKind,
    /// Workload knobs handed to the planner.
    pub workload: WorkloadConfig,
    /// Eviction-policy override applied to the planned scheme (`None`
    /// keeps the scheme's own policy).
    pub policy: Option<PolicyKind>,
    /// Enable prefetch/double-buffering on the planned scheme (mirrors
    /// [`simulate::run_with_prefetch`], including the `+prefetch` name
    /// suffix).
    pub prefetch: bool,
    /// Back-to-back iterations to execute.
    pub iterations: u32,
}

impl CellSpec {
    /// A single-iteration cell with no overrides.
    pub fn new(scheme: SchemeKind, workload: WorkloadConfig) -> Self {
        CellSpec {
            scheme,
            workload,
            policy: None,
            prefetch: false,
            iterations: 1,
        }
    }
}

/// The exact inputs a cached plan depends on. The topology enters only
/// through its GPU count — the planners consume nothing else — so two
/// topologies with equal `num_gpus` share cache entries by design.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    scheme: SchemeKind,
    model: ModelSpec,
    num_gpus: usize,
    workload: WorkloadConfig,
    policy: Option<PolicyKind>,
    prefetch: bool,
}

/// Amortises planning and executor construction across the cells of a
/// sweep. See module docs. Holds a plan cache plus an [`ExecPool`]; use
/// one session per worker thread.
#[derive(Debug, Default)]
pub struct SweepSession {
    /// Planner errors are cached too (as their message): re-planning an
    /// infeasible cell is as wasteful as re-planning a feasible one, and
    /// the replayed error must match the fresh path's byte-for-byte.
    cache: HashMap<PlanKey, Result<Arc<ExecutionPlan>, String>>,
    hits: u64,
    misses: u64,
    pool: ExecPool,
}

impl SweepSession {
    /// An empty session: the first use of each distinct cell shape plans
    /// and allocates fresh; everything after recycles.
    pub fn new() -> Self {
        Self::default()
    }

    /// The plan for `cell`, memoized. A cache hit returns the previously
    /// planned `Arc` (or replays the previously observed planner error);
    /// a miss plans via [`simulate::plan`], applies the cell's
    /// policy/prefetch overrides, and caches the outcome.
    pub fn plan(
        &mut self,
        model: &ModelSpec,
        topo: &Topology,
        cell: &CellSpec,
    ) -> Result<Arc<ExecutionPlan>, ExecError> {
        let key = PlanKey {
            scheme: cell.scheme,
            model: model.clone(),
            num_gpus: topo.num_gpus(),
            workload: cell.workload,
            policy: cell.policy,
            prefetch: cell.prefetch,
        };
        if let Some(cached) = self.cache.get(&key) {
            self.hits += 1;
            return cached.clone().map_err(ExecError::Plan);
        }
        self.misses += 1;
        let planned: Result<Arc<ExecutionPlan>, String> =
            match simulate::plan(cell.scheme, model, topo, &cell.workload) {
                Ok(mut p) => {
                    if let Some(policy) = cell.policy {
                        p.scheme.policy = policy;
                    }
                    if cell.prefetch {
                        p.scheme = p.scheme.clone().with_prefetch();
                        p.name = format!("{}+prefetch", p.name);
                    }
                    Ok(Arc::new(p))
                }
                // `simulate::plan` folds every planner error into
                // `ExecError::Plan(msg)`; cache the message so a replay
                // reconstructs the identical error.
                Err(ExecError::Plan(msg)) => Err(msg),
                Err(other) => Err(other.to_string()),
            };
        self.cache.insert(key, planned.clone());
        planned.map_err(ExecError::Plan)
    }

    /// Plans (memoized) and executes `cell` through the session's pool.
    /// Byte-identical to the fresh path ([`simulate::run`] /
    /// [`SimExecutor::with_iterations`]) in summary, trace and error —
    /// wall clocks (`elapsed_secs`, `setup_secs`) excepted, as always.
    pub fn run(
        &mut self,
        model: &ModelSpec,
        topo: &Topology,
        cell: &CellSpec,
    ) -> Result<(RunSummary, Trace), ExecError> {
        self.run_configured(model, topo, cell, |_| Ok(()))
    }

    /// Like [`SweepSession::run`], handing the executor to `configure`
    /// before starting it (fault injection, observers, event budgets —
    /// the same hook as [`simulate::run_configured`]).
    pub fn run_configured(
        &mut self,
        model: &ModelSpec,
        topo: &Topology,
        cell: &CellSpec,
        configure: impl FnOnce(&mut SimExecutor<'_>) -> Result<(), ExecError>,
    ) -> Result<(RunSummary, Trace), ExecError> {
        let plan_start = std::time::Instant::now();
        let plan = self.plan(model, topo, cell)?;
        let plan_secs = plan_start.elapsed().as_secs_f64();
        let mut exec = SimExecutor::pooled(topo, model, &plan, cell.iterations, &mut self.pool)?;
        exec.add_setup_secs(plan_secs);
        configure(&mut exec)?;
        exec.run_pooled(&mut self.pool)
    }

    /// Returns a finished cell's trace so the next cell recycles its span
    /// arena and symbol table. Optional — skipping it only costs the
    /// reuse, never correctness.
    pub fn recycle_trace(&mut self, trace: Trace) {
        self.pool.recycle_trace(trace);
    }

    /// Sabotage (testing only): arm the pooled memory manager's
    /// leak-one-plane-across-reset mutant. Returns whether the pool held
    /// a manager to arm. See [`ExecPool::arm_leak_plane_across_reset`].
    #[cfg(feature = "mutation_hooks")]
    pub fn arm_leak_plane_across_reset(&mut self) -> bool {
        self.pool.arm_leak_plane_across_reset()
    }

    /// Cells served from the plan cache so far.
    pub fn plan_cache_hits(&self) -> u64 {
        self.hits
    }

    /// Cells that had to be planned (including planner failures, which
    /// are cached as errors).
    pub fn plan_cache_misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_models::TransformerConfig;
    use harmony_topology::presets::{commodity_server, CommodityParams, GBPS};

    fn topo() -> Topology {
        commodity_server(CommodityParams {
            num_gpus: 2,
            gpus_per_switch: 2,
            pcie_bw: GBPS,
            host_uplink_bw: GBPS,
            gpu_mem: 10 * 1024 * 1024,
            gpu_flops: 1e9,
        })
        .unwrap()
    }

    fn workload(m: usize) -> WorkloadConfig {
        WorkloadConfig {
            microbatches: m,
            ubatch_size: 1,
            pack_size: 1,
            opt_slots: 2,
            group_size: None,
            recompute: false,
        }
    }

    /// Wall clocks are the one sanctioned divergence between fresh and
    /// pooled runs; zero them before byte comparison, as every
    /// differential does.
    fn canon(mut s: RunSummary) -> String {
        s.elapsed_secs = 0.0;
        s.setup_secs = 0.0;
        s.to_json()
    }

    #[test]
    fn repeated_cells_hit_the_plan_cache() {
        let model = TransformerConfig::tiny().build();
        let topo = topo();
        let mut session = SweepSession::new();
        let cell = CellSpec::new(SchemeKind::HarmonyDp, workload(2));
        session.run(&model, &topo, &cell).unwrap();
        assert_eq!(
            (session.plan_cache_misses(), session.plan_cache_hits()),
            (1, 0)
        );
        session.run(&model, &topo, &cell).unwrap();
        assert_eq!(
            (session.plan_cache_misses(), session.plan_cache_hits()),
            (1, 1)
        );
        // A different workload knob is a different plan key.
        let other = CellSpec::new(SchemeKind::HarmonyDp, workload(3));
        session.run(&model, &topo, &other).unwrap();
        assert_eq!(
            (session.plan_cache_misses(), session.plan_cache_hits()),
            (2, 1)
        );
    }

    #[test]
    fn pooled_cells_match_fresh_runs_byte_for_byte() {
        let model = TransformerConfig::tiny().build();
        let topo = topo();
        let mut session = SweepSession::new();
        // A dirty-then-reuse sequence across schemes, knobs and overrides
        // (the full differential lives in harmony-harness::reusediff).
        let cells = [
            CellSpec::new(SchemeKind::BaselineDp, workload(2)),
            CellSpec::new(SchemeKind::HarmonyPp, workload(3)),
            CellSpec {
                policy: Some(PolicyKind::Lru),
                ..CellSpec::new(SchemeKind::HarmonyDp, workload(2))
            },
            CellSpec {
                prefetch: true,
                iterations: 2,
                ..CellSpec::new(SchemeKind::HarmonyDp, workload(2))
            },
            // Revisit the first cell: pure cache hit + warm pool.
            CellSpec::new(SchemeKind::BaselineDp, workload(2)),
        ];
        for cell in &cells {
            let (ps, pt) = session.run(&model, &topo, cell).unwrap();
            let mut plan = simulate::plan(cell.scheme, &model, &topo, &cell.workload).unwrap();
            if let Some(policy) = cell.policy {
                plan.scheme.policy = policy;
            }
            if cell.prefetch {
                plan.scheme = plan.scheme.clone().with_prefetch();
                plan.name = format!("{}+prefetch", plan.name);
            }
            let (fs, ft) = SimExecutor::with_iterations(&topo, &model, &plan, cell.iterations)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(pt.to_json(), ft.to_json(), "trace diverged: {}", plan.name);
            assert_eq!(canon(ps), canon(fs), "summary diverged: {}", plan.name);
            session.recycle_trace(pt);
        }
    }

    #[test]
    fn planner_errors_are_cached_and_replayed_identically() {
        let model = TransformerConfig::tiny().build();
        let topo = topo();
        let mut session = SweepSession::new();
        // Zero microbatches is a planner rejection, not an exec error.
        let bad = CellSpec::new(SchemeKind::HarmonyPp, workload(0));
        let fresh = simulate::run(SchemeKind::HarmonyPp, &model, &topo, &bad.workload)
            .expect_err("workload must be rejected");
        let first = session
            .run(&model, &topo, &bad)
            .expect_err("workload must be rejected");
        let replay = session
            .run(&model, &topo, &bad)
            .expect_err("cached error must replay");
        assert_eq!(first.to_string(), fresh.to_string());
        assert_eq!(replay.to_string(), fresh.to_string());
        assert_eq!(session.plan_cache_misses(), 1, "error was cached");
        assert_eq!(session.plan_cache_hits(), 1);
    }

    #[test]
    fn setup_secs_is_populated_but_identity_exempt() {
        let model = TransformerConfig::tiny().build();
        let topo = topo();
        let mut session = SweepSession::new();
        let cell = CellSpec::new(SchemeKind::BaselineDp, workload(2));
        let (s, _) = session.run(&model, &topo, &cell).unwrap();
        assert!(
            s.setup_secs.is_finite() && s.setup_secs >= 0.0,
            "setup_secs must be a real measurement, got {}",
            s.setup_secs
        );
        let mut other = s.clone();
        other.setup_secs = 123.0;
        assert_eq!(s, other, "setup wall clock must not affect identity");
    }
}
