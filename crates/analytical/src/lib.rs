//! # harmony-analytical
//!
//! The closed-form swap-volume model of paper §3 ("Analytical
//! comparison"), extended from the in-text weight-only analysis to every
//! tensor class of Fig 5(a). The paper gives the weight-tensor headline:
//!
//! | scheme                      | weight swap volume / iteration |
//! |-----------------------------|--------------------------------|
//! | DP + per-GPU virtualization | `(4m + 2) · N · |W|`           |
//! | Harmony-DP                  | `3 · N · |W|`                  |
//! | Harmony-PP                  | `3 · |W|`                      |
//!
//! and states that the complete model (omitted for brevity) shows "swap
//! load reduction for all tensors and Harmony-PP dominates savings
//! compared to all other baselines". This crate reconstructs that complete
//! model; property tests assert both claims, and integration tests in
//! `crates/core` cross-check the formulas against the discrete-event
//! simulator's measured swap tallies.
//!
//! Modelling assumptions (matching the paper's own):
//! * homogeneous GPUs; each holds one layer-level operation on one
//!   microbatch at a time (memory pressure ⇒ every reuse distance beyond
//!   the current task forces a swap);
//! * `m` microbatches per GPU per iteration, `N` GPUs, so a mini-batch is
//!   `m·N` microbatches; a pipeline stage therefore processes all `m·N`
//!   microbatches;
//! * uniform layers (transformer-like), so per-layer sizes sum to model
//!   totals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use harmony_models::ModelSpec;

pub mod exact;

/// Training scheme being analysed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Data parallelism with per-GPU memory virtualization (IBM-LMS-style).
    BaselineDp,
    /// Pipeline parallelism with per-GPU memory virtualization.
    BaselinePp,
    /// Harmony data parallelism (input-batch grouping + JIT updates).
    HarmonyDp,
    /// Harmony pipeline parallelism (grouping + JIT + p2p + packing).
    HarmonyPp,
    /// 1F1B pipeline parallelism with PipeDream weight stashing: the
    /// baseline-PP schedule plus one stashed weight version per in-flight
    /// microbatch, so each backward reads the weights its forward used.
    /// The stash copies swap as their own tensor class
    /// ([`weight_stash_swap_volume`]); the live-weight class shrinks by
    /// exactly the backward reads the stash absorbs.
    Pipe1F1B,
}

impl Scheme {
    /// Every scheme, baselines first, extensions last.
    pub const ALL: [Scheme; 5] = [
        Scheme::BaselineDp,
        Scheme::BaselinePp,
        Scheme::HarmonyDp,
        Scheme::HarmonyPp,
        Scheme::Pipe1F1B,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::BaselineDp => "DP + per-GPU virtualization",
            Scheme::BaselinePp => "PP + per-GPU virtualization",
            Scheme::HarmonyDp => "Harmony-DP",
            Scheme::HarmonyPp => "Harmony-PP",
            Scheme::Pipe1F1B => "PP + 1F1B weight stashing",
        }
    }
}

/// Workload parameters of the analytical model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Microbatches per GPU per iteration (`m`).
    pub m: u64,
    /// Number of GPUs (`N`).
    pub n: u64,
    /// Total weight bytes `|W|` (= total gradient-buffer bytes).
    pub weight_bytes: u64,
    /// Total optimizer-state bytes `|K|`.
    pub opt_state_bytes: u64,
    /// Total stash bytes per microbatch (summed over layers).
    pub stash_bytes_per_ubatch: u64,
    /// Total boundary-activation bytes per microbatch (summed over layer
    /// boundaries).
    pub act_bytes_per_ubatch: u64,
}

impl Params {
    /// Derives parameters from a model spec.
    pub fn from_model(model: &ModelSpec, ubatch_size: u64, opt_slots: u64, m: u64, n: u64) -> Self {
        Params {
            m,
            n,
            weight_bytes: model.total_weight_bytes(),
            opt_state_bytes: model.total_weight_bytes() * opt_slots,
            stash_bytes_per_ubatch: model
                .layers
                .iter()
                .map(|l| l.stash_bytes(ubatch_size))
                .sum(),
            act_bytes_per_ubatch: model.layers.iter().map(|l| l.out_bytes(ubatch_size)).sum(),
        }
    }
}

/// Per-class swap volumes (bytes/iteration) plus p2p traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapBreakdown {
    /// Weight tensor swaps.
    pub weight: u64,
    /// Stashed weight-version swaps (1F1B weight stashing only).
    pub weight_stash: u64,
    /// Gradient-buffer swaps.
    pub grad: u64,
    /// Optimizer-state swaps.
    pub opt_state: u64,
    /// Stashed-activation swaps.
    pub stash: u64,
    /// Live (boundary) activation swaps.
    pub act: u64,
    /// Device-to-device traffic (not host swap volume).
    pub p2p: u64,
}

impl SwapBreakdown {
    /// Total host swap volume (p2p excluded — it bypasses the host link).
    pub fn total(&self) -> u64 {
        self.weight + self.weight_stash + self.grad + self.opt_state + self.stash + self.act
    }
}

/// Weight-tensor swap volume per iteration — the paper's in-text formulas.
///
/// ```
/// use harmony_analytical::{weight_swap_volume, Params, Scheme};
/// let p = Params {
///     m: 4, n: 4, weight_bytes: 100,
///     opt_state_bytes: 0, stash_bytes_per_ubatch: 0, act_bytes_per_ubatch: 0,
/// };
/// assert_eq!(weight_swap_volume(Scheme::BaselineDp, &p), (4 * 4 + 2) * 4 * 100);
/// assert_eq!(weight_swap_volume(Scheme::HarmonyDp, &p), 3 * 4 * 100);
/// assert_eq!(weight_swap_volume(Scheme::HarmonyPp, &p), 3 * 100);
/// ```
pub fn weight_swap_volume(scheme: Scheme, p: &Params) -> u64 {
    let Params {
        m,
        n,
        weight_bytes: w,
        ..
    } = *p;
    match scheme {
        // Fig 5(b): in+out per fwd microbatch (2m) + in+out per bwd
        // microbatch (2m) + in+out at update (2), on each of N replicas.
        Scheme::BaselineDp => (4 * m + 2) * n * w,
        // A stage sees all m·N microbatches; its layers swap per microbatch.
        Scheme::BaselinePp => (4 * m * n + 2) * w,
        // Fig 5(c): one swap-in for the grouped forward, one for the
        // grouped backward, one swap-out after the JIT update, per replica.
        Scheme::HarmonyDp => 3 * n * w,
        // As Harmony-DP but weights are partitioned, not replicated.
        Scheme::HarmonyPp => 3 * w,
        // As baseline-PP, except backward reads the stashed version
        // (counted in `weight_stash_swap_volume`), not the live weights:
        // in+out per fwd microbatch (2mN) + in+out at update (2).
        Scheme::Pipe1F1B => (2 * m * n + 2) * w,
    }
}

/// Stashed weight-version swap volume per iteration — zero for every
/// scheme except 1F1B weight stashing, where each microbatch's forward
/// swaps one full weight copy out and its backward swaps it back in:
/// `2·m·N·|W|` across the pipeline's stages.
pub fn weight_stash_swap_volume(scheme: Scheme, p: &Params) -> u64 {
    let Params {
        m,
        n,
        weight_bytes: w,
        ..
    } = *p;
    match scheme {
        Scheme::Pipe1F1B => 2 * m * n * w,
        _ => 0,
    }
}

/// Gradient-buffer swap volume per iteration.
pub fn grad_swap_volume(scheme: Scheme, p: &Params) -> u64 {
    let Params {
        m,
        n,
        weight_bytes: w,
        ..
    } = *p;
    match scheme {
        // Accumulation forces the buffer in+out on every backward
        // microbatch, plus in+out at the (late) update.
        Scheme::BaselineDp => (2 * m + 2) * n * w,
        Scheme::BaselinePp | Scheme::Pipe1F1B => (2 * m * n + 2) * w,
        // Grouped backward brings dW in once; the JIT update consumes it
        // while resident and the reset buffer is swapped out once.
        Scheme::HarmonyDp => 2 * n * w,
        Scheme::HarmonyPp => 2 * w,
    }
}

/// Optimizer-state swap volume per iteration.
pub fn opt_state_swap_volume(scheme: Scheme, p: &Params) -> u64 {
    let Params {
        n,
        opt_state_bytes: k,
        ..
    } = *p;
    match scheme {
        // In+out once per update, on every replica (DP) or once per
        // partition (PP / Harmony-PP).
        Scheme::BaselineDp | Scheme::HarmonyDp => 2 * n * k,
        Scheme::BaselinePp | Scheme::HarmonyPp | Scheme::Pipe1F1B => 2 * k,
    }
}

/// Stashed-activation swap volume per iteration. Stashes are inherently
/// per-microbatch; grouping cannot elide them, so Harmony matches (but
/// never exceeds) the baselines: out after forward, in at backward, for
/// every microbatch in flight.
pub fn stash_swap_volume(scheme: Scheme, p: &Params) -> u64 {
    let Params {
        m,
        n,
        stash_bytes_per_ubatch: s,
        ..
    } = *p;
    match scheme {
        // DP: m microbatches on each of N replicas. PP: m·N microbatches
        // through the partitioned layers (same total stash bytes).
        Scheme::BaselineDp
        | Scheme::HarmonyDp
        | Scheme::BaselinePp
        | Scheme::HarmonyPp
        | Scheme::Pipe1F1B => 2 * m * n * s,
    }
}

/// Boundary-activation swap volume per iteration.
pub fn act_swap_volume(scheme: Scheme, p: &Params) -> u64 {
    let Params {
        m,
        n,
        act_bytes_per_ubatch: a,
        ..
    } = *p;
    match scheme {
        // Rigid per-microbatch execution order evicts each boundary
        // activation (and its gradient on the way back): out+in, twice.
        Scheme::BaselineDp => 4 * m * n * a,
        Scheme::BaselinePp | Scheme::Pipe1F1B => 4 * m * n * a,
        // Grouping keeps the producer's outputs resident until the
        // consumer task runs next (DP: same GPU, zero swaps); PP moves
        // them p2p instead (accounted in `p2p`, not here).
        Scheme::HarmonyDp | Scheme::HarmonyPp => 0,
    }
}

/// Device-to-device (p2p) traffic per iteration — traffic Harmony *moves
/// off* the host link rather than eliminating.
pub fn p2p_volume(scheme: Scheme, p: &Params) -> u64 {
    let Params {
        m,
        n,
        act_bytes_per_ubatch: a,
        weight_bytes: w,
        ..
    } = *p;
    match scheme {
        Scheme::BaselineDp | Scheme::BaselinePp | Scheme::HarmonyDp | Scheme::Pipe1F1B => {
            // DP gradient AllReduce traffic is p2p-capable on both DP
            // schemes; baselines route it through host in the worst case,
            // but we count ring-allreduce traffic uniformly for fairness.
            if matches!(scheme, Scheme::HarmonyDp | Scheme::BaselineDp) && n > 1 {
                2 * (n - 1) * w
            } else {
                0
            }
        }
        // Forward activations and backward gradients cross stage
        // boundaries p2p: 2 · (m·N microbatches) · boundary bytes.
        Scheme::HarmonyPp => 2 * m * n * a,
    }
}

/// The complete per-class breakdown for a scheme.
pub fn breakdown(scheme: Scheme, p: &Params) -> SwapBreakdown {
    SwapBreakdown {
        weight: weight_swap_volume(scheme, p),
        weight_stash: weight_stash_swap_volume(scheme, p),
        grad: grad_swap_volume(scheme, p),
        opt_state: opt_state_swap_volume(scheme, p),
        stash: stash_swap_volume(scheme, p),
        act: act_swap_volume(scheme, p),
        p2p: p2p_volume(scheme, p),
    }
}

/// The paper's headline reduction factor for weights:
/// `(4m + 2) / 3` (Harmony-DP over baseline DP).
pub fn weight_reduction_factor_dp(m: u64) -> f64 {
    (4 * m + 2) as f64 / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(m: u64, n: u64) -> Params {
        Params {
            m,
            n,
            weight_bytes: 1000,
            opt_state_bytes: 2000,
            stash_bytes_per_ubatch: 300,
            act_bytes_per_ubatch: 100,
        }
    }

    #[test]
    fn paper_weight_formulas_exact() {
        let p = params(4, 4);
        assert_eq!(
            weight_swap_volume(Scheme::BaselineDp, &p),
            (4 * 4 + 2) * 4 * 1000
        );
        assert_eq!(weight_swap_volume(Scheme::HarmonyDp, &p), 3 * 4 * 1000);
        assert_eq!(weight_swap_volume(Scheme::HarmonyPp, &p), 3 * 1000);
    }

    #[test]
    fn harmony_dp_reduction_factor_matches_headline() {
        // For m = 4: (4·4+2)/3 = 6× weight-swap reduction.
        let p = params(4, 2);
        let baseline = weight_swap_volume(Scheme::BaselineDp, &p) as f64;
        let harmony = weight_swap_volume(Scheme::HarmonyDp, &p) as f64;
        assert!((baseline / harmony - weight_reduction_factor_dp(4)).abs() < 1e-9);
    }

    #[test]
    fn harmony_never_worse_for_any_class() {
        for m in 1..=8 {
            for n in 1..=8 {
                let p = params(m, n);
                let bdp = breakdown(Scheme::BaselineDp, &p);
                let hdp = breakdown(Scheme::HarmonyDp, &p);
                let bpp = breakdown(Scheme::BaselinePp, &p);
                let hpp = breakdown(Scheme::HarmonyPp, &p);
                assert!(hdp.weight <= bdp.weight);
                assert!(hdp.grad <= bdp.grad);
                assert!(hdp.opt_state <= bdp.opt_state);
                assert!(hdp.stash <= bdp.stash);
                assert!(hdp.act <= bdp.act);
                assert!(hpp.weight <= bpp.weight);
                assert!(hpp.grad <= bpp.grad);
                assert!(hpp.opt_state <= bpp.opt_state);
                assert!(hpp.stash <= bpp.stash);
                assert!(hpp.act <= bpp.act);
            }
        }
    }

    #[test]
    fn harmony_pp_dominates_all_schemes() {
        for m in 1..=8 {
            for n in 1..=8 {
                let p = params(m, n);
                let hpp = breakdown(Scheme::HarmonyPp, &p).total();
                for s in [
                    Scheme::BaselineDp,
                    Scheme::BaselinePp,
                    Scheme::HarmonyDp,
                    Scheme::Pipe1F1B,
                ] {
                    assert!(
                        hpp <= breakdown(s, &p).total(),
                        "m={m} n={n}: Harmony-PP {hpp} vs {} {}",
                        s.name(),
                        breakdown(s, &p).total()
                    );
                }
            }
        }
    }

    #[test]
    fn baseline_dp_swap_grows_linearly_with_n() {
        // §2 inefficiency 3 / Fig 2(a): "swap overhead grows linearly with
        // the number of GPUs".
        let v1 = breakdown(Scheme::BaselineDp, &params(4, 1)).total();
        let v4 = breakdown(Scheme::BaselineDp, &params(4, 4)).total();
        assert_eq!(v4, 4 * v1);
    }

    #[test]
    fn harmony_pp_weight_volume_independent_of_n() {
        let v1 = weight_swap_volume(Scheme::HarmonyPp, &params(3, 1));
        let v8 = weight_swap_volume(Scheme::HarmonyPp, &params(3, 8));
        assert_eq!(v1, v8);
    }

    #[test]
    fn p2p_replaces_act_swaps_in_pp() {
        let p = params(2, 4);
        let hpp = breakdown(Scheme::HarmonyPp, &p);
        assert_eq!(hpp.act, 0, "boundary acts never touch the host link");
        assert_eq!(hpp.p2p, 2 * 2 * 4 * 100);
    }

    #[test]
    fn from_model_sums_layer_sizes() {
        use harmony_models::TransformerConfig;
        let model = TransformerConfig::tiny().build();
        let p = Params::from_model(&model, 2, 2, 4, 4);
        assert_eq!(p.weight_bytes, model.total_weight_bytes());
        assert_eq!(p.opt_state_bytes, 2 * model.total_weight_bytes());
        assert!(p.stash_bytes_per_ubatch > 0);
        assert!(p.act_bytes_per_ubatch > 0);
    }
}

/// Stashed-activation swap volume when *recompute* replaces stashing
/// (gradient checkpointing at pack granularity, §4): per-layer stashes
/// vanish; only pack-boundary activations persist from forward to
/// backward, paid once out and once in per microbatch.
pub fn stash_swap_volume_recompute(p: &Params) -> u64 {
    let Params {
        m,
        n,
        act_bytes_per_ubatch: a,
        ..
    } = *p;
    // The retained boundary activations are a subset of the per-microbatch
    // activation bytes.
    2 * m * n * a
}

/// Extra compute incurred by recompute, as a fraction of the baseline
/// iteration FLOPs: forward runs twice (`1 + (1 + bwd_mult)` vs
/// `1 + bwd_mult`).
pub fn recompute_flops_overhead(bwd_mult: f64) -> f64 {
    (2.0 + bwd_mult) / (1.0 + bwd_mult) - 1.0
}

#[cfg(test)]
mod recompute_tests {
    use super::*;

    #[test]
    fn recompute_eliminates_stash_volume_when_stash_dominates() {
        let p = Params {
            m: 4,
            n: 4,
            weight_bytes: 100,
            opt_state_bytes: 0,
            stash_bytes_per_ubatch: 10_000, // stash ≫ boundary acts
            act_bytes_per_ubatch: 100,
        };
        let with_stash = stash_swap_volume(Scheme::HarmonyPp, &p);
        let with_recompute = stash_swap_volume_recompute(&p);
        assert!(with_recompute * 10 < with_stash);
    }

    #[test]
    fn recompute_overhead_matches_paper_ballpark() {
        // With backward = 2× forward, recompute adds 33% compute.
        assert!((recompute_flops_overhead(2.0) - 1.0 / 3.0).abs() < 1e-9);
        // With backward = 3× forward, it adds 25%.
        assert!((recompute_flops_overhead(3.0) - 0.25).abs() < 1e-9);
    }
}
